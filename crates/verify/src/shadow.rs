//! Shadow `std::sync` primitives for the model checker.
//!
//! Drop-in replacements for the atomic types, fences, `Mutex` and
//! `Condvar` the executor uses. Inside a [`crate::model::check`]
//! run every operation routes through the deterministic scheduler and
//! the explicit weak-memory model; outside a run each type falls back
//! to the real `std` primitive it wraps, so a crate compiled with its
//! `model-check` feature still behaves correctly in ordinary tests.
//!
//! `asr-decoder` re-exports these from `crate::sync` when built with
//! `--features model-check`; release builds re-export `std::sync`
//! directly, so the facade is zero-cost where it matters.

use crate::model;
use std::sync::atomic::Ordering;
use std::sync::{LockResult, PoisonError};

/// A `Result`-style alias mirroring `std::sync::TryLockResult` is not
/// needed: the executor only uses blocking `lock`.
macro_rules! shadow_atomic {
    ($(#[$doc:meta])* $name:ident, $real:ty, $prim:ty) => {
        $(#[$doc])*
        pub struct $name {
            real: $real,
            cell: model::RegCell,
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_tuple(stringify!($name))
                    .field(&self.real)
                    .finish()
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(0)
            }
        }

        impl $name {
            /// Creates the atomic with an initial value.
            pub const fn new(value: $prim) -> Self {
                Self {
                    real: <$real>::new(value),
                    cell: model::RegCell::new(),
                }
            }

            fn init(&self) -> u64 {
                self.real.load(Ordering::Relaxed) as u64
            }

            /// Atomic load.
            pub fn load(&self, order: Ordering) -> $prim {
                if model::is_active() {
                    match model::atomic_load(&self.cell, self.init(), order) {
                        Some(v) => v as $prim,
                        // Aborting execution: return something inert
                        // without polluting the fallback value.
                        None => self.real.load(Ordering::Relaxed),
                    }
                } else {
                    self.real.load(order)
                }
            }

            /// Atomic store.
            pub fn store(&self, value: $prim, order: Ordering) {
                if model::is_active() {
                    let _ = model::atomic_store(&self.cell, self.init(), value as u64, order);
                } else {
                    self.real.store(value, order);
                }
            }

            /// Atomic add; returns the previous value.
            pub fn fetch_add(&self, value: $prim, order: Ordering) -> $prim {
                if model::is_active() {
                    match model::atomic_rmw(&self.cell, self.init(), order, |v| {
                        (v as $prim).wrapping_add(value) as u64
                    }) {
                        Some(v) => v as $prim,
                        None => 0,
                    }
                } else {
                    self.real.fetch_add(value, order)
                }
            }

            /// Atomic subtract; returns the previous value.
            pub fn fetch_sub(&self, value: $prim, order: Ordering) -> $prim {
                if model::is_active() {
                    match model::atomic_rmw(&self.cell, self.init(), order, |v| {
                        (v as $prim).wrapping_sub(value) as u64
                    }) {
                        Some(v) => v as $prim,
                        None => 0,
                    }
                } else {
                    self.real.fetch_sub(value, order)
                }
            }

            /// Atomic max; returns the previous value.
            pub fn fetch_max(&self, value: $prim, order: Ordering) -> $prim {
                if model::is_active() {
                    match model::atomic_rmw(&self.cell, self.init(), order, |v| {
                        (v as $prim).max(value) as u64
                    }) {
                        Some(v) => v as $prim,
                        None => 0,
                    }
                } else {
                    self.real.fetch_max(value, order)
                }
            }

            /// Strong compare-exchange.
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                if model::is_active() {
                    match model::atomic_cas(
                        &self.cell,
                        self.init(),
                        current as u64,
                        new as u64,
                        success,
                        failure,
                    ) {
                        Some(Ok(v)) => Ok(v as $prim),
                        Some(Err(v)) => Err(v as $prim),
                        None => Err(current),
                    }
                } else {
                    self.real.compare_exchange(current, new, success, failure)
                }
            }

            /// Weak compare-exchange. The model does not generate
            /// spurious failures, so weak and strong are identical
            /// under a check.
            pub fn compare_exchange_weak(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                if model::is_active() {
                    self.compare_exchange(current, new, success, failure)
                } else {
                    self.real
                        .compare_exchange_weak(current, new, success, failure)
                }
            }
        }
    };
}

shadow_atomic!(
    /// Shadow of [`std::sync::atomic::AtomicUsize`].
    AtomicUsize,
    std::sync::atomic::AtomicUsize,
    usize
);
shadow_atomic!(
    /// Shadow of [`std::sync::atomic::AtomicU64`].
    AtomicU64,
    std::sync::atomic::AtomicU64,
    u64
);

/// Shadow of [`std::sync::atomic::AtomicBool`].
pub struct AtomicBool {
    real: std::sync::atomic::AtomicBool,
    cell: model::RegCell,
}

impl std::fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("AtomicBool").field(&self.real).finish()
    }
}

impl AtomicBool {
    /// Creates the atomic with an initial value.
    pub const fn new(value: bool) -> Self {
        Self {
            real: std::sync::atomic::AtomicBool::new(value),
            cell: model::RegCell::new(),
        }
    }

    fn init(&self) -> u64 {
        u64::from(self.real.load(Ordering::Relaxed))
    }

    /// Atomic load.
    pub fn load(&self, order: Ordering) -> bool {
        if model::is_active() {
            match model::atomic_load(&self.cell, self.init(), order) {
                Some(v) => v != 0,
                None => self.real.load(Ordering::Relaxed),
            }
        } else {
            self.real.load(order)
        }
    }

    /// Atomic store.
    pub fn store(&self, value: bool, order: Ordering) {
        if model::is_active() {
            let _ = model::atomic_store(&self.cell, self.init(), u64::from(value), order);
        } else {
            self.real.store(value, order);
        }
    }
}

/// Shadow of [`std::sync::atomic::fence`].
pub fn fence(order: Ordering) {
    if model::is_active() {
        let _ = model::fence(order);
    } else {
        std::sync::atomic::fence(order);
    }
}

/// Shadow of [`std::sync::Mutex`]: model-time blocking with
/// release/acquire edges on lock/unlock. The real lock is always taken
/// as well — the model guarantees it is free when granted, and ordinary
/// (non-model) use degrades to the plain `std` mutex.
pub struct Mutex<T> {
    real: std::sync::Mutex<T>,
    cell: model::RegCell,
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Mutex").field(&self.real).finish()
    }
}

impl<T> Mutex<T> {
    /// Creates the mutex.
    pub const fn new(value: T) -> Self {
        Self {
            real: std::sync::Mutex::new(value),
            cell: model::RegCell::new(),
        }
    }

    /// Locks, blocking in model time when checked. Poisoning only
    /// occurs on the fallback path and is passed through.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        if model::is_active() {
            // Model grants the lock only when no other model thread
            // holds it, so the real lock below cannot block for long
            // (its holder has already dropped the real guard).
            let _ = model::mutex_lock(&self.cell);
            let inner = self.real.lock().unwrap_or_else(PoisonError::into_inner);
            Ok(MutexGuard {
                lock: self,
                inner: Some(inner),
                model: true,
            })
        } else {
            match self.real.lock() {
                Ok(inner) => Ok(MutexGuard {
                    lock: self,
                    inner: Some(inner),
                    model: false,
                }),
                Err(poison) => Err(PoisonError::new(MutexGuard {
                    lock: self,
                    inner: Some(poison.into_inner()),
                    model: false,
                })),
            }
        }
    }
}

/// Guard for a [`Mutex`]; releases the model lock (then the real one)
/// on drop.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    model: bool,
}

impl<T: std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("MutexGuard").field(&self.inner).finish()
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken only by wait")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken only by wait")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock first: the model-unlock below is a
        // scheduling point that may run another thread, which must be
        // able to take the real lock immediately.
        drop(self.inner.take());
        if self.model {
            model::mutex_unlock(&self.lock.cell);
        }
    }
}

/// Shadow of [`std::sync::Condvar`]: deterministic wakeups (the model
/// branches over which waiter `notify_one` picks) and exact lost-wakeup
/// detection (a sleep nobody can end is reported as a deadlock).
pub struct Condvar {
    real: std::sync::Condvar,
    cell: model::RegCell,
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl Condvar {
    /// Creates the condvar.
    pub const fn new() -> Self {
        Self {
            real: std::sync::Condvar::new(),
            cell: model::RegCell::new(),
        }
    }

    /// Releases the guard's mutex, blocks until notified, reacquires.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        if model::is_active() && guard.model {
            let lock = guard.lock;
            // Consume the guard without model-unlocking: the model's
            // wait releases the mutex atomically with blocking.
            let mut guard = guard;
            drop(guard.inner.take());
            guard.model = false;
            drop(guard);
            let _ = model::condvar_wait(&self.cell, &lock.cell);
            let inner = lock.real.lock().unwrap_or_else(PoisonError::into_inner);
            Ok(MutexGuard {
                lock,
                inner: Some(inner),
                model: true,
            })
        } else {
            let lock = guard.lock;
            let mut guard = guard;
            let inner = guard.inner.take().expect("guard holds the real lock");
            guard.model = false;
            drop(guard);
            match self.real.wait(inner) {
                Ok(inner) => Ok(MutexGuard {
                    lock,
                    inner: Some(inner),
                    model: false,
                }),
                Err(poison) => Err(PoisonError::new(MutexGuard {
                    lock,
                    inner: Some(poison.into_inner()),
                    model: false,
                })),
            }
        }
    }

    /// Wakes one waiter (model: a decision among the waiters).
    pub fn notify_one(&self) {
        if model::is_active() {
            let _ = model::condvar_notify(&self.cell, false);
        } else {
            self.real.notify_one();
        }
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        if model::is_active() {
            let _ = model::condvar_notify(&self.cell, true);
        } else {
            self.real.notify_all();
        }
    }
}
