//! Self-tests for the mini-loom model checker: the classic weak-memory
//! litmus tests must pass with the correct orderings and *provably*
//! fail with the seeded-buggy ones, so the tool cannot silently rot.

use asr_verify::model::{self, Config};
use asr_verify::shadow::{fence, AtomicUsize, Condvar, Mutex};
use std::sync::atomic::Ordering;
use std::sync::Arc;

fn cfg() -> Config {
    Config {
        preemption_bound: 3,
        max_executions: 100_000,
        max_steps: 2_000,
        max_threads: 3,
    }
}

/// Message passing with a Release store / Acquire load pair: the
/// reader that observes the flag must observe the data.
#[test]
fn message_passing_release_acquire_passes() {
    let executions = model::check(cfg(), || {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicUsize::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t1 = model::spawn(move || {
            if f2.load(Ordering::Acquire) == 1 {
                assert_eq!(d2.load(Ordering::Relaxed), 42, "stale data past the flag");
            }
        });
        data.store(42, Ordering::Relaxed);
        flag.store(1, Ordering::Release);
        t1.join();
    });
    // Exhaustive means more than one interleaving was actually tried.
    assert!(executions > 1, "only {executions} executions explored");
}

/// The same harness with the Release downgraded to Relaxed is the
/// seeded bug: some admissible interleaving reads the flag but stale
/// data, and the checker must find it.
#[test]
fn message_passing_relaxed_is_caught() {
    let report = model::check_expect_failure(cfg(), || {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicUsize::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t1 = model::spawn(move || {
            if f2.load(Ordering::Acquire) == 1 {
                assert_eq!(d2.load(Ordering::Relaxed), 42, "stale data past the flag");
            }
        });
        data.store(42, Ordering::Relaxed);
        // BUG (seeded): Relaxed where Release is required.
        flag.store(1, Ordering::Relaxed);
        t1.join();
    });
    assert!(
        report.contains("stale data"),
        "unexpected failure: {report}"
    );
}

/// Release *fence* before a relaxed store publishes just like a
/// release store (the Chase–Lev push idiom).
#[test]
fn release_fence_publishes_relaxed_store() {
    model::check(cfg(), || {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicUsize::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t1 = model::spawn(move || {
            if f2.load(Ordering::Acquire) == 1 {
                assert_eq!(d2.load(Ordering::Relaxed), 7, "fence failed to publish");
            }
        });
        data.store(7, Ordering::Relaxed);
        fence(Ordering::Release);
        flag.store(1, Ordering::Relaxed);
        t1.join();
    });
}

/// Store buffering: with SeqCst fences between each thread's store and
/// its read of the other's location, both threads cannot read zero.
#[test]
fn store_buffering_seqcst_fences_pass() {
    model::check(cfg(), || {
        let x = Arc::new(AtomicUsize::new(0));
        let y = Arc::new(AtomicUsize::new(0));
        let r1 = Arc::new(AtomicUsize::new(99));
        let (x2, y2, r12) = (Arc::clone(&x), Arc::clone(&y), Arc::clone(&r1));
        let t1 = model::spawn(move || {
            y2.store(1, Ordering::Relaxed);
            fence(Ordering::SeqCst);
            r12.store(x2.load(Ordering::Relaxed), Ordering::Relaxed);
        });
        x.store(1, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let r0 = y.load(Ordering::Relaxed);
        t1.join();
        let r1 = r1.load(Ordering::Relaxed);
        assert!(
            r0 == 1 || r1 == 1,
            "both threads read zero through SC fences"
        );
    });
}

/// Store buffering with the fences removed: both-read-zero is an
/// admissible relaxed behavior and the checker must exhibit it.
#[test]
fn store_buffering_relaxed_is_caught() {
    let report = model::check_expect_failure(cfg(), || {
        let x = Arc::new(AtomicUsize::new(0));
        let y = Arc::new(AtomicUsize::new(0));
        let r1 = Arc::new(AtomicUsize::new(99));
        let (x2, y2, r12) = (Arc::clone(&x), Arc::clone(&y), Arc::clone(&r1));
        let t1 = model::spawn(move || {
            y2.store(1, Ordering::Relaxed);
            r12.store(x2.load(Ordering::Relaxed), Ordering::Relaxed);
        });
        x.store(1, Ordering::Relaxed);
        let r0 = y.load(Ordering::Relaxed);
        t1.join();
        let r1 = r1.load(Ordering::Relaxed);
        assert!(r0 == 1 || r1 == 1, "both threads read zero");
    });
    assert!(report.contains("both threads read zero"), "{report}");
}

/// A naive check-then-sleep (no eventcount registration, no re-check
/// under the lock) loses the wakeup when the notify lands between the
/// check and the wait; the model reports it as a deadlock.
#[test]
fn naive_sleep_lost_wakeup_is_caught() {
    let report = model::check_expect_failure(cfg(), || {
        let flag = Arc::new(AtomicUsize::new(0));
        let lot = Arc::new(Mutex::new(()));
        let cv = Arc::new(Condvar::new());
        let (f2, l2, c2) = (Arc::clone(&flag), Arc::clone(&lot), Arc::clone(&cv));
        let sleeper = model::spawn(move || {
            // BUG (seeded): the flag check is outside the lock and
            // never re-checked before sleeping.
            if f2.load(Ordering::SeqCst) == 0 {
                let guard = l2.lock().unwrap();
                let _guard = c2.wait(guard).unwrap();
            }
        });
        flag.store(1, Ordering::SeqCst);
        cv.notify_one();
        sleeper.join();
    });
    assert!(report.contains("deadlock"), "{report}");
}

/// The fixed idiom — re-check the flag *under the lock* before
/// sleeping — never deadlocks.
#[test]
fn checked_sleep_never_loses_the_wakeup() {
    model::check(cfg(), || {
        let flag = Arc::new(AtomicUsize::new(0));
        let lot = Arc::new(Mutex::new(()));
        let cv = Arc::new(Condvar::new());
        let (f2, l2, c2) = (Arc::clone(&flag), Arc::clone(&lot), Arc::clone(&cv));
        let sleeper = model::spawn(move || {
            if f2.load(Ordering::SeqCst) == 0 {
                let guard = l2.lock().unwrap();
                if f2.load(Ordering::SeqCst) == 0 {
                    let _guard = c2.wait(guard).unwrap();
                }
            }
        });
        flag.store(1, Ordering::SeqCst);
        {
            // Publishing under the lock orders the store against the
            // sleeper's locked re-check.
            let _guard = lot.lock().unwrap();
        }
        cv.notify_one();
        sleeper.join();
    });
}

/// Unsynchronized read-modify-write (load; add; store) loses updates
/// under preemption — a pure scheduler-interleaving bug, no weak
/// memory needed.
#[test]
fn racy_increment_is_caught() {
    let report = model::check_expect_failure(cfg(), || {
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        let t1 = model::spawn(move || {
            let v = n2.load(Ordering::SeqCst);
            n2.store(v + 1, Ordering::SeqCst);
        });
        let v = n.load(Ordering::SeqCst);
        n.store(v + 1, Ordering::SeqCst);
        t1.join();
        assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
    });
    assert!(report.contains("lost update"), "{report}");
}

/// The same increment through a real RMW is atomic.
#[test]
fn fetch_add_increment_passes() {
    model::check(cfg(), || {
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        let t1 = model::spawn(move || {
            n2.fetch_add(1, Ordering::SeqCst);
        });
        n.fetch_add(1, Ordering::SeqCst);
        t1.join();
        assert_eq!(n.load(Ordering::SeqCst), 2);
    });
}

/// Spinning on a flag with `yield_now` terminates: the scheduler must
/// run the other thread past a yield instead of livelocking.
#[test]
fn yield_makes_spin_loops_explorable() {
    model::check(cfg(), || {
        let flag = Arc::new(AtomicUsize::new(0));
        let f2 = Arc::clone(&flag);
        let t1 = model::spawn(move || {
            f2.store(1, Ordering::Release);
        });
        while flag.load(Ordering::Acquire) == 0 {
            model::yield_now();
        }
        t1.join();
    });
}

/// Mutexes actually exclude: two guarded increments never interleave.
#[test]
fn mutex_guards_compound_updates() {
    model::check(cfg(), || {
        let n = Arc::new(Mutex::new(0usize));
        let n2 = Arc::clone(&n);
        let t1 = model::spawn(move || {
            let mut guard = n2.lock().unwrap();
            *guard += 1;
        });
        {
            let mut guard = n.lock().unwrap();
            *guard += 1;
        }
        t1.join();
        let total = *n.lock().unwrap();
        assert_eq!(total, 2);
    });
}

/// Outside a check the shadow types are plain std primitives.
#[test]
fn shadow_types_fall_back_to_std_outside_a_check() {
    let n = AtomicUsize::new(3);
    assert_eq!(n.fetch_add(2, Ordering::SeqCst), 3);
    assert_eq!(n.load(Ordering::SeqCst), 5);
    assert_eq!(
        n.compare_exchange(5, 9, Ordering::SeqCst, Ordering::SeqCst),
        Ok(5)
    );
    let m = Mutex::new(1u32);
    *m.lock().unwrap() += 1;
    assert_eq!(*m.lock().unwrap(), 2);
    assert!(!model::is_active());
}
