//! Incremental construction of [`Wfst`] values.

use crate::{Arc, ArcId, PhoneId, Result, StateEntry, StateId, Wfst, WfstError, WordId};

/// Builder assembling a [`Wfst`] one state and arc at a time.
///
/// Arcs may be added in any order; [`WfstBuilder::build`] groups them per
/// state, places non-epsilon arcs before epsilon arcs (the packed layout the
/// accelerator expects) and validates every invariant.
///
/// # Example
///
/// ```
/// use asr_wfst::builder::WfstBuilder;
/// use asr_wfst::{PhoneId, WordId};
///
/// let mut b = WfstBuilder::new();
/// let s0 = b.add_state();
/// let s1 = b.add_state();
/// b.set_start(s0);
/// b.add_arc(s0, s1, PhoneId(1), WordId(1), 0.5);
/// b.set_final(s1, 0.0);
/// let wfst = b.build()?;
/// assert_eq!(wfst.num_states(), 2);
/// # Ok::<(), asr_wfst::WfstError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct WfstBuilder {
    // Arcs per source state, in insertion order.
    adjacency: Vec<Vec<Arc>>,
    final_costs: Vec<f32>,
    start: Option<StateId>,
}

impl WfstBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder pre-sized for `states` states.
    pub fn with_capacity(states: usize) -> Self {
        Self {
            adjacency: Vec::with_capacity(states),
            final_costs: Vec::with_capacity(states),
            start: None,
        }
    }

    /// Adds a new state and returns its id.
    pub fn add_state(&mut self) -> StateId {
        let id = StateId::from_index(self.adjacency.len());
        self.adjacency.push(Vec::new());
        self.final_costs.push(f32::INFINITY);
        id
    }

    /// Adds `n` states, returning the id of the first.
    pub fn add_states(&mut self, n: usize) -> StateId {
        let first = StateId::from_index(self.adjacency.len());
        for _ in 0..n {
            self.add_state();
        }
        first
    }

    /// Number of states added so far.
    pub fn num_states(&self) -> usize {
        self.adjacency.len()
    }

    /// Marks `state` as the unique start state, replacing any previous one.
    ///
    /// # Panics
    ///
    /// Panics if `state` has not been added.
    pub fn set_start(&mut self, state: StateId) -> &mut Self {
        assert!(state.index() < self.adjacency.len(), "unknown start state");
        self.start = Some(state);
        self
    }

    /// Marks `state` as final with the given acceptance cost.
    ///
    /// # Panics
    ///
    /// Panics if `state` has not been added.
    pub fn set_final(&mut self, state: StateId, cost: f32) -> &mut Self {
        assert!(state.index() < self.adjacency.len(), "unknown final state");
        self.final_costs[state.index()] = cost;
        self
    }

    /// Adds an arc from `src` to `dest`.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dest` has not been added.
    pub fn add_arc(
        &mut self,
        src: StateId,
        dest: StateId,
        ilabel: PhoneId,
        olabel: WordId,
        weight: f32,
    ) -> &mut Self {
        assert!(src.index() < self.adjacency.len(), "unknown source state");
        assert!(
            dest.index() < self.adjacency.len(),
            "unknown destination state"
        );
        self.adjacency[src.index()].push(Arc {
            dest,
            weight,
            ilabel,
            olabel,
        });
        self
    }

    /// Adds an epsilon arc (no input label, no output word).
    pub fn add_epsilon_arc(&mut self, src: StateId, dest: StateId, weight: f32) -> &mut Self {
        self.add_arc(src, dest, PhoneId::EPSILON, WordId::NONE, weight)
    }

    /// Finalizes the transducer.
    ///
    /// Within each state, non-epsilon arcs are placed before epsilon arcs
    /// while otherwise preserving insertion order (a stable partition), then
    /// all per-state groups are concatenated into the flat arc array.
    ///
    /// # Errors
    ///
    /// Returns [`WfstError::MissingStart`] if no start state was set,
    /// [`WfstError::TooManyArcs`] if a state's out-degree exceeds the packed
    /// 16-bit fields, [`WfstError::NoFinalStates`] if no state was marked
    /// final, or [`WfstError::InvalidWeight`] for non-finite weights.
    pub fn build(self) -> Result<Wfst> {
        let start = self.start.ok_or(WfstError::MissingStart)?;
        let mut states = Vec::with_capacity(self.adjacency.len());
        let total: usize = self.adjacency.iter().map(Vec::len).sum();
        let mut arcs = Vec::with_capacity(total);
        for (idx, state_arcs) in self.adjacency.into_iter().enumerate() {
            let sid = StateId::from_index(idx);
            let first_arc = ArcId::from_index(arcs.len());
            let mut emitting = 0usize;
            let mut epsilon = 0usize;
            // Stable partition: emitting arcs keep their relative order, as
            // do epsilon arcs appended behind them.
            for arc in state_arcs.iter().filter(|a| !a.is_epsilon()) {
                arcs.push(*arc);
                emitting += 1;
            }
            for arc in state_arcs.iter().filter(|a| a.is_epsilon()) {
                arcs.push(*arc);
                epsilon += 1;
            }
            if emitting > u16::MAX as usize || epsilon > u16::MAX as usize {
                return Err(WfstError::TooManyArcs {
                    state: sid,
                    count: emitting + epsilon,
                });
            }
            states.push(StateEntry {
                first_arc,
                num_emitting: emitting as u16,
                num_epsilon: epsilon as u16,
            });
        }
        Wfst::from_parts(states, arcs, start, self.final_costs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_requires_start() {
        let mut b = WfstBuilder::new();
        let s = b.add_state();
        b.set_final(s, 0.0);
        assert_eq!(b.build().unwrap_err(), WfstError::MissingStart);
    }

    #[test]
    fn build_requires_final() {
        let mut b = WfstBuilder::new();
        let s = b.add_state();
        b.set_start(s);
        assert_eq!(b.build().unwrap_err(), WfstError::NoFinalStates);
    }

    #[test]
    fn arcs_are_stably_partitioned() {
        let mut b = WfstBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        b.set_start(s0);
        b.set_final(s1, 0.0);
        // Interleave epsilon and non-epsilon insertions.
        b.add_epsilon_arc(s0, s1, 0.1);
        b.add_arc(s0, s1, PhoneId(1), WordId::NONE, 0.2);
        b.add_epsilon_arc(s0, s1, 0.3);
        b.add_arc(s0, s1, PhoneId(2), WordId::NONE, 0.4);
        let w = b.build().unwrap();
        let arcs = w.arcs(s0);
        let weights: Vec<f32> = arcs.iter().map(|a| a.weight).collect();
        // Emitting arcs (0.2, 0.4) first, epsilons (0.1, 0.3) after, both in
        // insertion order.
        assert_eq!(weights, vec![0.2, 0.4, 0.1, 0.3]);
    }

    #[test]
    fn add_states_returns_first_id() {
        let mut b = WfstBuilder::new();
        let first = b.add_states(5);
        assert_eq!(first, StateId(0));
        assert_eq!(b.num_states(), 5);
        let next = b.add_states(3);
        assert_eq!(next, StateId(5));
    }

    #[test]
    fn builder_rejects_nan_weight_at_build() {
        let mut b = WfstBuilder::new();
        let s0 = b.add_state();
        b.set_start(s0);
        b.set_final(s0, 0.0);
        b.add_arc(s0, s0, PhoneId(1), WordId::NONE, f32::NAN);
        assert!(matches!(
            b.build().unwrap_err(),
            WfstError::InvalidWeight { .. }
        ));
    }

    #[test]
    #[should_panic(expected = "unknown source state")]
    fn add_arc_panics_on_unknown_state() {
        let mut b = WfstBuilder::new();
        b.add_arc(StateId(0), StateId(0), PhoneId(1), WordId::NONE, 0.0);
    }

    #[test]
    fn self_loops_and_parallel_arcs_are_allowed() {
        let mut b = WfstBuilder::new();
        let s0 = b.add_state();
        b.set_start(s0);
        b.set_final(s0, 0.0);
        b.add_arc(s0, s0, PhoneId(1), WordId::NONE, 0.0);
        b.add_arc(s0, s0, PhoneId(1), WordId::NONE, 1.0);
        let w = b.build().unwrap();
        assert_eq!(w.arcs(s0).len(), 2);
    }
}
