//! WFST composition: combining knowledge sources into one decoding graph.
//!
//! `compose(L, G)` matches the *output* labels of the left operand (words
//! emitted by the lexicon) against the *input* labels of the right operand
//! (a word acceptor produced by [`crate::grammar::Grammar::to_acceptor`],
//! which embeds word ids in its input-label field). The result reads
//! phones and emits words, weighted by both operands — the `L ∘ G` decoding
//! graph the Viterbi search walks.
//!
//! This is a straightforward on-the-fly composition without the
//! epsilon-sequencing filter of Mohri et al.; left arcs with no output word
//! advance `L` alone, and right epsilon arcs (none in our acceptors) would
//! advance `G` alone. For the graphs built here this produces a correct,
//! possibly non-minimal result, which is all the search needs.

use crate::builder::WfstBuilder;
use crate::grammar::Grammar;
use crate::lexicon::Lexicon;
use crate::{Result, StateId, Wfst, WfstError};
use std::collections::HashMap;

/// Composes `left` (phones → words) with `right` (a word acceptor with word
/// ids embedded in its input labels), producing a phones → words
/// transducer. Only pairs reachable from `(left.start, right.start)` are
/// materialized.
///
/// # Errors
///
/// Returns [`WfstError::IncompatibleComposition`] if the composed graph has
/// no final state (the operands share no accepted sequence), or propagates
/// builder validation failures.
pub fn compose(left: &Wfst, right: &Wfst) -> Result<Wfst> {
    let mut b = WfstBuilder::new();
    let mut index: HashMap<(StateId, StateId), StateId> = HashMap::new();
    let mut queue: Vec<(StateId, StateId)> = Vec::new();

    let start_pair = (left.start(), right.start());
    let start = b.add_state();
    index.insert(start_pair, start);
    b.set_start(start);
    queue.push(start_pair);

    while let Some((ls, rs)) = queue.pop() {
        let src = index[&(ls, rs)];
        let fl = left.final_cost(ls);
        let fr = right.final_cost(rs);
        if fl.is_finite() && fr.is_finite() {
            b.set_final(src, fl + fr);
        }
        for larc in left.arcs(ls) {
            if larc.olabel.is_none() {
                // No word emitted: advance the left operand alone.
                let pair = (larc.dest, rs);
                let dst = intern(&mut b, &mut index, &mut queue, pair);
                b.add_arc(src, dst, larc.ilabel, larc.olabel, larc.weight);
            } else {
                // Word emitted: must match an acceptor arc on the right.
                for rarc in right.arcs(rs) {
                    if rarc.ilabel.0 == larc.olabel.0 {
                        let pair = (larc.dest, rarc.dest);
                        let dst = intern(&mut b, &mut index, &mut queue, pair);
                        b.add_arc(
                            src,
                            dst,
                            larc.ilabel,
                            rarc.olabel,
                            larc.weight + rarc.weight,
                        );
                    }
                }
            }
        }
    }

    match b.build() {
        Ok(w) => Ok(w),
        Err(WfstError::NoFinalStates) => Err(WfstError::IncompatibleComposition(
            "composed graph accepts nothing".into(),
        )),
        Err(e) => Err(e),
    }
}

fn intern(
    b: &mut WfstBuilder,
    index: &mut HashMap<(StateId, StateId), StateId>,
    queue: &mut Vec<(StateId, StateId)>,
    pair: (StateId, StateId),
) -> StateId {
    if let Some(&s) = index.get(&pair) {
        return s;
    }
    let s = b.add_state();
    index.insert(pair, s);
    queue.push(pair);
    s
}

/// Builds the full decoding graph for a lexicon and grammar: `L ∘ G`.
///
/// This is the small-vocabulary analogue of Kaldi's HCLG used by the
/// functional tests and the examples: input labels are phones scored by the
/// acoustic model, output labels are words.
///
/// # Errors
///
/// Propagates lexicon/grammar construction and composition errors.
///
/// # Example
///
/// ```
/// use asr_wfst::compose::build_decoding_graph;
/// use asr_wfst::grammar::Grammar;
/// use asr_wfst::lexicon::demo_lexicon;
///
/// let lex = demo_lexicon();
/// let words: Vec<_> = (1..=lex.num_words() as u32)
///     .map(asr_wfst::WordId)
///     .collect();
/// let graph = build_decoding_graph(&lex, &Grammar::uniform(&words))?;
/// assert!(graph.num_states() > lex.num_words());
/// # Ok::<(), asr_wfst::WfstError>(())
/// ```
pub fn build_decoding_graph(lexicon: &Lexicon, grammar: &Grammar) -> Result<Wfst> {
    let l = lexicon.to_wfst()?;
    let g = grammar.to_acceptor()?;
    compose(&l, &g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexicon::demo_lexicon;
    use crate::{PhoneId, WordId};

    fn demo_graph() -> (Lexicon, Wfst) {
        let lex = demo_lexicon();
        let words: Vec<WordId> = (1..=lex.num_words() as u32).map(WordId).collect();
        let g = Grammar::uniform(&words);
        let graph = build_decoding_graph(&lex, &g).unwrap();
        (lex, graph)
    }

    /// Walks the graph with a phone sequence, returning the cheapest
    /// accepting cost and the words emitted on that path.
    fn accepts(w: &Wfst, phones: &[PhoneId]) -> Option<(f32, Vec<WordId>)> {
        // Exhaustive DFS (graphs here are tiny and acyclic per frame).
        fn go(
            w: &Wfst,
            s: StateId,
            phones: &[PhoneId],
            cost: f32,
            words: &mut Vec<WordId>,
            best: &mut Option<(f32, Vec<WordId>)>,
        ) {
            if phones.is_empty() {
                let f = w.final_cost(s);
                if f.is_finite() {
                    let total = cost + f;
                    if best.as_ref().is_none_or(|(b, _)| total < *b) {
                        *best = Some((total, words.clone()));
                    }
                }
            } else {
                for a in w.emitting_arcs(s) {
                    if a.ilabel == phones[0] {
                        if !a.olabel.is_none() {
                            words.push(a.olabel);
                        }
                        go(w, a.dest, &phones[1..], cost + a.weight, words, best);
                        if !a.olabel.is_none() {
                            words.pop();
                        }
                    }
                }
            }
            // Epsilon arcs (none in L∘G here, but keep the walker general).
            for a in w.epsilon_arcs(s) {
                go(w, a.dest, phones, cost + a.weight, words, best);
            }
        }
        let mut best = None;
        let mut words = Vec::new();
        go(w, w.start(), phones, 0.0, &mut words, &mut best);
        best
    }

    fn phones_of(lex: &Lexicon, words: &[&str]) -> Vec<PhoneId> {
        let mut out = Vec::new();
        for word in words {
            let id = lex.word_id(word).unwrap();
            let pron = lex.pronunciations().iter().find(|(w, _)| *w == id).unwrap();
            out.extend_from_slice(&pron.1);
        }
        out
    }

    #[test]
    fn graph_accepts_single_word() {
        let (lex, graph) = demo_graph();
        let (cost, words) = accepts(&graph, &phones_of(&lex, &["go"])).unwrap();
        assert_eq!(lex.transcript(&words), vec!["go"]);
        assert!(
            (cost - (12f32).ln()).abs() < 1e-5,
            "unigram cost, got {cost}"
        );
    }

    #[test]
    fn graph_accepts_word_sequences() {
        let (lex, graph) = demo_graph();
        let (_, words) = accepts(&graph, &phones_of(&lex, &["call", "mom"])).unwrap();
        assert_eq!(lex.transcript(&words), vec!["call", "mom"]);
    }

    #[test]
    fn graph_rejects_garbage_phones() {
        let (lex, graph) = demo_graph();
        let mut phones = phones_of(&lex, &["go"]);
        phones.push(PhoneId(9999));
        assert!(accepts(&graph, &phones).is_none());
    }

    #[test]
    fn graph_rejects_partial_word() {
        let (lex, graph) = demo_graph();
        let mut phones = phones_of(&lex, &["music"]);
        phones.pop(); // cut the final phone
        assert!(accepts(&graph, &phones).is_none());
    }

    #[test]
    fn bigram_costs_shape_the_best_path() {
        let lex = demo_lexicon();
        let words: Vec<WordId> = (1..=lex.num_words() as u32).map(WordId).collect();
        let mut g = Grammar::uniform(&words);
        let lights = lex.word_id("lights").unwrap();
        let on = lex.word_id("on").unwrap();
        g.set_bigram(lights, on, 0.01);
        let graph = build_decoding_graph(&lex, &g).unwrap();
        let (cost, decoded) = accepts(&graph, &phones_of(&lex, &["lights", "on"])).unwrap();
        assert_eq!(lex.transcript(&decoded), vec!["lights", "on"]);
        // start unigram + cheap bigram
        assert!((cost - ((12f32).ln() + 0.01)).abs() < 1e-5);
    }

    #[test]
    fn empty_utterance_is_accepted() {
        let (_, graph) = demo_graph();
        let (cost, words) = accepts(&graph, &[]).unwrap();
        assert_eq!(cost, 0.0);
        assert!(words.is_empty());
    }

    #[test]
    fn incompatible_composition_is_reported() {
        // Lexicon over word id 1, grammar over word id 77 only: the
        // composed graph accepts only the empty string... which still makes
        // the start state final, so composition succeeds. Force real
        // incompatibility with a non-final-start acceptor: grammar over a
        // disjoint vocabulary where L emits no matching word and L's start
        // is final, so the empty path still accepts. Instead check that no
        // non-empty path exists.
        let mut lex = Lexicon::new();
        lex.add_word("go", &["g", "ow"]);
        let g = Grammar::uniform(&[WordId(77)]);
        let graph = build_decoding_graph(&lex, &g).unwrap();
        let phones: Vec<PhoneId> = lex.pronunciations()[0].1.clone();
        assert!(accepts(&graph, &phones).is_none());
    }
}
