//! Error type shared by all WFST operations.

use crate::{ArcId, StateId};
use std::fmt;

/// Errors produced while constructing, transforming or serializing a WFST.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WfstError {
    /// A state id referenced a state that does not exist.
    UnknownState(StateId),
    /// An arc id was out of range for the arc array.
    UnknownArc(ArcId),
    /// The transducer has no start state set.
    MissingStart,
    /// The transducer has no final state, so no path can be accepted.
    NoFinalStates,
    /// A state's arc count exceeds the 16-bit field of the packed layout.
    TooManyArcs {
        /// State whose out-degree overflowed.
        state: StateId,
        /// Offending arc count.
        count: usize,
    },
    /// An arc weight was NaN or infinite, which would poison the search.
    InvalidWeight {
        /// State the arc departs from.
        state: StateId,
        /// Offending weight value.
        weight: f32,
    },
    /// A serialized image was truncated or malformed.
    Corrupt(String),
    /// A degree-sorted layout's direct-index unit disagreed with the state
    /// array it describes: the computed arc range does not match the
    /// stored one, so the layout (or the unit's registers) is corrupt.
    LayoutMismatch {
        /// State (in the sorted numbering) where the mismatch surfaced.
        state: StateId,
        /// First-arc index the unit computed.
        computed_first: ArcId,
        /// Out-degree the unit computed.
        computed_degree: usize,
        /// First-arc index stored in the state array.
        actual_first: ArcId,
        /// Out-degree stored in the state array.
        actual_degree: usize,
    },
    /// The operands of a composition used incompatible label spaces.
    IncompatibleComposition(String),
}

impl fmt::Display for WfstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WfstError::UnknownState(s) => write!(f, "unknown state {s:?}"),
            WfstError::UnknownArc(a) => write!(f, "unknown arc {a:?}"),
            WfstError::MissingStart => write!(f, "transducer has no start state"),
            WfstError::NoFinalStates => write!(f, "transducer has no final states"),
            WfstError::TooManyArcs { state, count } => write!(
                f,
                "state {state:?} has {count} arcs, exceeding the 16-bit packed field"
            ),
            WfstError::InvalidWeight { state, weight } => {
                write!(f, "arc from {state:?} has non-finite weight {weight}")
            }
            WfstError::Corrupt(msg) => write!(f, "corrupt serialized transducer: {msg}"),
            WfstError::LayoutMismatch {
                state,
                computed_first,
                computed_degree,
                actual_first,
                actual_degree,
            } => write!(
                f,
                "direct-index unit disagrees with the sorted layout at {state:?}: \
                 computed ({computed_first:?}, degree {computed_degree}), \
                 stored ({actual_first:?}, degree {actual_degree})"
            ),
            WfstError::IncompatibleComposition(msg) => {
                write!(f, "incompatible composition operands: {msg}")
            }
        }
    }
}

impl std::error::Error for WfstError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = WfstError::TooManyArcs {
            state: StateId(3),
            count: 70000,
        };
        let msg = e.to_string();
        assert!(msg.contains("70000"));
        assert!(msg.contains("16-bit"));
        assert!(msg.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: std::error::Error + Send + Sync + 'static>(_: E) {}
        takes_error(WfstError::MissingStart);
    }

    #[test]
    fn variants_are_distinguishable() {
        assert_ne!(
            WfstError::UnknownState(StateId(1)),
            WfstError::UnknownState(StateId(2))
        );
        assert_ne!(WfstError::MissingStart, WfstError::NoFinalStates);
    }
}
