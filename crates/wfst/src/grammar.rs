//! Language model: the `G` knowledge source (bigram grammar).
//!
//! The paper stresses that the WFST approach compiles all knowledge sources
//! — context dependency, pronunciation, grammar — into one transducer, so
//! the hardware only ever walks a graph. This module provides a bigram
//! grammar over a [`crate::lexicon::Lexicon`]'s words and emits it as a word
//! acceptor ready for composition with the lexicon transducer `L`.

use crate::builder::WfstBuilder;
use crate::{PhoneId, Result, Wfst, WordId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A bigram language model with add-one-style backoff to unigrams.
///
/// Costs are negative natural logs of probabilities. Unspecified bigrams
/// fall back to the successor's unigram cost plus a backoff penalty.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Grammar {
    words: Vec<WordId>,
    unigram_costs: BTreeMap<u32, f32>,
    bigram_costs: BTreeMap<(u32, u32), f32>,
    backoff_penalty: f32,
}

impl Grammar {
    /// Creates a uniform unigram grammar over `words`.
    pub fn uniform(words: &[WordId]) -> Self {
        let cost = (words.len().max(1) as f32).ln();
        Self {
            words: words.to_vec(),
            unigram_costs: words.iter().map(|w| (w.0, cost)).collect(),
            bigram_costs: BTreeMap::new(),
            backoff_penalty: 0.0,
        }
    }

    /// Sets an explicit unigram cost for `word`.
    pub fn set_unigram(&mut self, word: WordId, cost: f32) -> &mut Self {
        self.unigram_costs.insert(word.0, cost);
        self
    }

    /// Sets an explicit bigram cost for the pair `prev -> next`.
    pub fn set_bigram(&mut self, prev: WordId, next: WordId, cost: f32) -> &mut Self {
        self.bigram_costs.insert((prev.0, next.0), cost);
        self
    }

    /// Sets the penalty added when a bigram backs off to the unigram.
    pub fn set_backoff_penalty(&mut self, penalty: f32) -> &mut Self {
        self.backoff_penalty = penalty;
        self
    }

    /// Words covered by the grammar.
    pub fn words(&self) -> &[WordId] {
        &self.words
    }

    /// Cost of starting an utterance with `word`.
    pub fn start_cost(&self, word: WordId) -> f32 {
        self.unigram_costs.get(&word.0).copied().unwrap_or(f32::MAX)
    }

    /// Cost of `next` following `prev`.
    pub fn transition_cost(&self, prev: WordId, next: WordId) -> f32 {
        if let Some(&c) = self.bigram_costs.get(&(prev.0, next.0)) {
            return c;
        }
        self.start_cost(next) + self.backoff_penalty
    }

    /// Emits the grammar as a word acceptor.
    ///
    /// Because the shared [`crate::Arc`] type fixes the input-label space to
    /// phones, the acceptor *embeds word ids in the input-label field*
    /// (`ilabel.0 == olabel.0 == word id`). [`crate::compose::compose`]
    /// interprets the right-hand operand this way, matching the left
    /// operand's output words against these labels.
    ///
    /// # Errors
    ///
    /// Propagates builder validation errors (an empty grammar still builds:
    /// a single final start state accepting the empty utterance).
    pub fn to_acceptor(&self) -> Result<Wfst> {
        let mut b = WfstBuilder::new();
        let start = b.add_state();
        b.set_start(start);
        b.set_final(start, 0.0); // empty utterance accepted
        let mut word_state = BTreeMap::new();
        for &w in &self.words {
            let s = b.add_state();
            word_state.insert(w.0, s);
            b.set_final(s, 0.0);
        }
        for &w in &self.words {
            let dst = word_state[&w.0];
            b.add_arc(start, dst, PhoneId(w.0), w, self.start_cost(w));
        }
        for &prev in &self.words {
            let src = word_state[&prev.0];
            for &next in &self.words {
                let dst = word_state[&next.0];
                b.add_arc(
                    src,
                    dst,
                    PhoneId(next.0),
                    next,
                    self.transition_cost(prev, next),
                );
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_words() -> Vec<WordId> {
        vec![WordId(1), WordId(2), WordId(3)]
    }

    #[test]
    fn uniform_grammar_costs_are_log_n() {
        let g = Grammar::uniform(&three_words());
        let expect = 3f32.ln();
        for w in three_words() {
            assert!((g.start_cost(w) - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn bigram_overrides_backoff() {
        let mut g = Grammar::uniform(&three_words());
        g.set_backoff_penalty(1.0);
        g.set_bigram(WordId(1), WordId(2), 0.25);
        assert!((g.transition_cost(WordId(1), WordId(2)) - 0.25).abs() < 1e-6);
        let backoff = g.transition_cost(WordId(1), WordId(3));
        assert!((backoff - (3f32.ln() + 1.0)).abs() < 1e-6);
    }

    #[test]
    fn acceptor_has_one_state_per_word_plus_start() {
        let g = Grammar::uniform(&three_words());
        let a = g.to_acceptor().unwrap();
        assert_eq!(a.num_states(), 4);
        // start fan-out + full bigram matrix
        assert_eq!(a.num_arcs(), 3 + 9);
        // Word ids are embedded in both label fields.
        for arc in a.arc_entries() {
            assert_eq!(arc.ilabel.0, arc.olabel.0);
            assert!(!arc.is_epsilon());
        }
    }

    #[test]
    fn acceptor_accepts_empty_and_every_word_state() {
        let g = Grammar::uniform(&three_words());
        let a = g.to_acceptor().unwrap();
        assert!(a.is_final(a.start()));
        assert_eq!(a.final_states().count(), 4);
    }

    #[test]
    fn unknown_word_cost_is_prohibitive() {
        let g = Grammar::uniform(&three_words());
        assert_eq!(g.start_cost(WordId(42)), f32::MAX);
    }
}
