//! Strongly-typed identifiers for WFST entities.
//!
//! The accelerator hardware manipulates raw 32-bit indices; these newtypes
//! keep the software model honest about which index space a value belongs to
//! (states vs. arcs vs. labels) while compiling down to the same `u32`.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
        )]
        #[repr(transparent)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index as a `usize` suitable for array indexing.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Creates an id from a `usize` index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in 32 bits, which matches the
            /// 32-bit index fields of the hardware memory layout.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                assert!(index <= u32::MAX as usize, "index exceeds 32-bit id space");
                Self(index as u32)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                Self(v)
            }
        }

        impl From<$name> for u32 {
            fn from(v: $name) -> u32 {
                v.0
            }
        }
    };
}

id_type!(
    /// Index of a static WFST state (a node of the recognition network).
    ///
    /// The paper distinguishes static *states* from dynamic *tokens*; a
    /// token is an active state created during the search and lives in
    /// `asr-decoder` / `asr-accel`.
    StateId,
    "s"
);

id_type!(
    /// Index into the flat arc array. All outgoing arcs of a state occupy
    /// consecutive indices, non-epsilon arcs first.
    ArcId,
    "a"
);

id_type!(
    /// Input label of an arc: a (context-dependent) phoneme identifier.
    ///
    /// `PhoneId::EPSILON` (index 0) marks epsilon arcs, which consume no
    /// frame of speech. Kaldi's English WFST has ~11.5% epsilon arcs.
    PhoneId,
    "p"
);

id_type!(
    /// Output label of an arc: a word identifier, or `WordId::NONE` when the
    /// transition emits no word (the dash in Figure 2a).
    WordId,
    "w"
);

impl PhoneId {
    /// The reserved epsilon input label: traversing such an arc does not
    /// consume an acoustic frame.
    pub const EPSILON: PhoneId = PhoneId(0);

    /// Returns `true` for the epsilon label.
    #[inline]
    pub fn is_epsilon(self) -> bool {
        self == Self::EPSILON
    }
}

impl WordId {
    /// The reserved "no output word" label.
    pub const NONE: WordId = WordId(0);

    /// Returns `true` if the label emits no word.
    #[inline]
    pub fn is_none(self) -> bool {
        self == Self::NONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_through_usize() {
        let s = StateId::from_index(42);
        assert_eq!(s.index(), 42);
        assert_eq!(u32::from(s), 42);
        assert_eq!(StateId::from(42u32), s);
    }

    #[test]
    fn epsilon_and_none_are_index_zero() {
        assert!(PhoneId::EPSILON.is_epsilon());
        assert!(!PhoneId(3).is_epsilon());
        assert!(WordId::NONE.is_none());
        assert!(!WordId(1).is_none());
    }

    #[test]
    fn debug_formats_are_prefixed_and_nonempty() {
        assert_eq!(format!("{:?}", StateId(7)), "s7");
        assert_eq!(format!("{:?}", ArcId(9)), "a9");
        assert_eq!(format!("{:?}", PhoneId(0)), "p0");
        assert_eq!(format!("{:?}", WordId(1)), "w1");
    }

    #[test]
    fn display_is_bare_number() {
        assert_eq!(StateId(5).to_string(), "5");
    }

    #[test]
    #[should_panic(expected = "32-bit")]
    fn from_index_rejects_overflow() {
        let _ = StateId::from_index(u32::MAX as usize + 1);
    }

    #[test]
    fn ordering_follows_raw_index() {
        assert!(StateId(1) < StateId(2));
        assert!(ArcId(0) < ArcId(u32::MAX));
    }
}
