//! Serialization of transducers to files and byte buffers.
//!
//! Three formats are provided:
//!
//! * the **v1 packed container** (this module): the DRAM image of
//!   [`crate::layout`] prefixed with a small header. It carries the
//!   [`Wfst`] only — **not** the degree-sorted layout's
//!   [`crate::sorted::DirectIndexUnit`] registers or renumbering maps, so
//!   a round-tripped sorted graph must *recompute* them (see
//!   [`sorted_from_bytes`]); deserialization also rebuilds every record
//!   into fresh `Vec`s;
//! * the **v2 zero-copy image** ([`crate::store`]): the full
//!   [`crate::sorted::SortedWfst`] — records, unit registers, maps — in
//!   aligned sections viewed in place after a single validation pass;
//! * **JSON** via serde for small graphs and golden-file tests (behind the
//!   caller's serializer of choice; `Wfst` derives `Serialize`).
//!
//! [`load_sorted`] / [`sorted_from_bytes`] accept either container
//! version and are what serving code should call.

use crate::layout;
use crate::sorted::SortedWfst;
use crate::store;
use crate::{Result, StateId, Wfst, WfstError};
use bytes::{Buf, BufMut};
use std::fs::File;
use std::io::{Read as _, Write as _};
use std::path::Path;

/// Magic number of the packed container: "WFST" followed by a version byte.
const MAGIC: &[u8; 4] = b"WFST";
const VERSION: u8 = 1;

/// Serializes a transducer into the packed container format.
pub fn to_bytes(wfst: &Wfst) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.put_u8(VERSION);
    out.put_u64_le(wfst.num_states() as u64);
    out.put_u64_le(wfst.num_arcs() as u64);
    out.put_u32_le(wfst.start().0);
    // Final states: count then (state, cost) pairs.
    let finals: Vec<(StateId, f32)> = wfst.final_states().collect();
    out.put_u64_le(finals.len() as u64);
    for (s, c) in finals {
        out.put_u32_le(s.0);
        out.put_f32_le(c);
    }
    layout::write_image(wfst, &mut out);
    out
}

/// Deserializes a transducer from the packed container format.
///
/// # Errors
///
/// Returns [`WfstError::Corrupt`] for bad magic/version/truncation, or any
/// validation error of [`Wfst::from_parts`].
pub fn from_bytes(mut bytes: &[u8]) -> Result<Wfst> {
    if bytes.len() < 5 || &bytes[..4] != MAGIC {
        return Err(WfstError::Corrupt("bad magic".into()));
    }
    bytes.advance(4);
    let version = bytes.get_u8();
    if version != VERSION {
        return Err(WfstError::Corrupt(format!("unsupported version {version}")));
    }
    if bytes.remaining() < 8 + 8 + 4 + 8 {
        return Err(WfstError::Corrupt("truncated header".into()));
    }
    let num_states = bytes.get_u64_le() as usize;
    let num_arcs = bytes.get_u64_le() as usize;
    let start = StateId(bytes.get_u32_le());
    let num_finals = bytes.get_u64_le() as usize;
    if bytes.remaining() < num_finals * 8 {
        return Err(WfstError::Corrupt("truncated final-state table".into()));
    }
    let mut final_costs = vec![f32::INFINITY; num_states];
    for _ in 0..num_finals {
        let s = bytes.get_u32_le() as usize;
        let c = bytes.get_f32_le();
        if s >= num_states {
            return Err(WfstError::Corrupt(format!("final state {s} out of range")));
        }
        final_costs[s] = c;
    }
    let (states, arcs) = layout::read_image(bytes, num_states, num_arcs)?;
    Wfst::from_parts(states, arcs, start, final_costs)
}

/// Writes the packed container to `path`.
///
/// # Errors
///
/// Returns [`WfstError::Corrupt`] wrapping the underlying I/O failure.
pub fn save(wfst: &Wfst, path: &Path) -> Result<()> {
    let bytes = to_bytes(wfst);
    let mut f =
        File::create(path).map_err(|e| WfstError::Corrupt(format!("create {path:?}: {e}")))?;
    f.write_all(&bytes)
        .map_err(|e| WfstError::Corrupt(format!("write {path:?}: {e}")))
}

/// Reads a packed container from `path`.
///
/// # Errors
///
/// Returns [`WfstError::Corrupt`] for I/O or format failures.
pub fn load(path: &Path) -> Result<Wfst> {
    let mut f = File::open(path).map_err(|e| WfstError::Corrupt(format!("open {path:?}: {e}")))?;
    let mut bytes = Vec::new();
    f.read_to_end(&mut bytes)
        .map_err(|e| WfstError::Corrupt(format!("read {path:?}: {e}")))?;
    from_bytes(&bytes)
}

/// Deserializes a degree-sorted transducer from either container version.
///
/// * **v2** bytes validate into a [`crate::store::GraphImage`] and the
///   returned [`SortedWfst`] views the (re-aligned copy of the) buffer in
///   place, unit registers and renumbering maps included.
/// * **v1** bytes carry no layout registers: the stored [`Wfst`] is
///   rebuilt arc-by-arc and the sorted layout is **recomputed** with
///   [`SortedWfst::new`] (the default threshold `N = 16`). For a graph
///   that was already in sorted order the recomputation reproduces the
///   identical layout and unit, but the original old↔new renumbering maps
///   are lost — the maps come back as the identity permutation.
///
/// # Errors
///
/// Returns a typed [`WfstError`] for corrupt input of either version.
pub fn sorted_from_bytes(bytes: &[u8]) -> Result<SortedWfst> {
    if store::image_version(bytes) == Some(store::STORE_VERSION) {
        return Ok(store::GraphImage::from_bytes(bytes)?.to_sorted());
    }
    SortedWfst::new(&from_bytes(bytes)?)
}

/// Reads a degree-sorted transducer from `path`, accepting either
/// container version (see [`sorted_from_bytes`] for the v1 recompute
/// semantics). A v2 file is read directly into an aligned buffer and
/// viewed zero-copy.
///
/// # Errors
///
/// Returns a typed [`WfstError`] for I/O failures or corrupt content.
pub fn load_sorted(path: &Path) -> Result<SortedWfst> {
    let buf = store::ImageBytes::read_file(path)?;
    if store::image_version(buf.as_bytes()) == Some(store::STORE_VERSION) {
        return Ok(store::GraphImage::from_image_bytes(buf)?.to_sorted());
    }
    SortedWfst::new(&from_bytes(buf.as_bytes())?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{SynthConfig, SynthWfst};

    fn sample() -> Wfst {
        SynthWfst::generate(&SynthConfig::with_states(500)).unwrap()
    }

    fn assert_same(a: &Wfst, b: &Wfst) {
        assert_eq!(a.num_states(), b.num_states());
        assert_eq!(a.num_arcs(), b.num_arcs());
        assert_eq!(a.start(), b.start());
        assert_eq!(a.state_entries(), b.state_entries());
        for (x, y) in a.arc_entries().iter().zip(b.arc_entries()) {
            assert_eq!(x.dest, y.dest);
            assert_eq!(x.ilabel, y.ilabel);
            assert_eq!(x.olabel, y.olabel);
            assert_eq!(x.weight.to_bits(), y.weight.to_bits());
        }
        let fa: Vec<_> = a.final_states().collect();
        let fb: Vec<_> = b.final_states().collect();
        assert_eq!(fa, fb);
    }

    #[test]
    fn bytes_roundtrip() {
        let w = sample();
        let bytes = to_bytes(&w);
        let back = from_bytes(&bytes).unwrap();
        assert_same(&w, &back);
    }

    #[test]
    fn file_roundtrip() {
        let w = sample();
        let dir = std::env::temp_dir().join("asr_wfst_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.wfst");
        save(&w, &path).unwrap();
        let back = load(&path).unwrap();
        assert_same(&w, &back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = from_bytes(b"NOPE\x01rest").unwrap_err();
        assert!(matches!(err, WfstError::Corrupt(_)));
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut bytes = to_bytes(&sample());
        bytes[4] = 99;
        let err = from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let bytes = to_bytes(&sample());
        let err = from_bytes(&bytes[..bytes.len() / 2]).unwrap_err();
        assert!(matches!(err, WfstError::Corrupt(_)));
    }

    #[test]
    fn v1_drops_the_unit_and_recompute_restores_it_for_sorted_graphs() {
        // Satellite fix pin: the v1 container stores only the `Wfst`, so the
        // `DirectIndexUnit` registers do not survive a round trip and
        // `sorted_from_bytes` must *recompute* them. Because the serialized
        // graph was already in sorted order, the recomputation (stable, by
        // ascending degree) reproduces the identical layout and unit...
        let sorted = crate::sorted::SortedWfst::new(&sample()).unwrap();
        let v1 = to_bytes(sorted.wfst());
        let back = sorted_from_bytes(&v1).unwrap();
        assert_eq!(back.unit(), sorted.unit());
        assert_eq!(back.wfst().state_entries(), sorted.wfst().state_entries());
        assert_eq!(back.threshold(), sorted.threshold());
        // ...but the original old<->new renumbering maps are lost: the
        // recompute sees an already-sorted graph, so they degrade to the
        // identity permutation.
        for i in 0..back.wfst().num_states() {
            let sid = StateId(i as u32);
            assert_eq!(back.map_state(sid), sid);
            assert_eq!(back.unmap_state(sid), sid);
        }
    }

    #[test]
    fn sorted_from_bytes_reads_both_container_versions() {
        let sorted = crate::sorted::SortedWfst::new(&sample()).unwrap();
        let from_v1 = sorted_from_bytes(&to_bytes(sorted.wfst())).unwrap();
        let from_v2 = sorted_from_bytes(&crate::store::to_bytes(&sorted)).unwrap();
        assert_eq!(
            from_v1.wfst().state_entries(),
            from_v2.wfst().state_entries()
        );
        assert_eq!(from_v1.unit(), from_v2.unit());
        assert_eq!(from_v2.wfst().start(), sorted.wfst().start());
        // Only v2 carries the true maps; v1's recompute degraded to identity
        // (asserted above), while v2 preserves them byte-for-byte.
        for i in 0..sorted.wfst().num_states() {
            let sid = StateId(i as u32);
            assert_eq!(from_v2.unmap_state(sid), sorted.unmap_state(sid));
        }
    }

    #[test]
    fn load_sorted_dispatches_on_version() {
        let sorted = crate::sorted::SortedWfst::new(&sample()).unwrap();
        let dir = std::env::temp_dir().join("asr_wfst_io_sorted_test");
        std::fs::create_dir_all(&dir).unwrap();
        let v1_path = dir.join("model_v1.wfst");
        let v2_path = dir.join("model_v2.wfst");
        save(sorted.wfst(), &v1_path).unwrap();
        crate::store::save(&sorted, &v2_path).unwrap();
        let a = load_sorted(&v1_path).unwrap();
        let b = load_sorted(&v2_path).unwrap();
        assert_eq!(a.wfst().state_entries(), b.wfst().state_entries());
        assert_eq!(a.unit(), b.unit());
        assert!(b.wfst().is_image_backed());
        assert!(!a.wfst().is_image_backed());
        std::fs::remove_file(&v1_path).ok();
        std::fs::remove_file(&v2_path).ok();
    }

    #[test]
    fn out_of_range_final_state_is_rejected() {
        let w = {
            let mut b = crate::builder::WfstBuilder::new();
            let s = b.add_state();
            b.set_start(s);
            b.set_final(s, 0.0);
            b.build().unwrap()
        };
        let mut bytes = to_bytes(&w);
        // Corrupt the single final-state id (offset: 4 magic + 1 version +
        // 8 states + 8 arcs + 4 start + 8 count = 33).
        bytes[33..37].copy_from_slice(&100u32.to_le_bytes());
        let err = from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }
}
