//! Serialization of transducers to files and byte buffers.
//!
//! Two formats are provided:
//!
//! * the **packed image** (see [`crate::layout`]) prefixed with a small
//!   header — exactly what the accelerator sees in DRAM, plus the metadata
//!   needed to reconstruct a [`Wfst`] (start state, final states);
//! * **JSON** via serde for small graphs and golden-file tests (behind the
//!   caller's serializer of choice; `Wfst` derives `Serialize`).

use crate::layout;
use crate::{Result, StateId, Wfst, WfstError};
use bytes::{Buf, BufMut};
use std::fs::File;
use std::io::{Read as _, Write as _};
use std::path::Path;

/// Magic number of the packed container: "WFST" followed by a version byte.
const MAGIC: &[u8; 4] = b"WFST";
const VERSION: u8 = 1;

/// Serializes a transducer into the packed container format.
pub fn to_bytes(wfst: &Wfst) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.put_u8(VERSION);
    out.put_u64_le(wfst.num_states() as u64);
    out.put_u64_le(wfst.num_arcs() as u64);
    out.put_u32_le(wfst.start().0);
    // Final states: count then (state, cost) pairs.
    let finals: Vec<(StateId, f32)> = wfst.final_states().collect();
    out.put_u64_le(finals.len() as u64);
    for (s, c) in finals {
        out.put_u32_le(s.0);
        out.put_f32_le(c);
    }
    layout::write_image(wfst, &mut out);
    out
}

/// Deserializes a transducer from the packed container format.
///
/// # Errors
///
/// Returns [`WfstError::Corrupt`] for bad magic/version/truncation, or any
/// validation error of [`Wfst::from_parts`].
pub fn from_bytes(mut bytes: &[u8]) -> Result<Wfst> {
    if bytes.len() < 5 || &bytes[..4] != MAGIC {
        return Err(WfstError::Corrupt("bad magic".into()));
    }
    bytes.advance(4);
    let version = bytes.get_u8();
    if version != VERSION {
        return Err(WfstError::Corrupt(format!("unsupported version {version}")));
    }
    if bytes.remaining() < 8 + 8 + 4 + 8 {
        return Err(WfstError::Corrupt("truncated header".into()));
    }
    let num_states = bytes.get_u64_le() as usize;
    let num_arcs = bytes.get_u64_le() as usize;
    let start = StateId(bytes.get_u32_le());
    let num_finals = bytes.get_u64_le() as usize;
    if bytes.remaining() < num_finals * 8 {
        return Err(WfstError::Corrupt("truncated final-state table".into()));
    }
    let mut final_costs = vec![f32::INFINITY; num_states];
    for _ in 0..num_finals {
        let s = bytes.get_u32_le() as usize;
        let c = bytes.get_f32_le();
        if s >= num_states {
            return Err(WfstError::Corrupt(format!("final state {s} out of range")));
        }
        final_costs[s] = c;
    }
    let (states, arcs) = layout::read_image(bytes, num_states, num_arcs)?;
    Wfst::from_parts(states, arcs, start, final_costs)
}

/// Writes the packed container to `path`.
///
/// # Errors
///
/// Returns [`WfstError::Corrupt`] wrapping the underlying I/O failure.
pub fn save(wfst: &Wfst, path: &Path) -> Result<()> {
    let bytes = to_bytes(wfst);
    let mut f =
        File::create(path).map_err(|e| WfstError::Corrupt(format!("create {path:?}: {e}")))?;
    f.write_all(&bytes)
        .map_err(|e| WfstError::Corrupt(format!("write {path:?}: {e}")))
}

/// Reads a packed container from `path`.
///
/// # Errors
///
/// Returns [`WfstError::Corrupt`] for I/O or format failures.
pub fn load(path: &Path) -> Result<Wfst> {
    let mut f = File::open(path).map_err(|e| WfstError::Corrupt(format!("open {path:?}: {e}")))?;
    let mut bytes = Vec::new();
    f.read_to_end(&mut bytes)
        .map_err(|e| WfstError::Corrupt(format!("read {path:?}: {e}")))?;
    from_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{SynthConfig, SynthWfst};

    fn sample() -> Wfst {
        SynthWfst::generate(&SynthConfig::with_states(500)).unwrap()
    }

    fn assert_same(a: &Wfst, b: &Wfst) {
        assert_eq!(a.num_states(), b.num_states());
        assert_eq!(a.num_arcs(), b.num_arcs());
        assert_eq!(a.start(), b.start());
        assert_eq!(a.state_entries(), b.state_entries());
        for (x, y) in a.arc_entries().iter().zip(b.arc_entries()) {
            assert_eq!(x.dest, y.dest);
            assert_eq!(x.ilabel, y.ilabel);
            assert_eq!(x.olabel, y.olabel);
            assert_eq!(x.weight.to_bits(), y.weight.to_bits());
        }
        let fa: Vec<_> = a.final_states().collect();
        let fb: Vec<_> = b.final_states().collect();
        assert_eq!(fa, fb);
    }

    #[test]
    fn bytes_roundtrip() {
        let w = sample();
        let bytes = to_bytes(&w);
        let back = from_bytes(&bytes).unwrap();
        assert_same(&w, &back);
    }

    #[test]
    fn file_roundtrip() {
        let w = sample();
        let dir = std::env::temp_dir().join("asr_wfst_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.wfst");
        save(&w, &path).unwrap();
        let back = load(&path).unwrap();
        assert_same(&w, &back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = from_bytes(b"NOPE\x01rest").unwrap_err();
        assert!(matches!(err, WfstError::Corrupt(_)));
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut bytes = to_bytes(&sample());
        bytes[4] = 99;
        let err = from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let bytes = to_bytes(&sample());
        let err = from_bytes(&bytes[..bytes.len() / 2]).unwrap_err();
        assert!(matches!(err, WfstError::Corrupt(_)));
    }

    #[test]
    fn out_of_range_final_state_is_rejected() {
        let w = {
            let mut b = crate::builder::WfstBuilder::new();
            let s = b.add_state();
            b.set_start(s);
            b.set_final(s, 0.0);
            b.build().unwrap()
        };
        let mut bytes = to_bytes(&w);
        // Corrupt the single final-state id (offset: 4 magic + 1 version +
        // 8 states + 8 arcs + 4 start + 8 count = 33).
        bytes[33..37].copy_from_slice(&100u32.to_le_bytes());
        let err = from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }
}
