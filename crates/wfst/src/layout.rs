//! Byte-exact main-memory image of a WFST.
//!
//! Section III of the paper fixes the representation the accelerator walks:
//! states and arcs live in two separate flat arrays. Each state record packs
//! three attributes into 64 bits (first-arc index: 32 bits, non-epsilon arc
//! count: 16 bits, epsilon arc count: 16 bits); each arc packs four 32-bit
//! attributes into 128 bits (destination state, weight, input label, output
//! label). The cycle-accurate simulator computes cache/DRAM addresses from
//! this layout, and the Kaldi English WFST (13.2M states, 34.5M arcs) comes
//! out at 618 MB — reproduced by `kaldi_scale_size_matches_paper` below.

use crate::{Arc, ArcId, PhoneId, StateEntry, StateId, Wfst, WordId};
use bytes::{Buf, BufMut};

/// Bytes per packed state record (64 bits).
pub const STATE_BYTES: u64 = 8;
/// Bytes per packed arc record (128 bits).
pub const ARC_BYTES: u64 = 16;

/// Address map of the WFST image inside the accelerator's main memory.
///
/// The state array starts at [`MemoryLayout::states_base`] and the arc array
/// immediately follows (64-byte aligned so cache lines never straddle the
/// two regions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryLayout {
    states_base: u64,
    arcs_base: u64,
    num_states: u64,
    num_arcs: u64,
}

impl MemoryLayout {
    /// Builds the address map for a transducer placed at `base`.
    pub fn new(wfst: &Wfst, base: u64) -> Self {
        Self::with_counts(wfst.num_states() as u64, wfst.num_arcs() as u64, base)
    }

    /// Builds an address map from raw element counts. Useful for reasoning
    /// about full-scale models (13.2M states / 34.5M arcs) without
    /// materializing them.
    pub fn with_counts(num_states: u64, num_arcs: u64, base: u64) -> Self {
        let states_base = base;
        let states_bytes = num_states * STATE_BYTES;
        // Align the arc array to a cache line boundary.
        let arcs_base = (states_base + states_bytes + 63) & !63;
        Self {
            states_base,
            arcs_base,
            num_states,
            num_arcs,
        }
    }

    /// Base address of the state array.
    #[inline]
    pub fn states_base(&self) -> u64 {
        self.states_base
    }

    /// Base address of the arc array.
    #[inline]
    pub fn arcs_base(&self) -> u64 {
        self.arcs_base
    }

    /// Main-memory address of the packed record of `state`.
    #[inline]
    pub fn state_addr(&self, state: StateId) -> u64 {
        debug_assert!((state.index() as u64) < self.num_states);
        self.states_base + state.index() as u64 * STATE_BYTES
    }

    /// Main-memory address of the packed record of `arc`.
    #[inline]
    pub fn arc_addr(&self, arc: ArcId) -> u64 {
        debug_assert!((arc.index() as u64) < self.num_arcs);
        self.arcs_base + arc.index() as u64 * ARC_BYTES
    }

    /// First address past the WFST image.
    #[inline]
    pub fn end(&self) -> u64 {
        self.arcs_base + self.num_arcs * ARC_BYTES
    }

    /// Total footprint in bytes (state array + alignment + arc array).
    #[inline]
    pub fn total_bytes(&self) -> u64 {
        self.end() - self.states_base
    }
}

/// Packs one state record into its 64-bit wire format.
#[inline]
pub fn pack_state(entry: StateEntry) -> u64 {
    (entry.first_arc.0 as u64)
        | ((entry.num_emitting as u64) << 32)
        | ((entry.num_epsilon as u64) << 48)
}

/// Unpacks a 64-bit state record.
#[inline]
pub fn unpack_state(word: u64) -> StateEntry {
    StateEntry {
        first_arc: ArcId((word & 0xFFFF_FFFF) as u32),
        num_emitting: ((word >> 32) & 0xFFFF) as u16,
        num_epsilon: ((word >> 48) & 0xFFFF) as u16,
    }
}

/// Packs one arc record into its 128-bit wire format (little-endian fields:
/// destination, weight bits, input label, output label).
#[inline]
pub fn pack_arc(arc: Arc) -> u128 {
    (arc.dest.0 as u128)
        | ((arc.weight.to_bits() as u128) << 32)
        | ((arc.ilabel.0 as u128) << 64)
        | ((arc.olabel.0 as u128) << 96)
}

/// Unpacks a 128-bit arc record.
#[inline]
pub fn unpack_arc(word: u128) -> Arc {
    Arc {
        dest: StateId((word & 0xFFFF_FFFF) as u32),
        weight: f32::from_bits(((word >> 32) & 0xFFFF_FFFF) as u32),
        ilabel: PhoneId(((word >> 64) & 0xFFFF_FFFF) as u32),
        olabel: WordId(((word >> 96) & 0xFFFF_FFFF) as u32),
    }
}

/// Serializes the full memory image (state array, alignment padding, arc
/// array) exactly as the accelerator would see it in DRAM.
pub fn write_image(wfst: &Wfst, out: &mut Vec<u8>) {
    let layout = MemoryLayout::new(wfst, 0);
    out.reserve(layout.total_bytes() as usize);
    for entry in wfst.state_entries() {
        out.put_u64_le(pack_state(*entry));
    }
    let pad = (layout.arcs_base() - layout.states_base()) as usize
        - wfst.state_entries().len() * STATE_BYTES as usize;
    out.extend(std::iter::repeat_n(0u8, pad));
    for arc in wfst.arc_entries() {
        out.put_u128_le(pack_arc(*arc));
    }
}

/// Reads back the state and arc arrays from a memory image produced by
/// [`write_image`].
///
/// # Errors
///
/// Returns [`crate::WfstError::Corrupt`] if the buffer is shorter than the
/// declared element counts require.
pub fn read_image(
    mut bytes: &[u8],
    num_states: usize,
    num_arcs: usize,
) -> crate::Result<(Vec<StateEntry>, Vec<Arc>)> {
    let layout = MemoryLayout::with_counts(num_states as u64, num_arcs as u64, 0);
    if (bytes.len() as u64) < layout.total_bytes() {
        return Err(crate::WfstError::Corrupt(format!(
            "image of {} bytes, need {}",
            bytes.len(),
            layout.total_bytes()
        )));
    }
    let mut states = Vec::with_capacity(num_states);
    for _ in 0..num_states {
        states.push(unpack_state(bytes.get_u64_le()));
    }
    let pad = (layout.arcs_base() - num_states as u64 * STATE_BYTES) as usize;
    bytes.advance(pad);
    let mut arcs = Vec::with_capacity(num_arcs);
    for _ in 0..num_arcs {
        arcs.push(unpack_arc(bytes.get_u128_le()));
    }
    Ok((states, arcs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::WfstBuilder;

    #[test]
    fn state_pack_roundtrip() {
        let e = StateEntry {
            first_arc: ArcId(0xDEAD_BEEF),
            num_emitting: 770,
            num_epsilon: 3,
        };
        assert_eq!(unpack_state(pack_state(e)), e);
    }

    #[test]
    fn arc_pack_roundtrip_preserves_weight_bits() {
        let a = Arc {
            dest: StateId(13_000_000),
            weight: -3.25e-2,
            ilabel: PhoneId(4321),
            olabel: WordId(124_999),
        };
        let back = unpack_arc(pack_arc(a));
        assert_eq!(back.dest, a.dest);
        assert_eq!(back.weight.to_bits(), a.weight.to_bits());
        assert_eq!(back.ilabel, a.ilabel);
        assert_eq!(back.olabel, a.olabel);
    }

    #[test]
    fn record_sizes_match_paper() {
        assert_eq!(STATE_BYTES, 8, "64-bit state records");
        assert_eq!(ARC_BYTES, 16, "128-bit arc records");
    }

    #[test]
    fn kaldi_scale_size_matches_paper() {
        // 13.2M states and 34.5M arcs -> "total size of the WFST is 618
        // MBytes" (Section III).
        let layout = MemoryLayout::with_counts(13_200_000, 34_500_000, 0);
        let mb = layout.total_bytes() as f64 / (1024.0 * 1024.0);
        assert!((mb - 618.0).abs() < 10.0, "got {mb:.1} MB, expected ~618");
    }

    #[test]
    fn addresses_are_contiguous_and_aligned() {
        let layout = MemoryLayout::with_counts(5, 7, 4096);
        assert_eq!(layout.states_base(), 4096);
        assert_eq!(layout.arcs_base() % 64, 0);
        assert_eq!(
            layout.state_addr(StateId(1)) - layout.state_addr(StateId(0)),
            8
        );
        assert_eq!(layout.arc_addr(ArcId(1)) - layout.arc_addr(ArcId(0)), 16);
        assert!(layout.arcs_base() >= layout.states_base() + 5 * STATE_BYTES);
    }

    #[test]
    fn image_roundtrip() {
        let mut b = WfstBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        b.set_start(s0);
        b.set_final(s1, 0.5);
        b.add_arc(s0, s1, PhoneId(1), WordId(2), 1.5);
        b.add_epsilon_arc(s1, s0, 0.25);
        let w = b.build().unwrap();

        let mut image = Vec::new();
        write_image(&w, &mut image);
        let layout = MemoryLayout::new(&w, 0);
        assert_eq!(image.len() as u64, layout.total_bytes());

        let (states, arcs) = read_image(&image, w.num_states(), w.num_arcs()).unwrap();
        assert_eq!(states, w.state_entries());
        assert_eq!(arcs.len(), w.num_arcs());
        assert_eq!(arcs[0].olabel, WordId(2));
    }

    #[test]
    fn read_image_rejects_truncation() {
        let err = read_image(&[0u8; 4], 1, 1).unwrap_err();
        assert!(matches!(err, crate::WfstError::Corrupt(_)));
    }
}
