//! Pronunciation lexicon: the `L` knowledge source.
//!
//! A lexicon maps words to phoneme sequences. Together with a grammar
//! ([`crate::grammar`]) it is compiled into the single decoding WFST the
//! accelerator searches (Section II: "Each knowledge source is represented
//! by an individual WFST, and then they are combined"). This module keeps a
//! symbol-table view (`Lexicon`) and can emit the `L` transducer for use
//! with [`crate::compose::compose`].

use crate::builder::WfstBuilder;
use crate::{PhoneId, Result, Wfst, WordId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A word-to-pronunciation dictionary with interned phone and word symbols.
///
/// # Example
///
/// ```
/// use asr_wfst::lexicon::Lexicon;
///
/// let mut lex = Lexicon::new();
/// lex.add_word("low", &["l", "ow"]);
/// lex.add_word("less", &["l", "eh", "s"]);
/// assert_eq!(lex.num_words(), 2);
/// assert_eq!(lex.num_phones(), 4); // l, ow, eh, s
/// let wfst = lex.to_wfst()?;
/// assert!(wfst.num_states() > 0);
/// # Ok::<(), asr_wfst::WfstError>(())
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Lexicon {
    phones: BTreeMap<String, PhoneId>,
    phone_names: Vec<String>,
    words: BTreeMap<String, WordId>,
    word_names: Vec<String>,
    pronunciations: Vec<(WordId, Vec<PhoneId>)>,
}

impl Lexicon {
    /// Creates an empty lexicon. Phone id 0 and word id 0 are reserved for
    /// epsilon / no-output.
    pub fn new() -> Self {
        Self {
            phones: BTreeMap::new(),
            phone_names: vec!["<eps>".to_owned()],
            words: BTreeMap::new(),
            word_names: vec!["<none>".to_owned()],
            pronunciations: Vec::new(),
        }
    }

    /// Interns a phone symbol, returning its id.
    pub fn intern_phone(&mut self, name: &str) -> PhoneId {
        if let Some(&id) = self.phones.get(name) {
            return id;
        }
        let id = PhoneId::from_index(self.phone_names.len());
        self.phones.insert(name.to_owned(), id);
        self.phone_names.push(name.to_owned());
        id
    }

    /// Adds a word with its pronunciation, interning all symbols. Returns
    /// the word id. Adding the same spelling twice creates an alternative
    /// pronunciation under the same id.
    pub fn add_word(&mut self, word: &str, phones: &[&str]) -> WordId {
        let id = if let Some(&id) = self.words.get(word) {
            id
        } else {
            let id = WordId::from_index(self.word_names.len());
            self.words.insert(word.to_owned(), id);
            self.word_names.push(word.to_owned());
            id
        };
        let pron: Vec<PhoneId> = phones.iter().map(|p| self.intern_phone(p)).collect();
        self.pronunciations.push((id, pron));
        id
    }

    /// Number of distinct words (excluding the reserved id 0).
    pub fn num_words(&self) -> usize {
        self.word_names.len() - 1
    }

    /// Number of distinct phones (excluding epsilon).
    pub fn num_phones(&self) -> usize {
        self.phone_names.len() - 1
    }

    /// Id of a previously added word.
    pub fn word_id(&self, word: &str) -> Option<WordId> {
        self.words.get(word).copied()
    }

    /// Spelling of a word id, if in range.
    pub fn word_name(&self, id: WordId) -> Option<&str> {
        self.word_names.get(id.index()).map(String::as_str)
    }

    /// Name of a phone id, if in range.
    pub fn phone_name(&self, id: PhoneId) -> Option<&str> {
        self.phone_names.get(id.index()).map(String::as_str)
    }

    /// All pronunciations as `(word, phones)` pairs.
    pub fn pronunciations(&self) -> &[(WordId, Vec<PhoneId>)] {
        &self.pronunciations
    }

    /// Decodes a word-id sequence back to spellings (unknown ids map to
    /// `"<?>"`).
    pub fn transcript(&self, words: &[WordId]) -> Vec<String> {
        words
            .iter()
            .map(|w| self.word_name(*w).unwrap_or("<?>").to_owned())
            .collect()
    }

    /// Emits the lexicon transducer `L`: a star closure of per-word phone
    /// chains sharing a common start/loop state.
    ///
    /// Input labels are phones and the word label is emitted on the
    /// *first* arc of each chain. Because the acoustic front-end produces
    /// one observation per 10 ms frame while a spoken phone spans many
    /// frames, every chain state carries a **self-loop** on its entering
    /// phone (the role of the HMM transducer `H` in Kaldi's HCLG): the
    /// search can absorb repeated frames of the same phone at a small cost
    /// per repetition. Each chain ends with an epsilon arc back to the
    /// root so word sequences concatenate — which also puts epsilon arcs
    /// into every composed decoding graph, exercising the accelerator's
    /// epsilon path.
    ///
    /// # Errors
    ///
    /// Propagates builder validation failures.
    pub fn to_wfst(&self) -> Result<Wfst> {
        /// Cost of staying in the same phone one more frame.
        const SELF_LOOP_COST: f32 = 0.02;
        let mut b = WfstBuilder::new();
        let root = b.add_state();
        b.set_start(root);
        b.set_final(root, 0.0);
        for (word, pron) in &self.pronunciations {
            if pron.is_empty() {
                continue;
            }
            let mut src = root;
            for (i, &ph) in pron.iter().enumerate() {
                let olabel = if i == 0 { *word } else { WordId::NONE };
                let dst = b.add_state();
                b.add_arc(src, dst, ph, olabel, 0.0);
                b.add_arc(dst, dst, ph, WordId::NONE, SELF_LOOP_COST);
                src = dst;
            }
            b.add_epsilon_arc(src, root, 0.0);
        }
        b.build()
    }
}

/// A ready-made toy lexicon used across tests and examples: a handful of
/// command words with distinct phone sequences.
pub fn demo_lexicon() -> Lexicon {
    let mut lex = Lexicon::new();
    lex.add_word("low", &["l", "ow"]);
    lex.add_word("less", &["l", "eh", "s"]);
    lex.add_word("call", &["k", "ao", "l"]);
    lex.add_word("mom", &["m", "aa", "m"]);
    lex.add_word("play", &["p", "l", "ey"]);
    lex.add_word("music", &["m", "y", "uw", "z", "ih", "k"]);
    lex.add_word("stop", &["s", "t", "aa", "p"]);
    lex.add_word("go", &["g", "ow"]);
    lex.add_word("home", &["hh", "ow", "m"]);
    lex.add_word("lights", &["l", "ay", "t", "s"]);
    lex.add_word("on", &["aa", "n"]);
    lex.add_word("off", &["ao", "f"]);
    lex
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut lex = Lexicon::new();
        let a = lex.intern_phone("aa");
        let b = lex.intern_phone("bb");
        assert_eq!(lex.intern_phone("aa"), a);
        assert_ne!(a, b);
        assert_eq!(lex.phone_name(a), Some("aa"));
    }

    #[test]
    fn duplicate_word_reuses_id() {
        let mut lex = Lexicon::new();
        let w1 = lex.add_word("read", &["r", "iy", "d"]);
        let w2 = lex.add_word("read", &["r", "eh", "d"]); // past tense
        assert_eq!(w1, w2);
        assert_eq!(lex.num_words(), 1);
        assert_eq!(lex.pronunciations().len(), 2);
    }

    #[test]
    fn to_wfst_emits_word_on_first_arc() {
        let mut lex = Lexicon::new();
        lex.add_word("go", &["g", "ow"]);
        let w = lex.to_wfst().unwrap();
        let start_arcs = w.arcs(w.start());
        assert_eq!(start_arcs.len(), 1);
        assert_eq!(start_arcs[0].olabel, lex.word_id("go").unwrap());
        // The first chain state self-loops on its phone (duration
        // modelling) and advances without emitting another word.
        let s1 = start_arcs[0].dest;
        let s1_arcs = w.arcs(s1);
        assert_eq!(s1_arcs.len(), 2);
        assert!(s1_arcs.iter().any(|a| a.dest == s1 && a.weight > 0.0));
        let advance = s1_arcs.iter().find(|a| a.dest != s1).unwrap();
        assert_eq!(advance.olabel, WordId::NONE);
        // The last chain state closes back to the (final) root with an
        // epsilon arc so words can concatenate.
        let s2 = advance.dest;
        let closing = w.epsilon_arcs(s2);
        assert_eq!(closing.len(), 1);
        assert_eq!(closing[0].dest, w.start());
        assert!(w.is_final(w.start()));
    }

    #[test]
    fn self_loops_absorb_repeated_frames() {
        // A path g g ow ow must be accepted with exactly one "go".
        let mut lex = Lexicon::new();
        let go = lex.add_word("go", &["g", "ow"]);
        let (g, ow) = (PhoneId(1), PhoneId(2));
        let w = lex.to_wfst().unwrap();
        // Walk: root -g-> s1 -g(self)-> s1 -ow-> s2 -ow(self)-> s2 -eps-> root.
        let mut state = w.start();
        let mut words = Vec::new();
        for ph in [g, g, ow, ow] {
            let arc = w
                .emitting_arcs(state)
                .iter()
                .find(|a| a.ilabel == ph)
                .copied()
                .unwrap_or_else(|| panic!("no {ph:?} arc from {state:?}"));
            if !arc.olabel.is_none() {
                words.push(arc.olabel);
            }
            state = arc.dest;
        }
        let eps = w.epsilon_arcs(state);
        assert_eq!(eps[0].dest, w.start());
        assert_eq!(words, vec![go]);
    }

    #[test]
    fn transcript_maps_ids_to_spellings() {
        let lex = demo_lexicon();
        let ids = vec![lex.word_id("call").unwrap(), lex.word_id("mom").unwrap()];
        assert_eq!(lex.transcript(&ids), vec!["call", "mom"]);
        assert_eq!(lex.transcript(&[WordId(9999)]), vec!["<?>"]);
    }

    #[test]
    fn demo_lexicon_is_consistent() {
        let lex = demo_lexicon();
        assert_eq!(lex.num_words(), 12);
        assert!(lex.num_phones() >= 15);
        let w = lex.to_wfst().unwrap();
        // One chain per pronunciation; all phone chains start at the root.
        assert_eq!(w.arcs(w.start()).len(), lex.pronunciations().len());
    }

    #[test]
    fn empty_lexicon_still_builds_trivial_acceptor() {
        let lex = Lexicon::new();
        let w = lex.to_wfst().unwrap();
        assert_eq!(w.num_states(), 1);
        assert_eq!(w.num_arcs(), 0);
    }
}
