//! Weighted finite-state transducer (WFST) substrate for the reproduction of
//! *"An Ultra Low-Power Hardware Accelerator for Automatic Speech
//! Recognition"* (Yazdani et al., MICRO 2016).
//!
//! A WFST is a Mealy machine whose arcs carry a weight, an input label (a
//! phoneme) and an output label (a word). The Viterbi beam search walks this
//! graph frame-by-frame, combining arc weights with per-frame acoustic
//! likelihoods. This crate provides everything the rest of the workspace
//! needs from the recognition network:
//!
//! * the in-memory data model ([`Wfst`], [`Arc`], [`StateEntry`]) using the
//!   packed representation of the paper (Section III): 64-bit state records
//!   and 128-bit arc records, non-epsilon arcs stored before epsilon arcs;
//! * [`builder::WfstBuilder`] for programmatic construction;
//! * [`layout`]: the byte-exact main-memory image of the transducer, used by
//!   the cycle-accurate simulator to derive cache/DRAM addresses;
//! * [`sorted`]: the bandwidth-saving layout of Section IV-B, where states
//!   with at most `N` arcs are moved to the front of the state array and
//!   sorted by out-degree so arc indices can be computed directly;
//! * [`store`]: the zero-copy graph store — a byte-stable v2 image of the
//!   full [`sorted::SortedWfst`] whose loaded buffer is viewed in place
//!   (no per-load rebuild, no record copies), validated once into a
//!   [`store::GraphImage`];
//! * [`synth`]: a deterministic generator reproducing the published
//!   statistics of Kaldi's 125k-word English WFST (degree distribution with
//!   ~97% of visited states having <= 15 arcs, 11.5% epsilon arcs);
//! * [`lexicon`] / [`grammar`] / [`compose`]: small-vocabulary decoding-graph
//!   construction used by the functional tests and examples;
//! * [`stats`]: static/dynamic degree histograms behind Figure 7.
//!
//! # Conventions
//!
//! Weights are *costs*: negative natural-log probabilities (tropical
//! semiring). Lower is better, path costs add, and beam pruning keeps tokens
//! whose cost is within `beam` of the frame's best cost. This is equivalent
//! to the paper's max-of-likelihood formulation (Equation 1) and is what
//! log-space hardware actually computes with its FP adders.
//!
//! # Example
//!
//! ```
//! use asr_wfst::builder::WfstBuilder;
//! use asr_wfst::{PhoneId, StateId, WordId};
//!
//! // The two-word ("low", "less") example of Figure 2a.
//! let mut b = WfstBuilder::new();
//! let s: Vec<StateId> = (0..7).map(|_| b.add_state()).collect();
//! b.set_start(s[0]);
//! let (l, oh, eh, ss) = (PhoneId(1), PhoneId(2), PhoneId(3), PhoneId(4));
//! let (low, less) = (WordId(1), WordId(2));
//! b.add_arc(s[0], s[1], l, WordId::NONE, 0.51); // -ln 0.6
//! b.add_arc(s[1], s[2], oh, low, 0.22);         // -ln 0.8
//! b.add_arc(s[0], s[4], l, WordId::NONE, 0.92); // -ln 0.4
//! b.add_arc(s[4], s[5], eh, less, 0.51);
//! b.add_arc(s[2], s[3], oh, WordId::NONE, 0.0);
//! b.add_arc(s[5], s[6], ss, WordId::NONE, 0.0);
//! b.set_final(s[3], 0.0);
//! b.set_final(s[6], 0.0);
//! let wfst = b.build()?;
//! assert_eq!(wfst.num_states(), 7);
//! assert_eq!(wfst.num_arcs(), 6);
//! assert_eq!(wfst.arcs(s[0]).len(), 2);
//! # Ok::<(), asr_wfst::WfstError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod builder;
pub mod compose;
pub mod grammar;
pub mod io;
pub mod layout;
pub mod lexicon;
pub mod ops;
pub mod rmeps;
pub mod sorted;
pub mod stats;
pub mod store;
pub mod synth;

mod error;
mod ids;
mod model;

pub use error::WfstError;
pub use ids::{ArcId, PhoneId, StateId, WordId};
pub use model::{Arc, StateEntry, Wfst};

/// Convenience result alias for fallible WFST operations.
pub type Result<T> = std::result::Result<T, WfstError>;
