//! In-memory WFST data model mirroring the accelerator's packed layout.

use crate::store::Section;
use crate::{ArcId, PhoneId, Result, StateId, WfstError, WordId};
use serde::{Deserialize, Serialize};

/// A single transition of the recognition network.
///
/// The hardware stores each arc as a 128-bit record: destination state index,
/// transition weight, input label (phoneme id) and output label (word id),
/// each 32 bits (Section III of the paper). The weight is a cost
/// (negative log probability), so following an arc *adds* `weight`.
///
/// The struct is `#[repr(C)]` so that on little-endian targets its in-memory
/// bytes are exactly the 128-bit wire record of [`crate::layout::pack_arc`];
/// the zero-copy graph store ([`crate::store`]) relies on this to expose
/// `&[Arc]` views directly over a loaded image buffer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[repr(C)]
pub struct Arc {
    /// Destination state.
    pub dest: StateId,
    /// Transition cost (negative log probability); always finite.
    pub weight: f32,
    /// Input label; `PhoneId::EPSILON` for epsilon arcs.
    pub ilabel: PhoneId,
    /// Output label; `WordId::NONE` when no word is emitted.
    pub olabel: WordId,
}

impl Arc {
    /// Returns `true` if this arc consumes no acoustic frame.
    #[inline]
    pub fn is_epsilon(&self) -> bool {
        self.ilabel.is_epsilon()
    }
}

/// Packed per-state record: where the state's arcs live in the arc array.
///
/// Matches the paper's 64-bit state record: 32-bit index of the first arc,
/// 16-bit count of non-epsilon (emitting) arcs, 16-bit count of epsilon
/// arcs. All outgoing arcs are stored consecutively, non-epsilon first.
///
/// `#[repr(C)]` for the same reason as [`Arc`]: the in-memory bytes on a
/// little-endian target match the 64-bit wire record of
/// [`crate::layout::pack_state`], so image buffers can be viewed in place.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[repr(C)]
pub struct StateEntry {
    /// Index of the first outgoing arc in the arc array.
    pub first_arc: ArcId,
    /// Number of non-epsilon (frame-consuming) arcs.
    pub num_emitting: u16,
    /// Number of epsilon arcs, stored after the non-epsilon arcs.
    pub num_epsilon: u16,
}

impl StateEntry {
    /// Total out-degree of the state.
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.num_emitting as usize + self.num_epsilon as usize
    }

    /// Range of arc indices covering all outgoing arcs.
    #[inline]
    pub fn arc_range(&self) -> std::ops::Range<usize> {
        let first = self.first_arc.index();
        first..first + self.num_arcs()
    }

    /// Range of arc indices covering only non-epsilon arcs.
    #[inline]
    pub fn emitting_range(&self) -> std::ops::Range<usize> {
        let first = self.first_arc.index();
        first..first + self.num_emitting as usize
    }

    /// Range of arc indices covering only epsilon arcs.
    #[inline]
    pub fn epsilon_range(&self) -> std::ops::Range<usize> {
        let first = self.first_arc.index() + self.num_emitting as usize;
        first..first + self.num_epsilon as usize
    }
}

// The zero-copy store casts aligned image bytes to `&[Arc]` / `&[StateEntry]`
// (see `crate::store`). That is only sound while these records keep the exact
// field sizes and offsets of the packed wire format, so pin them here.
const _: () = {
    assert!(std::mem::size_of::<Arc>() == 16);
    assert!(std::mem::align_of::<Arc>() == 4);
    assert!(std::mem::size_of::<StateEntry>() == 8);
    assert!(std::mem::align_of::<StateEntry>() == 4);
    assert!(std::mem::size_of::<StateId>() == 4);
    assert!(std::mem::size_of::<ArcId>() == 4);
    assert!(std::mem::size_of::<PhoneId>() == 4);
    assert!(std::mem::size_of::<WordId>() == 4);
};

/// An immutable weighted finite-state transducer.
///
/// States and arcs live in two flat arrays, exactly as the accelerator lays
/// them out in main memory. Construct one with
/// [`crate::builder::WfstBuilder`], [`crate::synth::SynthWfst`] or
/// [`crate::compose::compose`]; the invariants (arc ranges in bounds,
/// non-epsilon before epsilon, finite weights) are checked at build time so
/// traversal never needs to re-validate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Wfst {
    states: Section<StateEntry>,
    arcs: Section<Arc>,
    start: StateId,
    /// Final cost per state; `f32::INFINITY` means "not final".
    final_costs: Section<f32>,
    num_phones: u32,
    num_words: u32,
}

impl Wfst {
    /// Checks every structural invariant over borrowed arrays and returns
    /// the derived `(num_phones, num_words)` label-space sizes.
    ///
    /// This is the single validation choke point: [`Wfst::from_parts`] runs
    /// it over freshly built `Vec`s and the zero-copy store
    /// ([`crate::store::GraphImage`]) runs it once over the typed views of a
    /// loaded image, after which traversal never re-validates.
    pub(crate) fn validate(
        states: &[StateEntry],
        arcs: &[Arc],
        start: StateId,
        final_costs: &[f32],
    ) -> Result<(u32, u32)> {
        assert_eq!(
            states.len(),
            final_costs.len(),
            "one final cost per state required"
        );
        // Fast path: one branch-light streaming pass. It answers only
        // "all invariants hold" on layouts whose states partition the arc
        // array in order — which every construction path produces — so a
        // 200k-state image validates at memory-bandwidth speed. Anything
        // else (a violation somewhere, or an exotic overlapping layout)
        // falls back to the exhaustive walk below, which reports the exact
        // typed error or vets the layouts the fast pass refuses to judge.
        if let Some(sizes) = Self::validate_bulk(states, arcs, start, final_costs) {
            return Ok(sizes);
        }
        Self::validate_precise(states, arcs, start, final_costs)
    }

    /// The streaming fast path of [`Wfst::validate`]: `Some` means every
    /// invariant checked out; `None` means "let the precise walk decide".
    ///
    /// Two sequential passes. The first streams the arc array once — AVX2
    /// over the packed records where available — checking the
    /// position-independent invariants (weights finite, destinations in
    /// range, label maxima) and distilling each arc's epsilon flag into a
    /// bitmap (1 bit per arc, so ~0.8% of the arc bytes and cache-resident
    /// for graphs that matter). The second walks the state table, requiring
    /// each state's window to start exactly where the previous ended and
    /// comparing the window's flag bits against the one valid pattern
    /// `non-eps^emit eps^(deg-emit)` with 64-bit mask compares — exact,
    /// and it never touches the 16-byte arc records again.
    fn validate_bulk(
        states: &[StateEntry],
        arcs: &[Arc],
        start: StateId,
        final_costs: &[f32],
    ) -> Option<(u32, u32)> {
        /// Arcs per scan block: 8192 records keep the pass L2-resident and
        /// are a multiple of 64, so the bitmap frontier lands on a word
        /// boundary after every block.
        const BLOCK: usize = 8192;

        if start.index() >= states.len() || states.len() > u32::MAX as usize {
            return None;
        }
        let mut scan = BulkArcScan::new(states.len() as u32, arcs.len());
        let mut si = 0usize; // next state to consume
        let mut cursor = 0usize; // arcs covered by consumed states
        let mut processed = 0usize; // arcs folded into the scan
        let mut ok = true;
        loop {
            // Consume every state whose arc window the scanned prefix
            // covers, while the block's bitmap words are still hot; the
            // scalar pattern checks also hide in the next block's memory
            // stalls. Zero-degree states consume eagerly.
            while si < states.len() {
                let st = &states[si];
                let deg = st.num_arcs();
                if st.first_arc.index() != cursor {
                    return None;
                }
                if processed - cursor < deg {
                    break;
                }
                if deg != 0 {
                    ok &= epsilon_pattern_ok(&scan.eps_bits, cursor, deg, st.num_emitting as usize);
                }
                cursor += deg;
                si += 1;
            }
            if processed == arcs.len() {
                break;
            }
            let next = (processed + BLOCK).min(arcs.len());
            scan.scan(&arcs[processed..next]);
            processed = next;
            if processed == arcs.len() {
                // Whole blocks flush on word boundaries on their own; the
                // final partial block leaves its tail bits buffered, and
                // they must land before the loop consumes the last states.
                scan.flush();
            }
        }
        // Exact cover: every state consumed, every arc owned by one. A
        // state here can only be left over because its window overran the
        // arc array (the frontier reached the end without covering it).
        if si != states.len() || cursor != arcs.len() {
            return None;
        }
        if !ok || !scan.ok {
            return None;
        }
        let mut any_usable = false;
        let mut any_finite = false;
        for &c in final_costs {
            any_usable |= c.is_finite() | (c == f32::INFINITY);
            any_finite |= c.is_finite();
        }
        if !any_usable || !any_finite {
            return None;
        }
        if arcs.is_empty() {
            return Some((0, 0));
        }
        Some((scan.max_il + 1, scan.max_ol + 1))
    }

    /// The exhaustive walk of [`Wfst::validate`]: visits every state's arc
    /// window (including overlapping or gapped layouts the bulk pass
    /// refuses to judge) and reports the first violation as a typed error.
    fn validate_precise(
        states: &[StateEntry],
        arcs: &[Arc],
        start: StateId,
        final_costs: &[f32],
    ) -> Result<(u32, u32)> {
        if start.index() >= states.len() {
            return Err(WfstError::UnknownState(start));
        }
        let mut num_phones = 0u32;
        let mut num_words = 0u32;
        for (idx, st) in states.iter().enumerate() {
            let sid = StateId::from_index(idx);
            let range = st.arc_range();
            if range.end > arcs.len() {
                return Err(WfstError::UnknownArc(ArcId::from_index(range.end - 1)));
            }
            for (k, arc) in arcs[range].iter().enumerate() {
                if !arc.weight.is_finite() {
                    return Err(WfstError::InvalidWeight {
                        state: sid,
                        weight: arc.weight,
                    });
                }
                if arc.dest.index() >= states.len() {
                    return Err(WfstError::UnknownState(arc.dest));
                }
                let should_be_epsilon = k >= st.num_emitting as usize;
                if arc.is_epsilon() != should_be_epsilon {
                    return Err(WfstError::Corrupt(format!(
                        "state {sid:?}: arc {k} violates non-epsilon-first ordering"
                    )));
                }
                num_phones = num_phones.max(arc.ilabel.0 + 1);
                num_words = num_words.max(arc.olabel.0 + 1);
            }
        }
        if !final_costs
            .iter()
            .any(|c| c.is_finite() || *c == f32::INFINITY)
        {
            return Err(WfstError::Corrupt("non-finite final cost".into()));
        }
        if !final_costs.iter().any(|c| c.is_finite()) {
            return Err(WfstError::NoFinalStates);
        }
        Ok((num_phones, num_words))
    }

    /// Assembles a transducer from raw parts, validating every invariant.
    ///
    /// This is the choke point all *authoring* construction paths funnel
    /// through (the zero-copy image path funnels through the same checks via
    /// the crate-internal `Wfst::from_sections`).
    ///
    /// # Errors
    ///
    /// Returns an error if the start state is out of range, any arc range
    /// exceeds the arc array, epsilon arcs precede non-epsilon arcs within a
    /// state, any weight or final cost is NaN/-inf, or no state is final.
    pub fn from_parts(
        states: Vec<StateEntry>,
        arcs: Vec<Arc>,
        start: StateId,
        final_costs: Vec<f32>,
    ) -> Result<Self> {
        Self::from_sections(states.into(), arcs.into(), start, final_costs.into())
    }

    /// Assembles a transducer over [`Section`] storage — owned vectors or
    /// zero-copy views into a shared image buffer — running the exact same
    /// validation as [`Wfst::from_parts`].
    pub(crate) fn from_sections(
        states: Section<StateEntry>,
        arcs: Section<Arc>,
        start: StateId,
        final_costs: Section<f32>,
    ) -> Result<Self> {
        let (num_phones, num_words) = Self::validate(&states, &arcs, start, &final_costs)?;
        Ok(Self {
            states,
            arcs,
            start,
            final_costs,
            num_phones,
            num_words,
        })
    }

    /// Number of states.
    #[inline]
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Number of arcs across all states.
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.arcs.len()
    }

    /// The start state of the search.
    #[inline]
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Packed record of `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    #[inline]
    pub fn state(&self, state: StateId) -> StateEntry {
        self.states[state.index()]
    }

    /// All outgoing arcs of `state` (non-epsilon first).
    #[inline]
    pub fn arcs(&self, state: StateId) -> &[Arc] {
        &self.arcs[self.states[state.index()].arc_range()]
    }

    /// Only the non-epsilon (frame-consuming) arcs of `state`.
    #[inline]
    pub fn emitting_arcs(&self, state: StateId) -> &[Arc] {
        &self.arcs[self.states[state.index()].emitting_range()]
    }

    /// Only the epsilon arcs of `state`.
    #[inline]
    pub fn epsilon_arcs(&self, state: StateId) -> &[Arc] {
        &self.arcs[self.states[state.index()].epsilon_range()]
    }

    /// Arc by flat index.
    ///
    /// # Panics
    ///
    /// Panics if `arc` is out of range.
    #[inline]
    pub fn arc(&self, arc: ArcId) -> Arc {
        self.arcs[arc.index()]
    }

    /// Final cost of `state`; `f32::INFINITY` when the state is not final.
    #[inline]
    pub fn final_cost(&self, state: StateId) -> f32 {
        self.final_costs[state.index()]
    }

    /// Returns `true` if `state` accepts.
    #[inline]
    pub fn is_final(&self, state: StateId) -> bool {
        self.final_costs[state.index()].is_finite()
    }

    /// Iterator over all final states with their costs.
    pub fn final_states(&self) -> impl Iterator<Item = (StateId, f32)> + '_ {
        self.final_costs
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_finite())
            .map(|(i, c)| (StateId::from_index(i), *c))
    }

    /// One past the largest input label, i.e. the size of the phone table
    /// the acoustic model must score (label 0 is epsilon).
    #[inline]
    pub fn num_phones(&self) -> u32 {
        self.num_phones
    }

    /// One past the largest output label (label 0 is "no word").
    #[inline]
    pub fn num_words(&self) -> u32 {
        self.num_words
    }

    /// Raw state array, in layout order.
    #[inline]
    pub fn state_entries(&self) -> &[StateEntry] {
        &self.states
    }

    /// Raw arc array, in layout order.
    #[inline]
    pub fn arc_entries(&self) -> &[Arc] {
        &self.arcs
    }

    /// Raw per-state final-cost array (`f32::INFINITY` = not final).
    #[inline]
    pub(crate) fn final_costs_raw(&self) -> &[f32] {
        &self.final_costs
    }

    /// Bytes occupied by the state, arc and final-cost arrays.
    ///
    /// For an image-backed transducer these bytes live inside the shared
    /// [`crate::store::ImageBytes`] buffer (counted once per buffer, however
    /// many views share it); for an owned transducer they are heap
    /// allocations of this value.
    pub fn storage_bytes(&self) -> usize {
        self.states.len() * std::mem::size_of::<StateEntry>()
            + self.arcs.len() * std::mem::size_of::<Arc>()
            + self.final_costs.len() * std::mem::size_of::<f32>()
    }

    /// Returns `true` when the arrays are zero-copy views into a loaded
    /// image buffer rather than owned heap allocations.
    pub fn is_image_backed(&self) -> bool {
        self.arcs.is_view()
    }

    /// Fraction of arcs that are epsilon (Kaldi's English WFST: 0.115).
    pub fn epsilon_fraction(&self) -> f64 {
        if self.arcs.is_empty() {
            return 0.0;
        }
        let eps = self.arcs.iter().filter(|a| a.is_epsilon()).count();
        eps as f64 / self.arcs.len() as f64
    }
}

/// Extracts 64 bits of `bits` starting at bit index `bit` (the vector is
/// padded so the word after the last data word always exists).
#[inline(always)]
fn window64(bits: &[u64], bit: usize) -> u64 {
    let (word, shift) = (bit >> 6, (bit & 63) as u32);
    // The double shift sends the high word to 0 when `shift` is 0 instead
    // of overflowing the shift amount.
    (bits[word] >> shift) | ((bits[word + 1] << 1) << (63 - shift))
}

/// Checks that the `deg` epsilon flags starting at bit `first` are exactly
/// the one pattern the state's counts permit: `emit` zeros, then ones.
#[inline(always)]
fn epsilon_pattern_ok(bits: &[u64], first: usize, deg: usize, emit: usize) -> bool {
    if deg <= 64 {
        let mask = u64::MAX >> (64 - deg);
        // `checked_shl` handles `emit == deg == 64` (all-emitting: no flag
        // set) without an overflowing shift.
        let expected = mask.checked_shl(emit as u32).unwrap_or(0) & mask;
        (window64(bits, first) & mask) == expected
    } else {
        let mut ok = true;
        let mut emit = emit;
        let mut rem = deg;
        while rem > 0 {
            let take = rem.min(64);
            let mask = u64::MAX >> (64 - take);
            let e = emit.min(take);
            let expected = mask.checked_shl(e as u32).unwrap_or(0) & mask;
            ok &= (window64(bits, first + deg - rem) & mask) == expected;
            rem -= take;
            emit -= e;
        }
        ok
    }
}

/// Accumulator for the arc pass of [`Wfst::validate_bulk`].
///
/// Streams arc records and checks everything that does not depend on which
/// state owns an arc — weights finite, destinations in `0..n`, running label
/// maxima — while distilling each arc's epsilon flag into a bitmap for the
/// state pass to pattern-match. On x86-64 with AVX2 the scan runs 8 arcs
/// per step directly over the packed records; elsewhere a scalar loop
/// computes the identical result.
struct BulkArcScan {
    /// Number of states; every destination must be below it.
    n: u32,
    /// All weight/destination checks passed so far.
    ok: bool,
    /// Largest input label seen.
    max_il: u32,
    /// Largest output label seen.
    max_ol: u32,
    /// One epsilon flag per arc, little-endian bit order, padded so that
    /// reading one word past the last data word is always in bounds.
    eps_bits: Vec<u64>,
    /// Partial word being filled (low `filled` bits are valid).
    word: u64,
    /// Bits accumulated in `word`.
    filled: u32,
    /// Index of the word `word` will be flushed to.
    word_idx: usize,
}

impl BulkArcScan {
    fn new(n: u32, num_arcs: usize) -> Self {
        Self {
            n,
            ok: true,
            max_il: 0,
            max_ol: 0,
            eps_bits: vec![0u64; num_arcs / 64 + 2],
            word: 0,
            filled: 0,
            word_idx: 0,
        }
    }

    /// Scans a run of consecutive arcs (callable repeatedly; the epsilon
    /// bitmap keeps filling where the previous run left off).
    fn scan(&mut self, block: &[Arc]) {
        #[cfg(target_arch = "x86_64")]
        if is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime.
            unsafe { self.scan_avx2(block) };
            return;
        }
        self.scan_scalar(block);
    }

    /// Flushes the buffered partial word into the bitmap (idempotent).
    fn flush(&mut self) {
        if self.filled > 0 {
            self.eps_bits[self.word_idx] = self.word;
            self.word = 0;
            self.filled = 0;
            self.word_idx += 1;
        }
    }

    /// Appends `count` epsilon flags packed in the low bits of `bits`.
    #[inline(always)]
    fn push_bits(&mut self, bits: u64, count: u32) {
        self.word |= bits << self.filled;
        self.filled += count;
        if self.filled >= 64 {
            self.eps_bits[self.word_idx] = self.word;
            self.word_idx += 1;
            self.filled -= 64;
            // Bits that did not fit in the flushed word (when the push
            // straddles a boundary); `count` 64 would overflow the shift,
            // but pushes are at most 8 bits.
            self.word = bits >> (count - self.filled);
        }
    }

    /// Portable scan; also finishes sub-vector tails of the AVX2 path.
    fn scan_scalar(&mut self, block: &[Arc]) {
        for a in block {
            self.push_bits(a.is_epsilon() as u64, 1);
            self.ok &= a.weight.is_finite() & (a.dest.0 < self.n);
            self.max_il = self.max_il.max(a.ilabel.0);
            self.max_ol = self.max_ol.max(a.olabel.0);
        }
    }

    /// Vector scan over the packed 16-byte records, 8 arcs per iteration.
    ///
    /// Each 256-bit load covers two arcs, dwords `[dest, weight, ilabel,
    /// olabel]` twice over (`Arc` is `#[repr(C)]`, pinned by the layout
    /// asserts above), so per-field checks are whole-vector compares masked
    /// to that field's dword positions. Destinations use an unsigned
    /// `max(v, n) == v` test; weights are non-finite exactly when
    /// `bits & 0x7fff_ffff > 0x7f7f_ffff`; epsilon flags (`ilabel == 0`)
    /// drop out of a zero-compare movemask at the ilabel dword positions.
    ///
    /// # Safety
    ///
    /// The caller must ensure the CPU supports AVX2.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn scan_avx2(&mut self, block: &[Arc]) {
        use std::arch::x86_64::*;

        let full = block.len() / 8 * 8;
        let dest_pos = _mm256_setr_epi32(-1, 0, 0, 0, -1, 0, 0, 0);
        let weight_pos = _mm256_setr_epi32(0, -1, 0, 0, 0, -1, 0, 0);
        let n_vec = _mm256_set1_epi32(self.n as i32);
        let abs_mask = _mm256_set1_epi32(0x7fff_ffff);
        let finite_max = _mm256_set1_epi32(0x7f7f_ffff);
        let zero = _mm256_setzero_si256();

        let mut viol = zero;
        let mut max_acc = zero;

        let mut i = 0usize;
        while i < full {
            // SAFETY: `i + 8 <= block.len()` and `Arc` is 16 bytes, so all
            // four unaligned 32-byte loads stay inside `block`.
            let p = unsafe { block.as_ptr().add(i) } as *const __m256i;
            // Prefetch never faults, and `wrapping_add` keeps the address
            // computation defined even past the slice end. Hinting ~4 KiB
            // ahead keeps the stream off the hardware prefetcher's worst
            // case on freshly mapped pages.
            _mm_prefetch(
                block.as_ptr().wrapping_add(i + 256) as *const i8,
                _MM_HINT_T0,
            );
            let mut eps8 = 0u64;
            for k in 0..4 {
                // SAFETY: vector `k` covers arcs `i + 2k` and `i + 2k + 1`,
                // both below `full <= block.len()`.
                let v = unsafe { _mm256_loadu_si256(p.add(k)) };
                let dest_ge_n = _mm256_cmpeq_epi32(_mm256_max_epu32(v, n_vec), v);
                let w_abs = _mm256_and_si256(v, abs_mask);
                let non_finite = _mm256_cmpgt_epi32(w_abs, finite_max);
                viol = _mm256_or_si256(
                    viol,
                    _mm256_or_si256(
                        _mm256_and_si256(dest_ge_n, dest_pos),
                        _mm256_and_si256(non_finite, weight_pos),
                    ),
                );
                max_acc = _mm256_max_epu32(max_acc, v);
                // Epsilon flags live at the ilabel dwords 2 and 6.
                let m = _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(v, zero))) as u64;
                eps8 |= (((m >> 2) & 1) | ((m >> 5) & 2)) << (2 * k);
            }
            self.push_bits(eps8, 8);
            i += 8;
        }

        self.ok &= _mm256_testz_si256(viol, viol) == 1;
        let mut lanes = [0u32; 8];
        // SAFETY: `lanes` is exactly 32 bytes; the store is unaligned.
        unsafe { _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, max_acc) };
        self.max_il = self.max_il.max(lanes[2]).max(lanes[6]);
        self.max_ol = self.max_ol.max(lanes[3]).max(lanes[7]);
        self.scan_scalar(&block[full..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::WfstBuilder;

    fn tiny() -> Wfst {
        let mut b = WfstBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        let s2 = b.add_state();
        b.set_start(s0);
        b.add_arc(s0, s1, PhoneId(1), WordId(1), 1.0);
        b.add_arc(s0, s2, PhoneId::EPSILON, WordId::NONE, 0.5);
        b.add_arc(s1, s2, PhoneId(2), WordId::NONE, 2.0);
        b.set_final(s2, 0.25);
        b.build().unwrap()
    }

    #[test]
    fn arcs_are_partitioned_epsilon_last() {
        let w = tiny();
        let s0 = StateId(0);
        assert_eq!(w.arcs(s0).len(), 2);
        assert_eq!(w.emitting_arcs(s0).len(), 1);
        assert_eq!(w.epsilon_arcs(s0).len(), 1);
        assert!(!w.emitting_arcs(s0)[0].is_epsilon());
        assert!(w.epsilon_arcs(s0)[0].is_epsilon());
    }

    #[test]
    fn final_states_are_reported() {
        let w = tiny();
        assert!(w.is_final(StateId(2)));
        assert!(!w.is_final(StateId(0)));
        assert_eq!(w.final_cost(StateId(2)), 0.25);
        assert_eq!(w.final_states().count(), 1);
    }

    #[test]
    fn label_spaces_are_sized_from_content() {
        let w = tiny();
        assert_eq!(w.num_phones(), 3); // phones 0..=2
        assert_eq!(w.num_words(), 2); // words 0..=1
    }

    #[test]
    fn epsilon_fraction_counts_epsilon_arcs() {
        let w = tiny();
        assert!((w.epsilon_fraction() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn from_parts_rejects_bad_start() {
        let err = Wfst::from_parts(vec![], vec![], StateId(0), vec![]).unwrap_err();
        assert_eq!(err, WfstError::UnknownState(StateId(0)));
    }

    #[test]
    fn from_parts_rejects_out_of_range_arc_window() {
        let states = vec![StateEntry {
            first_arc: ArcId(0),
            num_emitting: 1,
            num_epsilon: 0,
        }];
        let err = Wfst::from_parts(states, vec![], StateId(0), vec![0.0]).unwrap_err();
        assert!(matches!(err, WfstError::UnknownArc(_)));
    }

    #[test]
    fn from_parts_rejects_nan_weight() {
        let states = vec![StateEntry {
            first_arc: ArcId(0),
            num_emitting: 1,
            num_epsilon: 0,
        }];
        let arcs = vec![Arc {
            dest: StateId(0),
            weight: f32::NAN,
            ilabel: PhoneId(1),
            olabel: WordId::NONE,
        }];
        let err = Wfst::from_parts(states, arcs, StateId(0), vec![0.0]).unwrap_err();
        assert!(matches!(err, WfstError::InvalidWeight { .. }));
    }

    #[test]
    fn from_parts_rejects_epsilon_ordering_violation() {
        let states = vec![StateEntry {
            first_arc: ArcId(0),
            num_emitting: 1,
            num_epsilon: 1,
        }];
        // Epsilon arc first, emitting second: violates the packed layout.
        let arcs = vec![
            Arc {
                dest: StateId(0),
                weight: 0.0,
                ilabel: PhoneId::EPSILON,
                olabel: WordId::NONE,
            },
            Arc {
                dest: StateId(0),
                weight: 0.0,
                ilabel: PhoneId(1),
                olabel: WordId::NONE,
            },
        ];
        let err = Wfst::from_parts(states, arcs, StateId(0), vec![0.0]).unwrap_err();
        assert!(matches!(err, WfstError::Corrupt(_)));
    }

    #[test]
    fn from_parts_requires_a_final_state() {
        let states = vec![StateEntry {
            first_arc: ArcId(0),
            num_emitting: 0,
            num_epsilon: 0,
        }];
        let err = Wfst::from_parts(states, vec![], StateId(0), vec![f32::INFINITY]).unwrap_err();
        assert_eq!(err, WfstError::NoFinalStates);
    }

    #[test]
    fn state_entry_ranges_are_consistent() {
        let e = StateEntry {
            first_arc: ArcId(10),
            num_emitting: 3,
            num_epsilon: 2,
        };
        assert_eq!(e.num_arcs(), 5);
        assert_eq!(e.arc_range(), 10..15);
        assert_eq!(e.emitting_range(), 10..13);
        assert_eq!(e.epsilon_range(), 13..15);
    }
}
