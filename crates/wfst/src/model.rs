//! In-memory WFST data model mirroring the accelerator's packed layout.

use crate::{ArcId, PhoneId, Result, StateId, WfstError, WordId};
use serde::{Deserialize, Serialize};

/// A single transition of the recognition network.
///
/// The hardware stores each arc as a 128-bit record: destination state index,
/// transition weight, input label (phoneme id) and output label (word id),
/// each 32 bits (Section III of the paper). The weight is a cost
/// (negative log probability), so following an arc *adds* `weight`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Arc {
    /// Destination state.
    pub dest: StateId,
    /// Transition cost (negative log probability); always finite.
    pub weight: f32,
    /// Input label; `PhoneId::EPSILON` for epsilon arcs.
    pub ilabel: PhoneId,
    /// Output label; `WordId::NONE` when no word is emitted.
    pub olabel: WordId,
}

impl Arc {
    /// Returns `true` if this arc consumes no acoustic frame.
    #[inline]
    pub fn is_epsilon(&self) -> bool {
        self.ilabel.is_epsilon()
    }
}

/// Packed per-state record: where the state's arcs live in the arc array.
///
/// Matches the paper's 64-bit state record: 32-bit index of the first arc,
/// 16-bit count of non-epsilon (emitting) arcs, 16-bit count of epsilon
/// arcs. All outgoing arcs are stored consecutively, non-epsilon first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateEntry {
    /// Index of the first outgoing arc in the arc array.
    pub first_arc: ArcId,
    /// Number of non-epsilon (frame-consuming) arcs.
    pub num_emitting: u16,
    /// Number of epsilon arcs, stored after the non-epsilon arcs.
    pub num_epsilon: u16,
}

impl StateEntry {
    /// Total out-degree of the state.
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.num_emitting as usize + self.num_epsilon as usize
    }

    /// Range of arc indices covering all outgoing arcs.
    #[inline]
    pub fn arc_range(&self) -> std::ops::Range<usize> {
        let first = self.first_arc.index();
        first..first + self.num_arcs()
    }

    /// Range of arc indices covering only non-epsilon arcs.
    #[inline]
    pub fn emitting_range(&self) -> std::ops::Range<usize> {
        let first = self.first_arc.index();
        first..first + self.num_emitting as usize
    }

    /// Range of arc indices covering only epsilon arcs.
    #[inline]
    pub fn epsilon_range(&self) -> std::ops::Range<usize> {
        let first = self.first_arc.index() + self.num_emitting as usize;
        first..first + self.num_epsilon as usize
    }
}

/// An immutable weighted finite-state transducer.
///
/// States and arcs live in two flat arrays, exactly as the accelerator lays
/// them out in main memory. Construct one with
/// [`crate::builder::WfstBuilder`], [`crate::synth::SynthWfst`] or
/// [`crate::compose::compose`]; the invariants (arc ranges in bounds,
/// non-epsilon before epsilon, finite weights) are checked at build time so
/// traversal never needs to re-validate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Wfst {
    states: Vec<StateEntry>,
    arcs: Vec<Arc>,
    start: StateId,
    /// Final cost per state; `f32::INFINITY` means "not final".
    final_costs: Vec<f32>,
    num_phones: u32,
    num_words: u32,
}

impl Wfst {
    /// Assembles a transducer from raw parts, validating every invariant.
    ///
    /// This is the single choke point all construction paths funnel through.
    ///
    /// # Errors
    ///
    /// Returns an error if the start state is out of range, any arc range
    /// exceeds the arc array, epsilon arcs precede non-epsilon arcs within a
    /// state, any weight or final cost is NaN/-inf, or no state is final.
    pub fn from_parts(
        states: Vec<StateEntry>,
        arcs: Vec<Arc>,
        start: StateId,
        final_costs: Vec<f32>,
    ) -> Result<Self> {
        assert_eq!(
            states.len(),
            final_costs.len(),
            "one final cost per state required"
        );
        if start.index() >= states.len() {
            return Err(WfstError::UnknownState(start));
        }
        let mut num_phones = 0u32;
        let mut num_words = 0u32;
        for (idx, st) in states.iter().enumerate() {
            let sid = StateId::from_index(idx);
            let range = st.arc_range();
            if range.end > arcs.len() {
                return Err(WfstError::UnknownArc(ArcId::from_index(range.end - 1)));
            }
            for (k, arc) in arcs[range].iter().enumerate() {
                if !arc.weight.is_finite() {
                    return Err(WfstError::InvalidWeight {
                        state: sid,
                        weight: arc.weight,
                    });
                }
                if arc.dest.index() >= states.len() {
                    return Err(WfstError::UnknownState(arc.dest));
                }
                let should_be_epsilon = k >= st.num_emitting as usize;
                if arc.is_epsilon() != should_be_epsilon {
                    return Err(WfstError::Corrupt(format!(
                        "state {sid:?}: arc {k} violates non-epsilon-first ordering"
                    )));
                }
                num_phones = num_phones.max(arc.ilabel.0 + 1);
                num_words = num_words.max(arc.olabel.0 + 1);
            }
        }
        if !final_costs
            .iter()
            .any(|c| c.is_finite() || *c == f32::INFINITY)
        {
            return Err(WfstError::Corrupt("non-finite final cost".into()));
        }
        if !final_costs.iter().any(|c| c.is_finite()) {
            return Err(WfstError::NoFinalStates);
        }
        Ok(Self {
            states,
            arcs,
            start,
            final_costs,
            num_phones,
            num_words,
        })
    }

    /// Number of states.
    #[inline]
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Number of arcs across all states.
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.arcs.len()
    }

    /// The start state of the search.
    #[inline]
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Packed record of `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    #[inline]
    pub fn state(&self, state: StateId) -> StateEntry {
        self.states[state.index()]
    }

    /// All outgoing arcs of `state` (non-epsilon first).
    #[inline]
    pub fn arcs(&self, state: StateId) -> &[Arc] {
        &self.arcs[self.states[state.index()].arc_range()]
    }

    /// Only the non-epsilon (frame-consuming) arcs of `state`.
    #[inline]
    pub fn emitting_arcs(&self, state: StateId) -> &[Arc] {
        &self.arcs[self.states[state.index()].emitting_range()]
    }

    /// Only the epsilon arcs of `state`.
    #[inline]
    pub fn epsilon_arcs(&self, state: StateId) -> &[Arc] {
        &self.arcs[self.states[state.index()].epsilon_range()]
    }

    /// Arc by flat index.
    ///
    /// # Panics
    ///
    /// Panics if `arc` is out of range.
    #[inline]
    pub fn arc(&self, arc: ArcId) -> Arc {
        self.arcs[arc.index()]
    }

    /// Final cost of `state`; `f32::INFINITY` when the state is not final.
    #[inline]
    pub fn final_cost(&self, state: StateId) -> f32 {
        self.final_costs[state.index()]
    }

    /// Returns `true` if `state` accepts.
    #[inline]
    pub fn is_final(&self, state: StateId) -> bool {
        self.final_costs[state.index()].is_finite()
    }

    /// Iterator over all final states with their costs.
    pub fn final_states(&self) -> impl Iterator<Item = (StateId, f32)> + '_ {
        self.final_costs
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_finite())
            .map(|(i, c)| (StateId::from_index(i), *c))
    }

    /// One past the largest input label, i.e. the size of the phone table
    /// the acoustic model must score (label 0 is epsilon).
    #[inline]
    pub fn num_phones(&self) -> u32 {
        self.num_phones
    }

    /// One past the largest output label (label 0 is "no word").
    #[inline]
    pub fn num_words(&self) -> u32 {
        self.num_words
    }

    /// Raw state array, in layout order.
    #[inline]
    pub fn state_entries(&self) -> &[StateEntry] {
        &self.states
    }

    /// Raw arc array, in layout order.
    #[inline]
    pub fn arc_entries(&self) -> &[Arc] {
        &self.arcs
    }

    /// Fraction of arcs that are epsilon (Kaldi's English WFST: 0.115).
    pub fn epsilon_fraction(&self) -> f64 {
        if self.arcs.is_empty() {
            return 0.0;
        }
        let eps = self.arcs.iter().filter(|a| a.is_epsilon()).count();
        eps as f64 / self.arcs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::WfstBuilder;

    fn tiny() -> Wfst {
        let mut b = WfstBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        let s2 = b.add_state();
        b.set_start(s0);
        b.add_arc(s0, s1, PhoneId(1), WordId(1), 1.0);
        b.add_arc(s0, s2, PhoneId::EPSILON, WordId::NONE, 0.5);
        b.add_arc(s1, s2, PhoneId(2), WordId::NONE, 2.0);
        b.set_final(s2, 0.25);
        b.build().unwrap()
    }

    #[test]
    fn arcs_are_partitioned_epsilon_last() {
        let w = tiny();
        let s0 = StateId(0);
        assert_eq!(w.arcs(s0).len(), 2);
        assert_eq!(w.emitting_arcs(s0).len(), 1);
        assert_eq!(w.epsilon_arcs(s0).len(), 1);
        assert!(!w.emitting_arcs(s0)[0].is_epsilon());
        assert!(w.epsilon_arcs(s0)[0].is_epsilon());
    }

    #[test]
    fn final_states_are_reported() {
        let w = tiny();
        assert!(w.is_final(StateId(2)));
        assert!(!w.is_final(StateId(0)));
        assert_eq!(w.final_cost(StateId(2)), 0.25);
        assert_eq!(w.final_states().count(), 1);
    }

    #[test]
    fn label_spaces_are_sized_from_content() {
        let w = tiny();
        assert_eq!(w.num_phones(), 3); // phones 0..=2
        assert_eq!(w.num_words(), 2); // words 0..=1
    }

    #[test]
    fn epsilon_fraction_counts_epsilon_arcs() {
        let w = tiny();
        assert!((w.epsilon_fraction() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn from_parts_rejects_bad_start() {
        let err = Wfst::from_parts(vec![], vec![], StateId(0), vec![]).unwrap_err();
        assert_eq!(err, WfstError::UnknownState(StateId(0)));
    }

    #[test]
    fn from_parts_rejects_out_of_range_arc_window() {
        let states = vec![StateEntry {
            first_arc: ArcId(0),
            num_emitting: 1,
            num_epsilon: 0,
        }];
        let err = Wfst::from_parts(states, vec![], StateId(0), vec![0.0]).unwrap_err();
        assert!(matches!(err, WfstError::UnknownArc(_)));
    }

    #[test]
    fn from_parts_rejects_nan_weight() {
        let states = vec![StateEntry {
            first_arc: ArcId(0),
            num_emitting: 1,
            num_epsilon: 0,
        }];
        let arcs = vec![Arc {
            dest: StateId(0),
            weight: f32::NAN,
            ilabel: PhoneId(1),
            olabel: WordId::NONE,
        }];
        let err = Wfst::from_parts(states, arcs, StateId(0), vec![0.0]).unwrap_err();
        assert!(matches!(err, WfstError::InvalidWeight { .. }));
    }

    #[test]
    fn from_parts_rejects_epsilon_ordering_violation() {
        let states = vec![StateEntry {
            first_arc: ArcId(0),
            num_emitting: 1,
            num_epsilon: 1,
        }];
        // Epsilon arc first, emitting second: violates the packed layout.
        let arcs = vec![
            Arc {
                dest: StateId(0),
                weight: 0.0,
                ilabel: PhoneId::EPSILON,
                olabel: WordId::NONE,
            },
            Arc {
                dest: StateId(0),
                weight: 0.0,
                ilabel: PhoneId(1),
                olabel: WordId::NONE,
            },
        ];
        let err = Wfst::from_parts(states, arcs, StateId(0), vec![0.0]).unwrap_err();
        assert!(matches!(err, WfstError::Corrupt(_)));
    }

    #[test]
    fn from_parts_requires_a_final_state() {
        let states = vec![StateEntry {
            first_arc: ArcId(0),
            num_emitting: 0,
            num_epsilon: 0,
        }];
        let err = Wfst::from_parts(states, vec![], StateId(0), vec![f32::INFINITY]).unwrap_err();
        assert_eq!(err, WfstError::NoFinalStates);
    }

    #[test]
    fn state_entry_ranges_are_consistent() {
        let e = StateEntry {
            first_arc: ArcId(10),
            num_emitting: 3,
            num_epsilon: 2,
        };
        assert_eq!(e.num_arcs(), 5);
        assert_eq!(e.arc_range(), 10..15);
        assert_eq!(e.emitting_range(), 10..13);
        assert_eq!(e.epsilon_range(), 13..15);
    }
}
