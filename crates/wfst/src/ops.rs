//! Standard transducer operations.
//!
//! The paper's WFSTs are built offline by composing knowledge sources and
//! then cleaning the result (Section II). Beyond [`crate::compose`], a
//! usable WFST library needs the surrounding toolbox; this module provides
//! the operations the workspace's construction paths and tests rely on:
//!
//! * [`connect`] — trim states that cannot lie on an accepting path;
//! * [`reverse`] — swap arc directions (used to check coaccessibility);
//! * [`project_input`] / [`project_output`] — forget one label side;
//! * [`scale_weights`] — apply a language-model scale;
//! * [`union`] / [`concat`](fn@concat) — combine transducers;
//! * [`accessible_states`] / [`coaccessible_states`] — reachability
//!   analyses.
//!
//! All operations preserve the packed-layout invariants by rebuilding
//! through [`crate::builder::WfstBuilder`].

use crate::builder::WfstBuilder;
use crate::{Result, StateId, Wfst, WfstError};

/// States reachable from the start by following arcs forward.
pub fn accessible_states(wfst: &Wfst) -> Vec<bool> {
    let n = wfst.num_states();
    let mut seen = vec![false; n];
    let mut stack = vec![wfst.start()];
    seen[wfst.start().index()] = true;
    while let Some(s) = stack.pop() {
        for arc in wfst.arcs(s) {
            if !seen[arc.dest.index()] {
                seen[arc.dest.index()] = true;
                stack.push(arc.dest);
            }
        }
    }
    seen
}

/// States from which some final state is reachable.
pub fn coaccessible_states(wfst: &Wfst) -> Vec<bool> {
    let n = wfst.num_states();
    // Build the reverse adjacency once.
    let mut reverse_adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for idx in 0..n {
        for arc in wfst.arcs(StateId::from_index(idx)) {
            reverse_adj[arc.dest.index()].push(idx as u32);
        }
    }
    let mut seen = vec![false; n];
    let mut stack: Vec<u32> = wfst.final_states().map(|(s, _)| s.0).collect();
    for &s in &stack {
        seen[s as usize] = true;
    }
    while let Some(s) = stack.pop() {
        for &p in &reverse_adj[s as usize] {
            if !seen[p as usize] {
                seen[p as usize] = true;
                stack.push(p);
            }
        }
    }
    seen
}

/// Removes every state that is not both accessible and coaccessible,
/// renumbering the survivors. The recognized language is unchanged.
///
/// # Errors
///
/// Returns [`WfstError::NoFinalStates`] if nothing survives (the start
/// cannot reach any final state).
pub fn connect(wfst: &Wfst) -> Result<Wfst> {
    let acc = accessible_states(wfst);
    let coacc = coaccessible_states(wfst);
    let keep: Vec<bool> = acc.iter().zip(&coacc).map(|(&a, &c)| a && c).collect();
    if !keep[wfst.start().index()] {
        return Err(WfstError::NoFinalStates);
    }
    let mut remap = vec![u32::MAX; wfst.num_states()];
    let mut b = WfstBuilder::new();
    for (idx, &k) in keep.iter().enumerate() {
        if k {
            remap[idx] = b.add_state().0;
        }
    }
    b.set_start(StateId(remap[wfst.start().index()]));
    for (idx, &k) in keep.iter().enumerate() {
        if !k {
            continue;
        }
        let src = StateId(remap[idx]);
        let old = StateId::from_index(idx);
        for arc in wfst.arcs(old) {
            if keep[arc.dest.index()] {
                b.add_arc(
                    src,
                    StateId(remap[arc.dest.index()]),
                    arc.ilabel,
                    arc.olabel,
                    arc.weight,
                );
            }
        }
        let f = wfst.final_cost(old);
        if f.is_finite() {
            b.set_final(src, f);
        }
    }
    b.build()
}

/// Multiplies every arc weight and final cost by `scale` (the language
/// model scale of ASR decoders).
///
/// # Errors
///
/// Propagates validation failures (e.g. a non-finite scale).
///
/// # Panics
///
/// Panics if `scale` is not finite or is negative.
pub fn scale_weights(wfst: &Wfst, scale: f32) -> Result<Wfst> {
    assert!(
        scale.is_finite() && scale >= 0.0,
        "scale must be finite and non-negative"
    );
    let mut b = WfstBuilder::with_capacity(wfst.num_states());
    b.add_states(wfst.num_states());
    b.set_start(wfst.start());
    for idx in 0..wfst.num_states() {
        let s = StateId::from_index(idx);
        for arc in wfst.arcs(s) {
            b.add_arc(s, arc.dest, arc.ilabel, arc.olabel, arc.weight * scale);
        }
        let f = wfst.final_cost(s);
        if f.is_finite() {
            b.set_final(s, f * scale);
        }
    }
    b.build()
}

/// Copies the transducer with every output label replaced by the input
/// label (an acceptor over phones).
///
/// # Errors
///
/// Propagates validation failures.
pub fn project_input(wfst: &Wfst) -> Result<Wfst> {
    project(wfst, true)
}

/// Copies the transducer with every input label replaced by the output
/// label. Arcs whose output is `NONE` become epsilon arcs.
///
/// # Errors
///
/// Propagates validation failures.
pub fn project_output(wfst: &Wfst) -> Result<Wfst> {
    project(wfst, false)
}

fn project(wfst: &Wfst, onto_input: bool) -> Result<Wfst> {
    use crate::{PhoneId, WordId};
    let mut b = WfstBuilder::with_capacity(wfst.num_states());
    b.add_states(wfst.num_states());
    b.set_start(wfst.start());
    for idx in 0..wfst.num_states() {
        let s = StateId::from_index(idx);
        for arc in wfst.arcs(s) {
            let (il, ol) = if onto_input {
                (arc.ilabel, WordId(arc.ilabel.0))
            } else {
                (PhoneId(arc.olabel.0), arc.olabel)
            };
            b.add_arc(s, arc.dest, il, ol, arc.weight);
        }
        let f = wfst.final_cost(s);
        if f.is_finite() {
            b.set_final(s, f);
        }
    }
    b.build()
}

/// Reverses every arc; final states become (epsilon-fanned) start
/// candidates and the start becomes final. A fresh super-start with
/// epsilon arcs to the old final states keeps the result a single-start
/// machine.
///
/// # Errors
///
/// Propagates validation failures.
pub fn reverse(wfst: &Wfst) -> Result<Wfst> {
    let mut b = WfstBuilder::new();
    let super_start = b.add_state();
    b.set_start(super_start);
    b.add_states(wfst.num_states());
    let shift = |s: StateId| StateId(s.0 + 1);
    for (f, cost) in wfst.final_states() {
        b.add_epsilon_arc(super_start, shift(f), cost);
    }
    b.set_final(shift(wfst.start()), 0.0);
    for idx in 0..wfst.num_states() {
        let s = StateId::from_index(idx);
        for arc in wfst.arcs(s) {
            b.add_arc(
                shift(arc.dest),
                shift(s),
                arc.ilabel,
                arc.olabel,
                arc.weight,
            );
        }
    }
    b.build()
}

/// Union: accepts anything either operand accepts, via a fresh start with
/// epsilon arcs into both.
///
/// # Errors
///
/// Propagates validation failures.
pub fn union(a: &Wfst, b_op: &Wfst) -> Result<Wfst> {
    let mut b = WfstBuilder::new();
    let start = b.add_state();
    b.set_start(start);
    let a_base = copy_into(&mut b, a);
    let b_base = copy_into(&mut b, b_op);
    b.add_epsilon_arc(start, StateId(a_base + a.start().0), 0.0);
    b.add_epsilon_arc(start, StateId(b_base + b_op.start().0), 0.0);
    for (f, c) in a.final_states() {
        b.set_final(StateId(a_base + f.0), c);
    }
    for (f, c) in b_op.final_states() {
        b.set_final(StateId(b_base + f.0), c);
    }
    b.build()
}

/// Concatenation: accepts `a`'s language followed by `b_op`'s; `a`'s final
/// states connect by epsilon (carrying their final cost) to `b_op`'s start.
///
/// # Errors
///
/// Propagates validation failures.
pub fn concat(a: &Wfst, b_op: &Wfst) -> Result<Wfst> {
    let mut b = WfstBuilder::new();
    let a_base = copy_into(&mut b, a);
    let b_base = copy_into(&mut b, b_op);
    b.set_start(StateId(a_base + a.start().0));
    for (f, c) in a.final_states() {
        b.add_epsilon_arc(StateId(a_base + f.0), StateId(b_base + b_op.start().0), c);
    }
    for (f, c) in b_op.final_states() {
        b.set_final(StateId(b_base + f.0), c);
    }
    b.build()
}

/// Copies all states and arcs of `src` into the builder, returning the
/// index offset of the copy.
fn copy_into(b: &mut WfstBuilder, src: &Wfst) -> u32 {
    let base = b.add_states(src.num_states()).0;
    for idx in 0..src.num_states() {
        let s = StateId::from_index(idx);
        for arc in src.arcs(s) {
            b.add_arc(
                StateId(base + idx as u32),
                StateId(base + arc.dest.0),
                arc.ilabel,
                arc.olabel,
                arc.weight,
            );
        }
    }
    base
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PhoneId, WordId};

    /// start -1-> a -2-> final, plus an inaccessible state and a dead end.
    fn with_garbage() -> Wfst {
        let mut b = WfstBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        let s2 = b.add_state(); // final
        let dead = b.add_state(); // reachable, no path to final
        let orphan = b.add_state(); // unreachable
        b.set_start(s0);
        b.set_final(s2, 0.5);
        b.add_arc(s0, s1, PhoneId(1), WordId(1), 1.0);
        b.add_arc(s1, s2, PhoneId(2), WordId::NONE, 2.0);
        b.add_arc(s0, dead, PhoneId(3), WordId::NONE, 0.1);
        b.add_arc(orphan, s2, PhoneId(4), WordId::NONE, 0.2);
        b.build().unwrap()
    }

    #[test]
    fn accessibility_analyses() {
        let w = with_garbage();
        let acc = accessible_states(&w);
        assert_eq!(acc, vec![true, true, true, true, false]);
        let coacc = coaccessible_states(&w);
        assert_eq!(coacc, vec![true, true, true, false, true]);
    }

    #[test]
    fn connect_trims_dead_and_orphan_states() {
        let w = with_garbage();
        let trimmed = connect(&w).unwrap();
        assert_eq!(trimmed.num_states(), 3);
        assert_eq!(trimmed.num_arcs(), 2);
        // Language preserved: the 1,2 path still accepts at total 3.5.
        let a0 = trimmed.arcs(trimmed.start())[0];
        assert_eq!(a0.ilabel, PhoneId(1));
        let a1 = trimmed.arcs(a0.dest)[0];
        assert_eq!(a1.ilabel, PhoneId(2));
        assert!((trimmed.final_cost(a1.dest) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn connect_fails_when_nothing_accepts() {
        let mut b = WfstBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        b.set_start(s0);
        b.set_final(s1, 0.0); // unreachable final
        b.add_arc(s0, s0, PhoneId(1), WordId::NONE, 0.0);
        let w = b.build().unwrap();
        assert!(connect(&w).is_err());
    }

    #[test]
    fn scale_weights_multiplies_arcs_and_finals() {
        let w = with_garbage();
        let scaled = scale_weights(&w, 2.0).unwrap();
        assert_eq!(scaled.arcs(scaled.start())[0].weight, 2.0);
        assert_eq!(scaled.final_cost(StateId(2)), 1.0);
        // Zero scale flattens everything.
        let flat = scale_weights(&w, 0.0).unwrap();
        assert!(flat.arc_entries().iter().all(|a| a.weight == 0.0));
    }

    #[test]
    fn projections_unify_label_sides() {
        let w = with_garbage();
        let onto_in = project_input(&w).unwrap();
        for arc in onto_in.arc_entries() {
            assert_eq!(arc.ilabel.0, arc.olabel.0);
        }
        let onto_out = project_output(&w).unwrap();
        for arc in onto_out.arc_entries() {
            assert_eq!(arc.ilabel.0, arc.olabel.0);
        }
        // Output projection of a wordless arc is epsilon.
        assert!(onto_out.arc_entries().iter().any(|a| a.is_epsilon()));
    }

    #[test]
    fn reverse_swaps_reachability() {
        let w = with_garbage();
        let r = reverse(&w).unwrap();
        // The reversed machine accepts 2,1 (reading the path backwards).
        let start_eps = r.epsilon_arcs(r.start());
        assert_eq!(start_eps.len(), 1, "one final state fans in");
        let s2 = start_eps[0].dest;
        let back = r
            .emitting_arcs(s2)
            .iter()
            .find(|a| a.ilabel == PhoneId(2))
            .unwrap();
        let s1 = back.dest;
        assert!(r
            .emitting_arcs(s1)
            .iter()
            .any(|a| a.ilabel == PhoneId(1) && r.is_final(a.dest)));
    }

    #[test]
    fn union_accepts_both_languages() {
        let single = |ph: u32| -> Wfst {
            let mut b = WfstBuilder::new();
            let s0 = b.add_state();
            let s1 = b.add_state();
            b.set_start(s0);
            b.set_final(s1, 0.0);
            b.add_arc(s0, s1, PhoneId(ph), WordId(ph), 1.0);
            b.build().unwrap()
        };
        let u = union(&single(1), &single(2)).unwrap();
        let eps = u.epsilon_arcs(u.start());
        assert_eq!(eps.len(), 2);
        let labels: Vec<u32> = eps
            .iter()
            .map(|e| u.emitting_arcs(e.dest)[0].ilabel.0)
            .collect();
        assert!(labels.contains(&1) && labels.contains(&2));
    }

    #[test]
    fn concat_chains_languages() {
        let single = |ph: u32, cost: f32| -> Wfst {
            let mut b = WfstBuilder::new();
            let s0 = b.add_state();
            let s1 = b.add_state();
            b.set_start(s0);
            b.set_final(s1, cost);
            b.add_arc(s0, s1, PhoneId(ph), WordId::NONE, 1.0);
            b.build().unwrap()
        };
        let c = concat(&single(1, 0.25), &single(2, 0.0)).unwrap();
        // Path: read 1, epsilon (carrying 0.25), read 2, accept.
        let a1 = c.emitting_arcs(c.start())[0];
        assert_eq!(a1.ilabel, PhoneId(1));
        let eps = c.epsilon_arcs(a1.dest);
        assert_eq!(eps.len(), 1);
        assert!((eps[0].weight - 0.25).abs() < 1e-6);
        let a2 = c.emitting_arcs(eps[0].dest)[0];
        assert_eq!(a2.ilabel, PhoneId(2));
        assert!(c.is_final(a2.dest));
        // Only the tail's finals accept.
        assert_eq!(c.final_states().count(), 1);
    }

    #[test]
    fn connect_is_idempotent() {
        let w = with_garbage();
        let once = connect(&w).unwrap();
        let twice = connect(&once).unwrap();
        assert_eq!(once.num_states(), twice.num_states());
        assert_eq!(once.num_arcs(), twice.num_arcs());
    }
}
