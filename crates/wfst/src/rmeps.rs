//! Epsilon removal.
//!
//! Kaldi's decoding graphs keep some epsilon arcs (11.5% in the paper's
//! English WFST) because full removal blows up arc counts; but the
//! operation itself belongs in any WFST toolbox, and it lets experiments
//! quantify exactly that trade-off: an epsilon-free graph never pays the
//! in-frame closure passes, at the price of more (and denser) arcs.
//!
//! The algorithm is the standard one for non-negative weights: compute the
//! epsilon-closure distances `d(p, q)` from every state `p` with epsilon
//! arcs (Dijkstra over the epsilon-only subgraph), then replace each
//! epsilon path `p ~> q` followed by an emitting arc `q -> r` with a
//! direct arc `p -> r` carrying the combined weight, and merge final
//! costs reachable through epsilon.
//!
//! Output labels on epsilon arcs are preserved only when the closure path
//! emits at most one word (true for every graph this workspace builds; a
//! multi-word epsilon path returns an error rather than silently dropping
//! labels).

use crate::builder::WfstBuilder;
use crate::{Result, StateId, Wfst, WfstError, WordId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Ordered wrapper so `f32` costs can live in a binary heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Cost(f32);

impl Eq for Cost {}
impl PartialOrd for Cost {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Cost {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// One reachable-by-epsilon entry: destination, distance, emitted word.
#[derive(Debug, Clone, Copy)]
struct Closure {
    dest: u32,
    cost: f32,
    word: WordId,
}

/// Removes every epsilon arc, preserving the recognized weighted language.
///
/// # Errors
///
/// Returns [`WfstError::IncompatibleComposition`] if some epsilon path
/// emits more than one word (cannot be folded onto a single arc), or
/// propagates builder validation failures.
pub fn remove_epsilons(wfst: &Wfst) -> Result<Wfst> {
    let n = wfst.num_states();
    let mut b = WfstBuilder::with_capacity(n);
    b.add_states(n);
    b.set_start(wfst.start());

    for idx in 0..n {
        let src = StateId::from_index(idx);
        // Epsilon closure of src: Dijkstra over epsilon arcs only.
        let closure = epsilon_closure(wfst, src)?;
        // Original emitting arcs stay.
        for arc in wfst.emitting_arcs(src) {
            b.add_arc(src, arc.dest, arc.ilabel, arc.olabel, arc.weight);
        }
        let mut final_cost = wfst.final_cost(src);
        for c in &closure {
            let via = StateId(c.dest);
            // Fold closure + emitting arc into a direct arc.
            for arc in wfst.emitting_arcs(via) {
                let word = if arc.olabel.is_none() {
                    c.word
                } else if c.word.is_none() {
                    arc.olabel
                } else {
                    return Err(WfstError::IncompatibleComposition(
                        "epsilon path emits more than one word".into(),
                    ));
                };
                b.add_arc(src, arc.dest, arc.ilabel, word, c.cost + arc.weight);
            }
            // Fold finality through epsilon (words on a path into a final
            // state cannot be represented on a final cost; reject).
            let f = wfst.final_cost(via);
            if f.is_finite() {
                if !c.word.is_none() {
                    return Err(WfstError::IncompatibleComposition(
                        "epsilon path into a final state emits a word".into(),
                    ));
                }
                final_cost = final_cost.min(c.cost + f);
            }
        }
        if final_cost.is_finite() {
            b.set_final(src, final_cost);
        }
    }
    b.build()
}

/// All states reachable from `src` through epsilon arcs only (excluding
/// `src` itself), with shortest epsilon distance and the single word
/// emitted on that path (if any).
fn epsilon_closure(wfst: &Wfst, src: StateId) -> Result<Vec<Closure>> {
    if wfst.epsilon_arcs(src).is_empty() {
        return Ok(Vec::new());
    }
    let mut dist: HashMap<u32, (f32, WordId)> = HashMap::new();
    let mut heap: BinaryHeap<(Reverse<Cost>, u32, u32)> = BinaryHeap::new(); // (cost, state, word)
    heap.push((Reverse(Cost(0.0)), src.0, WordId::NONE.0));
    while let Some((Reverse(Cost(cost)), state, word)) = heap.pop() {
        if state != src.0 {
            match dist.get(&state) {
                Some(&(existing, _)) if existing <= cost => continue,
                _ => {
                    dist.insert(state, (cost, WordId(word)));
                }
            }
        }
        for arc in wfst.epsilon_arcs(StateId(state)) {
            let next_word = if arc.olabel.is_none() {
                WordId(word)
            } else if word == WordId::NONE.0 {
                arc.olabel
            } else {
                return Err(WfstError::IncompatibleComposition(
                    "epsilon path emits more than one word".into(),
                ));
            };
            let next_cost = cost + arc.weight;
            let better = dist
                .get(&arc.dest.0)
                .is_none_or(|&(existing, _)| next_cost < existing);
            if arc.dest != src && better {
                heap.push((Reverse(Cost(next_cost)), arc.dest.0, next_word.0));
            }
        }
    }
    Ok(dist
        .into_iter()
        .map(|(dest, (cost, word))| Closure { dest, cost, word })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PhoneId;

    /// start -eps(0.1)-> a -p1(w5)-> final, plus a direct p2 arc.
    fn simple() -> Wfst {
        let mut b = WfstBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        let s2 = b.add_state();
        b.set_start(s0);
        b.set_final(s2, 0.25);
        b.add_epsilon_arc(s0, s1, 0.1);
        b.add_arc(s1, s2, PhoneId(1), WordId(5), 0.5);
        b.add_arc(s0, s2, PhoneId(2), WordId::NONE, 1.0);
        b.build().unwrap()
    }

    #[test]
    fn output_has_no_epsilons_and_same_paths() {
        let w = simple();
        let e = remove_epsilons(&w).unwrap();
        assert_eq!(e.epsilon_fraction(), 0.0);
        // The folded arc start -p1-> s2 exists with weight 0.6 and word 5.
        let folded = e
            .emitting_arcs(e.start())
            .iter()
            .find(|a| a.ilabel == PhoneId(1))
            .copied()
            .expect("folded arc");
        assert!((folded.weight - 0.6).abs() < 1e-6);
        assert_eq!(folded.olabel, WordId(5));
        assert_eq!(folded.dest, StateId(2));
    }

    #[test]
    fn finality_propagates_through_epsilon() {
        // start -eps(0.2)-> final(0.3): start becomes final at 0.5.
        let mut b = WfstBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        b.set_start(s0);
        b.set_final(s1, 0.3);
        b.add_epsilon_arc(s0, s1, 0.2);
        b.add_arc(s1, s0, PhoneId(1), WordId::NONE, 1.0);
        let w = b.build().unwrap();
        let e = remove_epsilons(&w).unwrap();
        assert!(e.is_final(s0));
        assert!((e.final_cost(s0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn epsilon_chains_take_the_cheapest_path() {
        // Two epsilon routes to the same emitting arc; the cheaper wins.
        let mut b = WfstBuilder::new();
        let s: Vec<StateId> = (0..4).map(|_| b.add_state()).collect();
        b.set_start(s[0]);
        b.set_final(s[3], 0.0);
        b.add_epsilon_arc(s[0], s[1], 0.5);
        b.add_epsilon_arc(s[0], s[2], 0.1);
        b.add_epsilon_arc(s[2], s[1], 0.1); // 0.2 total, cheaper
        b.add_arc(s[1], s[3], PhoneId(1), WordId::NONE, 1.0);
        let w = b.build().unwrap();
        let e = remove_epsilons(&w).unwrap();
        let costs: Vec<f32> = e
            .emitting_arcs(s[0])
            .iter()
            .filter(|a| a.dest == s[3])
            .map(|a| a.weight)
            .collect();
        assert!(costs.iter().any(|c| (c - 1.2).abs() < 1e-6), "{costs:?}");
    }

    #[test]
    fn decoding_is_equivalent_before_and_after() {
        use crate::synth::{SynthConfig, SynthWfst};
        // Synthetic graphs have epsilon arcs with no word labels; removal
        // must preserve best paths exactly (checked by shortest accepted
        // cost over a few frames via brute force is impractical here, so
        // compare arc/final reachability invariants instead).
        let w = SynthWfst::generate(&SynthConfig::with_states(300)).unwrap();
        let e = remove_epsilons(&w).unwrap();
        assert_eq!(e.num_states(), w.num_states());
        assert_eq!(e.epsilon_fraction(), 0.0);
        assert!(e.num_arcs() >= w.num_arcs() - w.num_arcs() / 5);
        assert!(e.final_states().count() >= w.final_states().count());
    }

    #[test]
    fn multi_word_epsilon_paths_are_rejected() {
        let mut b = WfstBuilder::new();
        let s: Vec<StateId> = (0..3).map(|_| b.add_state()).collect();
        b.set_start(s[0]);
        b.set_final(s[2], 0.0);
        // Epsilon input with word outputs, chained: cannot fold two words.
        b.add_arc(s[0], s[1], PhoneId::EPSILON, WordId(1), 0.1);
        b.add_arc(s[1], s[2], PhoneId::EPSILON, WordId(2), 0.1);
        b.add_arc(s[2], s[0], PhoneId(1), WordId::NONE, 1.0);
        let w = b.build().unwrap();
        assert!(matches!(
            remove_epsilons(&w),
            Err(WfstError::IncompatibleComposition(_))
        ));
    }

    #[test]
    fn epsilon_free_input_is_unchanged() {
        let mut b = WfstBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        b.set_start(s0);
        b.set_final(s1, 0.0);
        b.add_arc(s0, s1, PhoneId(1), WordId(1), 0.5);
        let w = b.build().unwrap();
        let e = remove_epsilons(&w).unwrap();
        assert_eq!(e.num_arcs(), w.num_arcs());
        assert_eq!(e.arcs(s0)[0].weight, 0.5);
    }
}
