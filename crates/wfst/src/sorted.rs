//! Bandwidth-saving WFST layout (Section IV-B of the paper).
//!
//! The only purpose of a state fetch is to locate the state's outgoing arcs.
//! If all states had the same out-degree `d`, the arc index would simply be
//! `state_index * d` and the state array would never be read. Real WFSTs
//! have degrees from 1 to 770, but ~97% of dynamically visited states have
//! 15 or fewer arcs (Figure 7). The paper therefore sorts the states with
//! `degree <= N` (N = 16) to the front of the state array, grouped by
//! degree, so that for those states the arc index is an affine function of
//! the state index:
//!
//! ```text
//! arc_index(x) = x * d + offset[d]      for states x in degree group d
//! ```
//!
//! The hardware realizes this with `N` parallel comparators against the
//! cumulative group boundaries `S1, S1+S2, ...` and an `N`-entry offset
//! table; the multiply-add runs on the State Issuer's existing address
//! generation unit. States with more than `N` arcs (and arc-less dead
//! states) stay behind the sorted region and still require a state fetch.
//!
//! [`SortedWfst`] performs the offline transformation (state reordering,
//! arc-array rebuild, destination remapping) and [`DirectIndexUnit`] models
//! the runtime hardware decision, which `asr-accel`'s State Issuer uses to
//! skip state fetches.

use crate::store::Section;
use crate::{Arc, ArcId, Result, StateEntry, StateId, Wfst};
use serde::{Deserialize, Serialize};

/// Default comparator count used in the paper's experiments.
pub const DEFAULT_THRESHOLD: usize = 16;

/// The runtime decision hardware of the optimized State Issuer: `N`
/// comparators over cumulative boundaries plus an offset table.
///
/// This is deliberately a standalone value type so the accelerator model
/// can own one "in hardware" without referencing the full transducer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirectIndexUnit {
    /// Cumulative number of states in degree groups `1..=d` — the `S1`,
    /// `S1+S2`, ... registers. `boundaries[d-1]` bounds group `d`.
    boundaries: Vec<u32>,
    /// Per-degree offsets such that `arc = x*d + offsets[d-1]`.
    offsets: Vec<i64>,
}

impl DirectIndexUnit {
    /// Assembles a unit directly from its hardware registers: the
    /// cumulative group `boundaries` and per-degree `offsets` (one of each
    /// per comparator). This is the hardware bring-up path — the registers
    /// are programmed separately from the graph image — and what the
    /// fault-injection tests use to present a unit that disagrees with the
    /// layout it claims to describe.
    ///
    /// # Panics
    ///
    /// Panics if `boundaries` and `offsets` differ in length (every
    /// comparator has exactly one offset register).
    pub fn from_registers(boundaries: Vec<u32>, offsets: Vec<i64>) -> Self {
        assert_eq!(
            boundaries.len(),
            offsets.len(),
            "one offset register per comparator"
        );
        Self {
            boundaries,
            offsets,
        }
    }

    /// Number of comparators (the paper's `N`).
    pub fn threshold(&self) -> usize {
        self.boundaries.len()
    }

    /// The cumulative boundary register bounding degree group `d = group + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `group >= threshold()`.
    pub fn group_boundary(&self, group: usize) -> u32 {
        self.boundaries[group]
    }

    /// The offset register of degree group `d = group + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `group >= threshold()`.
    pub fn group_offset(&self, group: usize) -> i64 {
        self.offsets[group]
    }

    /// One past the last state index served by direct computation.
    pub fn sorted_region_end(&self) -> u32 {
        self.boundaries.last().copied().unwrap_or(0)
    }

    /// Attempts to compute the first-arc index of `state` directly.
    ///
    /// Returns `Some((arc, degree))` when the state lies in the sorted
    /// region (degree ≤ N), in which case *no state fetch is needed*;
    /// `None` means the State Issuer must read the state record from
    /// memory.
    #[inline]
    pub fn direct_arc_index(&self, state: StateId) -> Option<(ArcId, u16)> {
        let x = state.0;
        if x >= self.sorted_region_end() {
            return None;
        }
        // The hardware evaluates all comparators in parallel; a priority
        // encoder picks the first group whose boundary exceeds the index.
        // A binary search is the software equivalent (identical outcome).
        let group = self.boundaries.partition_point(|&b| b <= x);
        let d = (group + 1) as i64;
        let arc = x as i64 * d + self.offsets[group];
        debug_assert!(arc >= 0);
        Some((ArcId(arc as u32), d as u16))
    }
}

/// A WFST rewritten into the degree-sorted layout, together with the state
/// renumbering and the hardware decision unit.
///
/// # Example
///
/// ```
/// use asr_wfst::sorted::SortedWfst;
/// use asr_wfst::synth::{SynthConfig, SynthWfst};
/// use asr_wfst::StateId;
///
/// let wfst = SynthWfst::generate(&SynthConfig::with_states(1_000))?;
/// let sorted = SortedWfst::new(&wfst)?; // the paper's N = 16
/// // More than 95% of states no longer need a state fetch:
/// assert!(sorted.static_direct_fraction() > 0.95);
/// // The direct computation agrees with the actual layout everywhere:
/// let (arc, degree) = sorted.unit().direct_arc_index(StateId(0)).unwrap();
/// assert_eq!(arc, sorted.wfst().state(StateId(0)).first_arc);
/// assert_eq!(degree as usize, sorted.wfst().state(StateId(0)).num_arcs());
/// # Ok::<(), asr_wfst::WfstError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SortedWfst {
    wfst: Wfst,
    unit: DirectIndexUnit,
    old_to_new: Section<u32>,
    new_to_old: Section<u32>,
    threshold: usize,
}

impl SortedWfst {
    /// Rewrites `wfst` into the sorted layout with the paper's default
    /// threshold `N = 16`.
    ///
    /// # Errors
    ///
    /// Propagates validation errors from rebuilding the transducer.
    pub fn new(wfst: &Wfst) -> Result<Self> {
        Self::with_threshold(wfst, DEFAULT_THRESHOLD)
    }

    /// Rewrites `wfst` with an explicit comparator count `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    ///
    /// # Errors
    ///
    /// Propagates validation errors from rebuilding the transducer.
    pub fn with_threshold(wfst: &Wfst, n: usize) -> Result<Self> {
        assert!(n > 0, "threshold must be at least 1");
        let num_states = wfst.num_states();

        // Group states: degree groups 1..=n first (ascending degree, stable
        // within a group), then everything else in original order.
        let mut groups: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut tail: Vec<u32> = Vec::new();
        for idx in 0..num_states {
            let d = wfst.state(StateId::from_index(idx)).num_arcs();
            if d >= 1 && d <= n {
                groups[d - 1].push(idx as u32);
            } else {
                tail.push(idx as u32);
            }
        }

        let mut new_to_old = Vec::with_capacity(num_states);
        let mut boundaries = Vec::with_capacity(n);
        for g in &groups {
            new_to_old.extend_from_slice(g);
            boundaries.push(new_to_old.len() as u32);
        }
        new_to_old.extend_from_slice(&tail);

        let mut old_to_new = vec![0u32; num_states];
        for (new, &old) in new_to_old.iter().enumerate() {
            old_to_new[old as usize] = new as u32;
        }

        // Rebuild the state/arc arrays in the new order, remapping arc
        // destinations into the new index space.
        let mut states = Vec::with_capacity(num_states);
        let mut arcs = Vec::with_capacity(wfst.num_arcs());
        let mut final_costs = Vec::with_capacity(num_states);
        for &old in &new_to_old {
            let old_id = StateId(old);
            let entry = wfst.state(old_id);
            let first_arc = ArcId::from_index(arcs.len());
            for a in wfst.arcs(old_id) {
                arcs.push(Arc {
                    dest: StateId(old_to_new[a.dest.index()]),
                    ..*a
                });
            }
            states.push(StateEntry {
                first_arc,
                num_emitting: entry.num_emitting,
                num_epsilon: entry.num_epsilon,
            });
            final_costs.push(wfst.final_cost(old_id));
        }

        // offset[d] = A_d - d * B_{d-1}, where A_d is the arc-array base of
        // group d and B_{d-1} the cumulative state count below it.
        let mut offsets = Vec::with_capacity(n);
        let mut arc_base = 0i64;
        let mut state_base = 0i64;
        for d in 1..=n as i64 {
            offsets.push(arc_base - d * state_base);
            let group_states = groups[(d - 1) as usize].len() as i64;
            arc_base += d * group_states;
            state_base += group_states;
        }

        let start = StateId(old_to_new[wfst.start().index()]);
        let rebuilt = Wfst::from_parts(states, arcs, start, final_costs)?;
        Ok(Self {
            wfst: rebuilt,
            unit: DirectIndexUnit {
                boundaries,
                offsets,
            },
            old_to_new: old_to_new.into(),
            new_to_old: new_to_old.into(),
            threshold: n,
        })
    }

    /// Assembles a sorted transducer out of image-backed parts. Callers
    /// (the zero-copy store) must have validated that `unit` agrees with
    /// the state table and that the maps are inverse permutations.
    pub(crate) fn from_image_parts(
        wfst: Wfst,
        unit: DirectIndexUnit,
        old_to_new: Section<u32>,
        new_to_old: Section<u32>,
        threshold: usize,
    ) -> Self {
        Self {
            wfst,
            unit,
            old_to_new,
            new_to_old,
            threshold,
        }
    }

    /// Raw old→new state map, in original-numbering order.
    pub(crate) fn old_to_new_raw(&self) -> &[u32] {
        &self.old_to_new
    }

    /// Raw new→old state map, in sorted-numbering order.
    pub(crate) fn new_to_old_raw(&self) -> &[u32] {
        &self.new_to_old
    }

    /// The rewritten transducer (new state numbering).
    pub fn wfst(&self) -> &Wfst {
        &self.wfst
    }

    /// Consumes `self`, returning the rewritten transducer and the hardware
    /// decision unit.
    pub fn into_parts(self) -> (Wfst, DirectIndexUnit) {
        (self.wfst, self.unit)
    }

    /// The hardware decision unit (comparators + offset table).
    pub fn unit(&self) -> &DirectIndexUnit {
        &self.unit
    }

    /// Replaces the decision unit, returning the previous one — the
    /// fault-injection hook used to validate that consumers detect a
    /// unit/layout mismatch (see `asr-accel`'s corrupted-layout tests)
    /// rather than silently mis-indexing arcs.
    pub fn replace_unit(&mut self, unit: DirectIndexUnit) -> DirectIndexUnit {
        std::mem::replace(&mut self.unit, unit)
    }

    /// Comparator count `N`.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Maps an original state id into the sorted numbering.
    pub fn map_state(&self, old: StateId) -> StateId {
        StateId(self.old_to_new[old.index()])
    }

    /// Maps a sorted-space state id back to the original numbering.
    pub fn unmap_state(&self, new: StateId) -> StateId {
        StateId(self.new_to_old[new.index()])
    }

    /// Fraction of *static* states whose arc index is directly computable
    /// (the paper reports > 95% for N = 16 on the Kaldi WFST).
    pub fn static_direct_fraction(&self) -> f64 {
        if self.wfst.num_states() == 0 {
            return 0.0;
        }
        self.unit.sorted_region_end() as f64 / self.wfst.num_states() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::WfstBuilder;
    use crate::{PhoneId, WordId};

    /// Builds a chain-ish WFST with a controlled degree profile.
    fn degree_profile(degrees: &[usize]) -> Wfst {
        let mut b = WfstBuilder::new();
        let n = degrees.len();
        let first = b.add_states(n);
        b.set_start(first);
        b.set_final(StateId(n as u32 - 1), 0.0);
        for (i, &d) in degrees.iter().enumerate() {
            for k in 0..d {
                let dest = StateId(((i + k + 1) % n) as u32);
                b.add_arc(
                    StateId(i as u32),
                    dest,
                    PhoneId(1 + (k as u32 % 3)),
                    WordId::NONE,
                    0.1 * k as f32,
                );
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn direct_index_matches_actual_first_arc() {
        let w = degree_profile(&[3, 1, 5, 2, 1, 4, 2, 7, 1, 3]);
        let s = SortedWfst::with_threshold(&w, 4).unwrap();
        for idx in 0..s.wfst().num_states() {
            let sid = StateId(idx as u32);
            let entry = s.wfst().state(sid);
            match s.unit().direct_arc_index(sid) {
                Some((arc, degree)) => {
                    assert_eq!(arc, entry.first_arc, "state {sid:?}");
                    assert_eq!(degree as usize, entry.num_arcs(), "state {sid:?}");
                    assert!(entry.num_arcs() <= 4);
                }
                None => {
                    assert!(
                        entry.num_arcs() > 4 || entry.num_arcs() == 0,
                        "state {sid:?} with degree {} should be direct",
                        entry.num_arcs()
                    );
                }
            }
        }
    }

    #[test]
    fn sorted_region_is_grouped_by_ascending_degree() {
        let w = degree_profile(&[3, 1, 5, 2, 1, 4, 2, 7, 1, 3]);
        let s = SortedWfst::with_threshold(&w, 4).unwrap();
        let end = s.unit().sorted_region_end() as usize;
        let degrees: Vec<usize> = (0..end)
            .map(|i| s.wfst().state(StateId(i as u32)).num_arcs())
            .collect();
        let mut sorted = degrees.clone();
        sorted.sort_unstable();
        assert_eq!(degrees, sorted);
        assert!(degrees.iter().all(|&d| (1..=4).contains(&d)));
    }

    #[test]
    fn language_is_preserved_under_renumbering() {
        let w = degree_profile(&[2, 1, 3, 1, 2]);
        let s = SortedWfst::with_threshold(&w, 2).unwrap();
        // Each original arc must exist in the renamed graph with identical
        // labels and weight.
        for old_idx in 0..w.num_states() {
            let old_id = StateId(old_idx as u32);
            let new_id = s.map_state(old_id);
            assert_eq!(s.unmap_state(new_id), old_id);
            let old_arcs = w.arcs(old_id);
            let new_arcs = s.wfst().arcs(new_id);
            assert_eq!(old_arcs.len(), new_arcs.len());
            for (oa, na) in old_arcs.iter().zip(new_arcs) {
                assert_eq!(s.map_state(oa.dest), na.dest);
                assert_eq!(oa.ilabel, na.ilabel);
                assert_eq!(oa.olabel, na.olabel);
                assert_eq!(oa.weight, na.weight);
            }
            assert_eq!(w.final_cost(old_id), s.wfst().final_cost(new_id));
        }
        assert_eq!(s.map_state(w.start()), s.wfst().start());
    }

    #[test]
    fn states_beyond_threshold_need_memory_fetch() {
        let w = degree_profile(&[1, 8, 1, 9, 1]);
        let s = SortedWfst::with_threshold(&w, 4).unwrap();
        let fetches = (0..5)
            .filter(|&i| s.unit().direct_arc_index(StateId(i)).is_none())
            .count();
        assert_eq!(fetches, 2, "the two high-degree states");
        assert!((s.static_direct_fraction() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn threshold_one_still_works() {
        let w = degree_profile(&[1, 2, 1, 1]);
        let s = SortedWfst::with_threshold(&w, 1).unwrap();
        for i in 0..s.unit().sorted_region_end() {
            let (arc, d) = s.unit().direct_arc_index(StateId(i)).unwrap();
            assert_eq!(d, 1);
            assert_eq!(arc, s.wfst().state(StateId(i)).first_arc);
        }
    }

    #[test]
    fn default_threshold_is_sixteen() {
        let w = degree_profile(&[1, 2, 3]);
        let s = SortedWfst::new(&w).unwrap();
        assert_eq!(s.threshold(), 16);
        assert_eq!(s.unit().threshold(), 16);
    }
}
