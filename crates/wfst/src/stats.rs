//! Degree statistics behind Figure 7 of the paper.
//!
//! Figure 7 plots the *cumulative percentage of states accessed dynamically*
//! against out-degree: although the maximum degree is 770, 97% of states
//! fetched from memory have 15 or fewer arcs. [`DegreeCdf`] computes that
//! curve either statically (every state counted once) or dynamically
//! (weighted by per-state access counts recorded during a decode).

use crate::{StateEntry, StateId, Wfst};
use serde::{Deserialize, Serialize};

/// Histogram of state out-degrees and its cumulative distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegreeCdf {
    /// `counts[d]` = weight of states with out-degree `d`.
    counts: Vec<u64>,
    total: u64,
}

impl DegreeCdf {
    /// Static CDF: every state weighted equally.
    pub fn from_static(wfst: &Wfst) -> Self {
        let mut counts = Vec::new();
        for entry in wfst.state_entries() {
            bump(&mut counts, entry.num_arcs(), 1);
        }
        let total = wfst.num_states() as u64;
        Self { counts, total }
    }

    /// Dynamic CDF: each state weighted by how many times the search
    /// fetched it. `accesses` pairs state ids with fetch counts (states
    /// never fetched simply do not appear).
    pub fn from_accesses<I>(wfst: &Wfst, accesses: I) -> Self
    where
        I: IntoIterator<Item = (StateId, u64)>,
    {
        let mut counts = Vec::new();
        let mut total = 0u64;
        for (state, hits) in accesses {
            let d = wfst.state(state).num_arcs();
            bump(&mut counts, d, hits);
            total += hits;
        }
        Self { counts, total }
    }

    /// Total weight (states or accesses) covered by the distribution.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Largest out-degree present.
    pub fn max_degree(&self) -> usize {
        self.counts.len().saturating_sub(1)
    }

    /// Fraction of weight at out-degree `<= degree`, in `[0, 1]`.
    pub fn cumulative(&self, degree: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let upto = self.counts.iter().take(degree + 1).sum::<u64>();
        upto as f64 / self.total as f64
    }

    /// The full curve as `(degree, cumulative_fraction)` points, one per
    /// degree up to the maximum — the series plotted in Figure 7.
    pub fn curve(&self) -> Vec<(usize, f64)> {
        (0..=self.max_degree())
            .map(|d| (d, self.cumulative(d)))
            .collect()
    }

    /// Smallest degree whose cumulative fraction reaches `target`.
    pub fn percentile_degree(&self, target: f64) -> usize {
        for d in 0..=self.max_degree() {
            if self.cumulative(d) >= target {
                return d;
            }
        }
        self.max_degree()
    }
}

fn bump(counts: &mut Vec<u64>, degree: usize, by: u64) {
    if counts.len() <= degree {
        counts.resize(degree + 1, 0);
    }
    counts[degree] += by;
}

/// Summary statistics of a transducer, printed by examples and experiment
/// binaries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WfstSummary {
    /// Number of states.
    pub num_states: usize,
    /// Number of arcs.
    pub num_arcs: usize,
    /// Mean out-degree.
    pub mean_degree: f64,
    /// Largest out-degree.
    pub max_degree: usize,
    /// Fraction of epsilon arcs.
    pub epsilon_fraction: f64,
    /// Packed image size in bytes (states + arcs).
    pub image_bytes: u64,
    /// Fraction of states with out-degree ≤ 16 (the paper's `N`).
    pub small_state_fraction: f64,
}

impl WfstSummary {
    /// Computes the summary for `wfst`.
    pub fn of(wfst: &Wfst) -> Self {
        let cdf = DegreeCdf::from_static(wfst);
        let layout = crate::layout::MemoryLayout::new(wfst, 0);
        Self {
            num_states: wfst.num_states(),
            num_arcs: wfst.num_arcs(),
            mean_degree: wfst.num_arcs() as f64 / wfst.num_states().max(1) as f64,
            max_degree: wfst
                .state_entries()
                .iter()
                .map(StateEntry::num_arcs)
                .max()
                .unwrap_or(0),
            epsilon_fraction: wfst.epsilon_fraction(),
            image_bytes: layout.total_bytes(),
            small_state_fraction: cdf.cumulative(16),
        }
    }
}

impl std::fmt::Display for WfstSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "states:            {:>12}", self.num_states)?;
        writeln!(f, "arcs:              {:>12}", self.num_arcs)?;
        writeln!(f, "mean out-degree:   {:>12.2}", self.mean_degree)?;
        writeln!(f, "max out-degree:    {:>12}", self.max_degree)?;
        writeln!(f, "epsilon fraction:  {:>12.3}", self.epsilon_fraction)?;
        writeln!(
            f,
            "image size:        {:>9.1} MB",
            self.image_bytes as f64 / (1024.0 * 1024.0)
        )?;
        write!(
            f,
            "degree<=16 states: {:>11.1}%",
            100.0 * self.small_state_fraction
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{SynthConfig, SynthWfst};

    #[test]
    fn static_cdf_is_monotone_and_reaches_one() {
        let w = SynthWfst::generate(&SynthConfig::with_states(3_000)).unwrap();
        let cdf = DegreeCdf::from_static(&w);
        let curve = cdf.curve();
        for pair in curve.windows(2) {
            assert!(pair[0].1 <= pair[1].1 + 1e-12);
        }
        assert!((cdf.cumulative(cdf.max_degree()) - 1.0).abs() < 1e-12);
        assert_eq!(cdf.total(), 3_000);
    }

    #[test]
    fn dynamic_cdf_weights_by_access_count() {
        let w = SynthWfst::generate(&SynthConfig::with_states(500)).unwrap();
        // Access only state 0, a hundred times.
        let cdf = DegreeCdf::from_accesses(&w, [(StateId(0), 100)]);
        assert_eq!(cdf.total(), 100);
        let d0 = w.state(StateId(0)).num_arcs();
        assert!((cdf.cumulative(d0) - 1.0).abs() < 1e-12);
        if d0 > 0 {
            assert_eq!(cdf.cumulative(d0 - 1), 0.0);
        }
    }

    #[test]
    fn synthetic_model_matches_figure7_shape() {
        // Figure 7: 97% of fetched states have <=15 arcs. Statically our
        // generator targets >95% at <=16.
        let w = SynthWfst::generate(&SynthConfig::with_states(20_000)).unwrap();
        let cdf = DegreeCdf::from_static(&w);
        assert!(cdf.cumulative(15) > 0.9);
        assert!(cdf.cumulative(16) > 0.95);
        assert!(cdf.percentile_degree(0.95) <= 16);
    }

    #[test]
    fn summary_reports_consistent_numbers() {
        let w = SynthWfst::generate(&SynthConfig::with_states(2_000)).unwrap();
        let s = WfstSummary::of(&w);
        assert_eq!(s.num_states, 2_000);
        assert_eq!(s.num_arcs, w.num_arcs());
        assert!(s.mean_degree > 1.0);
        assert!(s.small_state_fraction > 0.9);
        let text = s.to_string();
        assert!(text.contains("states"));
        assert!(text.contains("epsilon"));
    }

    #[test]
    fn empty_cdf_is_safe() {
        let w = SynthWfst::generate(&SynthConfig::with_states(10)).unwrap();
        let cdf = DegreeCdf::from_accesses(&w, std::iter::empty());
        assert_eq!(cdf.total(), 0);
        assert_eq!(cdf.cumulative(5), 0.0);
        assert_eq!(cdf.max_degree(), 0);
    }
}
