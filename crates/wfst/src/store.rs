//! Zero-copy graph store: the version-2 serialized image of a
//! [`SortedWfst`].
//!
//! Section IV of the paper is a bandwidth argument: the accelerator walks
//! compact arc records straight out of DRAM, with no intermediate
//! reconstruction. The v1 container ([`crate::io`]) undoes that on the
//! software side — every load re-parses records one by one into fresh
//! `Vec`s and re-derives the degree-sorted layout. This module keeps the
//! paper's property end to end:
//!
//! * [`to_bytes`] serializes the *full* [`SortedWfst`] — state table, arc
//!   array (both in the exact wire format of [`crate::layout`]), final
//!   costs, the [`DirectIndexUnit`] registers, and the state renumbering
//!   maps — into sections that are each 64-byte aligned inside the file;
//! * [`ImageBytes`] is a reference-counted buffer whose base address is
//!   64-byte aligned, so a file read lands every section at a correctly
//!   aligned address;
//! * [`GraphImage`] validates the header, section table and every
//!   structural invariant **once** (typed [`WfstError`]s, never a panic,
//!   however corrupt the input), then exposes a [`SortedWfst`] whose state,
//!   arc, final-cost and map arrays are typed views *directly over the
//!   buffer* — loading performs zero per-record copies and zero rebuilds.
//!
//! The cast from bytes to `&[Arc]`/`&[StateEntry]` is sound because the
//! records are `#[repr(C)]` with a layout pinned (by const assertions and
//! golden tests) to the little-endian wire format, every bit pattern of
//! every field is a valid value, and the one-time validation establishes
//! the semantic invariants [`Wfst::from_parts`] would have checked. On a
//! big-endian host the same API transparently falls back to an owned
//! decode.

use crate::layout::{self, ARC_BYTES, STATE_BYTES};
use crate::sorted::{DirectIndexUnit, SortedWfst};
use crate::{Arc, ArcId, Result, StateEntry, StateId, Wfst, WfstError};
use std::path::Path;

/// Version byte of the zero-copy image container (the v1 byte stream lives
/// in [`crate::io`] and carries no layout registers).
pub const STORE_VERSION: u8 = 2;

/// Shared magic with the v1 container: `b"WFST"`.
const MAGIC: &[u8; 4] = b"WFST";

/// Alignment of the buffer base and of every section offset: one cache
/// line, matching [`crate::layout::MemoryLayout`]'s arc-array alignment.
const SECTION_ALIGN: usize = 64;

/// Fixed header size in bytes (before the section table).
const HEADER_BYTES: usize = 48;
/// Bytes per section-table entry: kind, offset, length (u64 each).
const TABLE_ENTRY_BYTES: usize = 24;
/// Number of sections in a v2 image, in fixed order.
const NUM_SECTIONS: usize = 7;
/// Offset of the first section: `align64(48 + 7 * 24) = 256`.
const FIRST_SECTION_OFFSET: usize = 256;

/// Section kind tags, in the fixed order they appear in the file.
const KIND_STATES: u64 = 1;
const KIND_ARCS: u64 = 2;
const KIND_FINALS: u64 = 3;
const KIND_BOUNDARIES: u64 = 4;
const KIND_OFFSETS: u64 = 5;
const KIND_OLD_TO_NEW: u64 = 6;
const KIND_NEW_TO_OLD: u64 = 7;

const KINDS: [u64; NUM_SECTIONS] = [
    KIND_STATES,
    KIND_ARCS,
    KIND_FINALS,
    KIND_BOUNDARIES,
    KIND_OFFSETS,
    KIND_OLD_TO_NEW,
    KIND_NEW_TO_OLD,
];

fn kind_name(kind: u64) -> &'static str {
    match kind {
        KIND_STATES => "states",
        KIND_ARCS => "arcs",
        KIND_FINALS => "finals",
        KIND_BOUNDARIES => "boundaries",
        KIND_OFFSETS => "offsets",
        KIND_OLD_TO_NEW => "old_to_new",
        KIND_NEW_TO_OLD => "new_to_old",
        _ => "unknown",
    }
}

fn corrupt(msg: impl Into<String>) -> WfstError {
    WfstError::Corrupt(msg.into())
}

fn align64(x: usize) -> usize {
    (x + (SECTION_ALIGN - 1)) & !(SECTION_ALIGN - 1)
}

// ---------------------------------------------------------------------------
// ImageBytes: a 64-byte-aligned, reference-counted, immutable byte buffer.
// ---------------------------------------------------------------------------

/// One cache line of storage; the `align(64)` is what guarantees that the
/// buffer base — and therefore every 64-byte-aligned section offset — is a
/// validly aligned address for the typed record views.
#[repr(C, align(64))]
#[derive(Clone, Copy)]
struct Chunk([u8; SECTION_ALIGN]);

// The byte-stable image format depends on this exact layout; a drifted
// `Chunk` would silently misalign every section view.
const _: () = assert!(std::mem::size_of::<Chunk>() == SECTION_ALIGN);
const _: () = assert!(std::mem::align_of::<Chunk>() == SECTION_ALIGN);

/// A read-only, page-cache-shared file mapping. Pages fault in from the
/// kernel's cache instead of being copied into fresh heap pages, which is
/// what makes [`ImageBytes::read_file`] an order of magnitude cheaper than
/// a `read(2)` into a new buffer for a multi-megabyte image.
#[cfg(target_os = "linux")]
struct Mapping {
    base: std::ptr::NonNull<u8>,
    bytes: usize,
}

// SAFETY: the mapping is created `PROT_READ` and never remapped; concurrent
// readers see immutable memory, exactly like a shared `&[u8]`.
#[cfg(target_os = "linux")]
unsafe impl Send for Mapping {}
#[cfg(target_os = "linux")]
unsafe impl Sync for Mapping {}

#[cfg(target_os = "linux")]
impl Drop for Mapping {
    fn drop(&mut self) {
        // SAFETY: `base`/`bytes` describe exactly the region mmap returned,
        // and the last `ImageBytes` clone dropping is the only caller.
        unsafe { sys::munmap(self.base.as_ptr().cast(), self.bytes) };
    }
}

/// Raw bindings for the mapping syscalls; the symbols come from the libc
/// every Rust binary already links, so this adds no dependency.
#[cfg(target_os = "linux")]
mod sys {
    use std::os::raw::{c_int, c_void};

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;
    /// Fault the whole range in eagerly: one kernel walk over the page
    /// cache instead of a trap per page during validation.
    pub const MAP_POPULATE: c_int = 0x8000;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;
}

/// Storage behind an [`ImageBytes`] buffer.
#[derive(Clone)]
enum Backing {
    /// Heap chunks; `Chunk`'s `align(64)` pins the base alignment.
    Heap(std::sync::Arc<[Chunk]>),
    /// A shared read-only file mapping; page (4096-byte) alignment
    /// subsumes the 64-byte section alignment.
    #[cfg(target_os = "linux")]
    Mapped(std::sync::Arc<Mapping>),
}

/// An immutable, reference-counted byte buffer whose base address is
/// 64-byte aligned.
///
/// This is the unit of sharing of the graph store: every [`GraphImage`] —
/// and every [`SortedWfst`]/[`Wfst`] view derived from one — holds a clone
/// of the same `ImageBytes`, so cloning is an atomic refcount bump and the
/// underlying bytes are freed exactly once, when the last view drops.
#[derive(Clone)]
pub struct ImageBytes {
    backing: Backing,
    len: usize,
}

impl ImageBytes {
    /// Copies `bytes` into a freshly allocated aligned buffer.
    ///
    /// This is the only copy on the load path — one `memcpy` of the whole
    /// container, never per-record work — and is skipped entirely when the
    /// buffer is produced by [`ImageBytes::read_file`] (the file is read
    /// straight into aligned storage).
    pub fn from_slice(bytes: &[u8]) -> Self {
        let n = bytes.len().div_ceil(SECTION_ALIGN);
        let mut chunks = vec![Chunk([0u8; SECTION_ALIGN]); n];
        for (dst, src) in chunks.iter_mut().zip(bytes.chunks(SECTION_ALIGN)) {
            dst.0[..src.len()].copy_from_slice(src);
        }
        Self {
            backing: Backing::Heap(chunks.into()),
            len: bytes.len(),
        }
    }

    /// Makes a file's contents addressable in a new aligned buffer.
    ///
    /// On Linux this maps the file read-only (`MAP_POPULATE`d, shared with
    /// the page cache), so no bytes are copied at all; elsewhere — or if
    /// mapping fails — it falls back to reading into fresh heap storage.
    /// The mapped variant assumes the file is not truncated while any view
    /// of the buffer is alive (the usual contract of file-mapped model
    /// loaders); replace a deployed image by writing a new file and
    /// renaming it into place, never by rewriting it in place.
    ///
    /// # Errors
    ///
    /// Returns [`WfstError::Corrupt`] wrapping the underlying I/O failure.
    pub fn read_file(path: &Path) -> Result<Self> {
        use std::io::Read as _;
        let mut f =
            std::fs::File::open(path).map_err(|e| corrupt(format!("open {path:?}: {e}")))?;
        let len = f
            .metadata()
            .map_err(|e| corrupt(format!("stat {path:?}: {e}")))?
            .len();
        let len = usize::try_from(len).map_err(|_| corrupt("file exceeds address space"))?;
        #[cfg(target_os = "linux")]
        if let Some(mapped) = Self::map_file(&f, len) {
            return Ok(mapped);
        }
        let n = len.div_ceil(SECTION_ALIGN);
        let mut chunks = vec![Chunk([0u8; SECTION_ALIGN]); n];
        // View the chunk storage as plain bytes for the read. SAFETY: the
        // allocation holds `n * 64` initialized bytes and `u8` has no
        // invalid values.
        let storage = unsafe {
            std::slice::from_raw_parts_mut(chunks.as_mut_ptr().cast::<u8>(), n * SECTION_ALIGN)
        };
        f.read_exact(&mut storage[..len])
            .map_err(|e| corrupt(format!("read {path:?}: {e}")))?;
        Ok(Self {
            backing: Backing::Heap(chunks.into()),
            len,
        })
    }

    /// Maps `f` read-only into the address space; `None` falls back to the
    /// heap read (empty files cannot be mapped, and a constrained address
    /// space can refuse the mapping).
    #[cfg(target_os = "linux")]
    fn map_file(f: &std::fs::File, len: usize) -> Option<Self> {
        use std::os::unix::io::AsRawFd as _;
        if len == 0 {
            return None;
        }
        // SAFETY: a fresh anonymous address range of `len` bytes over an
        // fd we own; the result is checked before use.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE | sys::MAP_POPULATE,
                f.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::MAP_FAILED {
            return None;
        }
        let base = std::ptr::NonNull::new(ptr.cast::<u8>())?;
        Some(Self {
            backing: Backing::Mapped(std::sync::Arc::new(Mapping { base, bytes: len })),
            len,
        })
    }

    fn base(&self) -> *const u8 {
        match &self.backing {
            Backing::Heap(chunks) => chunks.as_ptr().cast(),
            #[cfg(target_os = "linux")]
            Backing::Mapped(m) => m.base.as_ptr(),
        }
    }

    /// The buffer contents.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        // SAFETY: both backings hold at least `len` initialized, immutable
        // bytes for as long as any clone is alive.
        unsafe { std::slice::from_raw_parts(self.base(), self.len) }
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of views (clones) currently sharing this buffer.
    pub fn ref_count(&self) -> usize {
        match &self.backing {
            Backing::Heap(chunks) => std::sync::Arc::strong_count(chunks),
            #[cfg(target_os = "linux")]
            Backing::Mapped(m) => std::sync::Arc::strong_count(m),
        }
    }
}

impl std::fmt::Debug for ImageBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ImageBytes")
            .field("len", &self.len)
            .field("ref_count", &self.ref_count())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Record: types that have a pinned little-endian wire format.
// ---------------------------------------------------------------------------

/// A fixed-size record whose `#[repr(C)]` in-memory layout equals its
/// little-endian wire format, so an aligned byte run can be viewed as
/// `&[Self]` on little-endian hosts.
pub(crate) trait Record: Copy + 'static {
    /// Wire size in bytes; always `size_of::<Self>()`.
    const BYTES: usize;

    /// Decodes one record from its wire bytes. This is the big-endian
    /// fallback path; on little-endian hosts it is exercised by tests that
    /// cross-check the zero-copy cast against an explicit decode.
    #[cfg_attr(target_endian = "little", allow(dead_code))]
    fn from_le(bytes: &[u8]) -> Self;
}

impl Record for StateEntry {
    const BYTES: usize = STATE_BYTES as usize;
    fn from_le(bytes: &[u8]) -> Self {
        // LINT-ALLOW: panic — callers slice exactly `BYTES` bytes.
        layout::unpack_state(u64::from_le_bytes(bytes.try_into().expect("8-byte record")))
    }
}

impl Record for Arc {
    const BYTES: usize = ARC_BYTES as usize;
    fn from_le(bytes: &[u8]) -> Self {
        layout::unpack_arc(u128::from_le_bytes(
            // LINT-ALLOW: panic — callers slice exactly `BYTES` bytes.
            bytes.try_into().expect("16-byte record"),
        ))
    }
}

impl Record for f32 {
    const BYTES: usize = 4;
    fn from_le(bytes: &[u8]) -> Self {
        // LINT-ALLOW: panic — callers slice exactly `BYTES` bytes.
        f32::from_le_bytes(bytes.try_into().expect("4-byte record"))
    }
}

impl Record for u32 {
    const BYTES: usize = 4;
    fn from_le(bytes: &[u8]) -> Self {
        // LINT-ALLOW: panic — callers slice exactly `BYTES` bytes.
        u32::from_le_bytes(bytes.try_into().expect("4-byte record"))
    }
}

impl Record for i64 {
    const BYTES: usize = 8;
    fn from_le(bytes: &[u8]) -> Self {
        // LINT-ALLOW: panic — callers slice exactly `BYTES` bytes.
        i64::from_le_bytes(bytes.try_into().expect("8-byte record"))
    }
}

// ---------------------------------------------------------------------------
// Section: owned Vec or zero-copy view into an ImageBytes buffer.
// ---------------------------------------------------------------------------

/// Storage behind one typed array of a transducer: a `Vec` owned by the
/// value (the authoring path), or a zero-copy view into a shared, validated
/// [`ImageBytes`] buffer (the image path). Derefs to `[T]`, so every
/// consumer is oblivious to which it holds.
pub(crate) enum Section<T: 'static> {
    /// Heap-allocated storage owned by this section.
    Owned(Vec<T>),
    /// Borrow-free view into `_buf`; `ptr`/`len` stay valid because the
    /// reference-counted buffer is immutable and kept alive by `_buf`.
    View {
        ptr: *const T,
        len: usize,
        _buf: ImageBytes,
    },
}

// SAFETY: a `View` is an immutable window into an `Arc`-shared, never-mutated
// buffer, so sharing or sending it is exactly as safe as `&[T]`/`Arc<[T]>`.
unsafe impl<T: Send + Sync> Send for Section<T> {}
unsafe impl<T: Send + Sync> Sync for Section<T> {}

impl<T> std::ops::Deref for Section<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        match self {
            Section::Owned(v) => v,
            // SAFETY: `ptr`/`len` were validated against the pinned
            // buffer at construction, and `_buf` keeps it alive.
            Section::View { ptr, len, .. } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
        }
    }
}

impl<T> From<Vec<T>> for Section<T> {
    fn from(v: Vec<T>) -> Self {
        Section::Owned(v)
    }
}

impl<T: Clone> Clone for Section<T> {
    fn clone(&self) -> Self {
        match self {
            Section::Owned(v) => Section::Owned(v.clone()),
            Section::View { ptr, len, _buf } => Section::View {
                ptr: *ptr,
                len: *len,
                _buf: _buf.clone(),
            },
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Section<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<T: serde::Serialize> serde::Serialize for Section<T> {
    fn to_json_value(&self) -> serde::json::Value {
        (**self).to_json_value()
    }
}

impl<T> serde::Deserialize for Section<T> {}

impl<T> Section<T> {
    /// Returns `true` for the zero-copy image-backed variant.
    pub(crate) fn is_view(&self) -> bool {
        matches!(self, Section::View { .. })
    }
}

impl<T: Record> Section<T> {
    /// Builds a typed view over `count` records starting at byte `offset`
    /// of `buf`. Zero-copy on little-endian hosts; decoded into an owned
    /// `Vec` on big-endian ones.
    ///
    /// # Errors
    ///
    /// Returns [`WfstError::Corrupt`] when the described range is out of
    /// bounds or misaligned for `T`.
    pub(crate) fn view(buf: &ImageBytes, offset: usize, count: usize) -> Result<Self> {
        const { assert!(Self::SIZE_MATCHES) };
        let byte_len = count
            .checked_mul(T::BYTES)
            .ok_or_else(|| corrupt("section size overflows"))?;
        let end = offset
            .checked_add(byte_len)
            .ok_or_else(|| corrupt("section end overflows"))?;
        if end > buf.len() {
            return Err(corrupt(format!(
                "section [{offset}, {end}) exceeds image of {} bytes",
                buf.len()
            )));
        }
        if !offset.is_multiple_of(std::mem::align_of::<T>()) {
            return Err(corrupt(format!("section offset {offset} is misaligned")));
        }
        #[cfg(target_endian = "little")]
        {
            let ptr = buf.as_bytes()[offset..end].as_ptr().cast::<T>();
            Ok(Section::View {
                ptr,
                len: count,
                _buf: buf.clone(),
            })
        }
        #[cfg(target_endian = "big")]
        {
            let b = &buf.as_bytes()[offset..end];
            Ok(Section::Owned(
                (0..count)
                    .map(|i| T::from_le(&b[i * T::BYTES..(i + 1) * T::BYTES]))
                    .collect(),
            ))
        }
    }

    /// The cast above is only meaningful while the wire size equals the
    /// in-memory size; pinned at compile time.
    const SIZE_MATCHES: bool = T::BYTES == std::mem::size_of::<T>();
}

// ---------------------------------------------------------------------------
// Writer: the authoring side.
// ---------------------------------------------------------------------------

/// Serializes the full degree-sorted transducer into a v2 image.
///
/// Layout (all integers little-endian):
///
/// ```text
/// offset  size  field
///      0     4  magic  "WFST"
///      4     1  version (2)
///      5     3  reserved (zero)
///      8     8  num_states
///     16     8  num_arcs
///     24     4  start state (sorted numbering)
///     28     4  threshold N (comparator count)
///     32     4  num_phones
///     36     4  num_words
///     40     4  section count (7)
///     44     4  reserved (zero)
///     48   168  section table: 7 x { kind u64, offset u64, bytes u64 }
///    256        sections, each 64-byte aligned, zero padding between:
///               states      num_states x 8   (layout::pack_state)
///               arcs        num_arcs   x 16  (layout::pack_arc)
///               finals      num_states x 4   (f32; +inf = not final)
///               boundaries  N x 4            (DirectIndexUnit registers)
///               offsets     N x 8            (DirectIndexUnit registers)
///               old_to_new  num_states x 4
///               new_to_old  num_states x 4
/// ```
pub fn to_bytes(sorted: &SortedWfst) -> Vec<u8> {
    let w = sorted.wfst();
    let unit = sorted.unit();
    let ns = w.num_states();
    let na = w.num_arcs();
    let n = sorted.threshold();

    let sizes = [
        ns * STATE_BYTES as usize,
        na * ARC_BYTES as usize,
        ns * 4,
        n * 4,
        n * 8,
        ns * 4,
        ns * 4,
    ];
    let mut offsets = [0usize; NUM_SECTIONS];
    let mut cur = FIRST_SECTION_OFFSET;
    for (off, size) in offsets.iter_mut().zip(sizes) {
        *off = cur;
        cur = align64(cur + size);
    }
    let total = offsets[NUM_SECTIONS - 1] + sizes[NUM_SECTIONS - 1];

    let mut out = vec![0u8; total];
    out[0..4].copy_from_slice(MAGIC);
    out[4] = STORE_VERSION;
    out[8..16].copy_from_slice(&(ns as u64).to_le_bytes());
    out[16..24].copy_from_slice(&(na as u64).to_le_bytes());
    out[24..28].copy_from_slice(&w.start().0.to_le_bytes());
    out[28..32].copy_from_slice(&(n as u32).to_le_bytes());
    out[32..36].copy_from_slice(&w.num_phones().to_le_bytes());
    out[36..40].copy_from_slice(&w.num_words().to_le_bytes());
    out[40..44].copy_from_slice(&(NUM_SECTIONS as u32).to_le_bytes());

    for (i, (kind, (off, size))) in KINDS.iter().zip(offsets.iter().zip(sizes)).enumerate() {
        let e = HEADER_BYTES + i * TABLE_ENTRY_BYTES;
        out[e..e + 8].copy_from_slice(&kind.to_le_bytes());
        out[e + 8..e + 16].copy_from_slice(&(*off as u64).to_le_bytes());
        out[e + 16..e + 24].copy_from_slice(&(size as u64).to_le_bytes());
    }

    for (i, entry) in w.state_entries().iter().enumerate() {
        let o = offsets[0] + i * STATE_BYTES as usize;
        out[o..o + 8].copy_from_slice(&layout::pack_state(*entry).to_le_bytes());
    }
    for (i, arc) in w.arc_entries().iter().enumerate() {
        let o = offsets[1] + i * ARC_BYTES as usize;
        out[o..o + 16].copy_from_slice(&layout::pack_arc(*arc).to_le_bytes());
    }
    for (i, cost) in w.final_costs_raw().iter().enumerate() {
        let o = offsets[2] + i * 4;
        out[o..o + 4].copy_from_slice(&cost.to_le_bytes());
    }
    for g in 0..n {
        let o = offsets[3] + g * 4;
        out[o..o + 4].copy_from_slice(&unit.group_boundary(g).to_le_bytes());
        let o = offsets[4] + g * 8;
        out[o..o + 8].copy_from_slice(&unit.group_offset(g).to_le_bytes());
    }
    for (i, v) in sorted.old_to_new_raw().iter().enumerate() {
        let o = offsets[5] + i * 4;
        out[o..o + 4].copy_from_slice(&v.to_le_bytes());
    }
    for (i, v) in sorted.new_to_old_raw().iter().enumerate() {
        let o = offsets[6] + i * 4;
        out[o..o + 4].copy_from_slice(&v.to_le_bytes());
    }
    out
}

/// Writes the v2 image of `sorted` to `path`.
///
/// # Errors
///
/// Returns [`WfstError::Corrupt`] wrapping the underlying I/O failure.
pub fn save(sorted: &SortedWfst, path: &Path) -> Result<()> {
    use std::io::Write as _;
    let bytes = to_bytes(sorted);
    let mut f =
        std::fs::File::create(path).map_err(|e| corrupt(format!("create {path:?}: {e}")))?;
    f.write_all(&bytes)
        .map_err(|e| corrupt(format!("write {path:?}: {e}")))
}

// ---------------------------------------------------------------------------
// Reader: GraphImage.
// ---------------------------------------------------------------------------

fn rd_u32(b: &[u8], off: usize) -> Result<u32> {
    let s = b
        .get(off..off + 4)
        .ok_or_else(|| corrupt("truncated header"))?;
    // LINT-ALLOW: panic — the `get` above proves the slice is 4 bytes.
    Ok(u32::from_le_bytes(s.try_into().expect("4-byte slice")))
}

fn rd_u64(b: &[u8], off: usize) -> Result<u64> {
    let s = b
        .get(off..off + 8)
        .ok_or_else(|| corrupt("truncated header"))?;
    // LINT-ALLOW: panic — the `get` above proves the slice is 8 bytes.
    Ok(u64::from_le_bytes(s.try_into().expect("8-byte slice")))
}

fn rd_count(b: &[u8], off: usize, what: &str) -> Result<usize> {
    usize::try_from(rd_u64(b, off)?).map_err(|_| corrupt(format!("{what} exceeds address space")))
}

/// Returns the container version of `bytes` when the magic matches.
pub(crate) fn image_version(bytes: &[u8]) -> Option<u8> {
    if bytes.len() >= 5 && &bytes[..4] == MAGIC {
        Some(bytes[4])
    } else {
        None
    }
}

/// A validated, immutable, shareable graph image.
///
/// Construction parses and validates the container exactly once — magic,
/// version, section-table bounds/alignment/non-overlap, every structural
/// invariant of [`Wfst::from_parts`], agreement of the [`DirectIndexUnit`]
/// registers with the state table, and that the renumbering maps are
/// inverse permutations. Corrupt input of any shape yields a typed
/// [`WfstError`]; construction never panics.
///
/// After validation, [`GraphImage::sorted`] hands out a [`SortedWfst`]
/// whose arrays are typed views straight over the shared buffer: cloning
/// it (or the [`Wfst`] inside) bumps the buffer refcount instead of
/// copying records, and the bytes are freed when the last view drops.
#[derive(Debug, Clone)]
pub struct GraphImage {
    bytes: ImageBytes,
    sorted: SortedWfst,
}

impl GraphImage {
    /// Validates an aligned buffer as a v2 image. This is the zero-copy
    /// entry point: no bytes are moved, only checked.
    ///
    /// # Errors
    ///
    /// Returns a typed [`WfstError`] describing the first violation found.
    pub fn from_image_bytes(bytes: ImageBytes) -> Result<Self> {
        let b = bytes.as_bytes();
        if b.len() < HEADER_BYTES {
            return Err(corrupt(format!(
                "image of {} bytes is shorter than the {HEADER_BYTES}-byte header",
                b.len()
            )));
        }
        if &b[..4] != MAGIC {
            return Err(corrupt("bad magic"));
        }
        if b[4] != STORE_VERSION {
            return Err(corrupt(format!("unsupported version {}", b[4])));
        }
        let num_states = rd_count(b, 8, "state count")?;
        let num_arcs = rd_count(b, 16, "arc count")?;
        let start = StateId(rd_u32(b, 24)?);
        let threshold = rd_u32(b, 28)? as usize;
        let num_phones = rd_u32(b, 32)?;
        let num_words = rd_u32(b, 36)?;
        let section_count = rd_u32(b, 40)? as usize;
        if section_count != NUM_SECTIONS {
            return Err(corrupt(format!(
                "expected {NUM_SECTIONS} sections, header claims {section_count}"
            )));
        }
        if threshold == 0 || threshold > u16::MAX as usize {
            return Err(corrupt(format!("threshold {threshold} out of range")));
        }

        let expected_sizes = [
            num_states
                .checked_mul(STATE_BYTES as usize)
                .ok_or_else(|| corrupt("state section overflows"))?,
            num_arcs
                .checked_mul(ARC_BYTES as usize)
                .ok_or_else(|| corrupt("arc section overflows"))?,
            num_states * 4,
            threshold * 4,
            threshold * 8,
            num_states * 4,
            num_states * 4,
        ];
        let mut offsets = [0usize; NUM_SECTIONS];
        let mut prev_end = FIRST_SECTION_OFFSET;
        for (i, (kind, size)) in KINDS.iter().zip(expected_sizes).enumerate() {
            let e = HEADER_BYTES + i * TABLE_ENTRY_BYTES;
            let got_kind = rd_u64(b, e)?;
            if got_kind != *kind {
                return Err(corrupt(format!(
                    "section {i}: expected kind {} ({kind}), found {got_kind}",
                    kind_name(*kind)
                )));
            }
            let offset = rd_count(b, e + 8, "section offset")?;
            let len = rd_count(b, e + 16, "section length")?;
            if len != size {
                return Err(corrupt(format!(
                    "section {}: {len} bytes, expected {size}",
                    kind_name(*kind)
                )));
            }
            if !offset.is_multiple_of(SECTION_ALIGN) {
                return Err(corrupt(format!(
                    "section {}: offset {offset} not 64-byte aligned",
                    kind_name(*kind)
                )));
            }
            if offset < prev_end {
                return Err(corrupt(format!(
                    "section {}: offset {offset} overlaps preceding bytes ending at {prev_end}",
                    kind_name(*kind)
                )));
            }
            let end = offset
                .checked_add(len)
                .ok_or_else(|| corrupt("section end overflows"))?;
            if end > b.len() {
                return Err(corrupt(format!(
                    "section {}: [{offset}, {end}) exceeds image of {} bytes",
                    kind_name(*kind),
                    b.len()
                )));
            }
            offsets[i] = offset;
            prev_end = end;
        }

        let states = Section::<StateEntry>::view(&bytes, offsets[0], num_states)?;
        let arcs = Section::<Arc>::view(&bytes, offsets[1], num_arcs)?;
        let finals = Section::<f32>::view(&bytes, offsets[2], num_states)?;
        let boundaries = Section::<u32>::view(&bytes, offsets[3], threshold)?;
        let unit_offsets = Section::<i64>::view(&bytes, offsets[4], threshold)?;
        let old_to_new = Section::<u32>::view(&bytes, offsets[5], num_states)?;
        let new_to_old = Section::<u32>::view(&bytes, offsets[6], num_states)?;

        // Structural invariants — the exact checks of `Wfst::from_parts`,
        // run once over the views.
        let wfst = Wfst::from_sections(states, arcs, start, finals)?;
        if wfst.num_phones() != num_phones || wfst.num_words() != num_words {
            return Err(corrupt(format!(
                "label spaces ({}, {}) disagree with header ({num_phones}, {num_words})",
                wfst.num_phones(),
                wfst.num_words()
            )));
        }

        // The DirectIndexUnit registers must agree with the state table
        // over the whole sorted region, else direct arc indexing would
        // silently read the wrong arcs.
        let mut prev_boundary = 0u32;
        for (g, (&boundary, &unit_offset)) in boundaries.iter().zip(unit_offsets.iter()).enumerate()
        {
            if boundary < prev_boundary || boundary as usize > wfst.num_states() {
                return Err(corrupt(format!(
                    "boundary register {g} ({boundary}) is not a cumulative state count"
                )));
            }
            let degree = g + 1;
            for x in prev_boundary..boundary {
                let entry = wfst.state(StateId(x));
                let computed = i64::from(x) * degree as i64 + unit_offset;
                let actual_first = entry.first_arc;
                if computed != i64::from(actual_first.0) || entry.num_arcs() != degree {
                    return Err(WfstError::LayoutMismatch {
                        state: StateId(x),
                        computed_first: ArcId(computed.clamp(0, i64::from(u32::MAX)) as u32),
                        computed_degree: degree,
                        actual_first,
                        actual_degree: entry.num_arcs(),
                    });
                }
            }
            prev_boundary = boundary;
        }

        // The renumbering maps must be inverse permutations of each other.
        for (old, &new) in old_to_new.iter().enumerate() {
            if new as usize >= wfst.num_states() || new_to_old[new as usize] as usize != old {
                return Err(corrupt(format!(
                    "state maps are not inverse permutations at old state {old}"
                )));
            }
        }

        let unit = DirectIndexUnit::from_registers(boundaries.to_vec(), unit_offsets.to_vec());
        let sorted = SortedWfst::from_image_parts(wfst, unit, old_to_new, new_to_old, threshold);
        Ok(Self { bytes, sorted })
    }

    /// Copies `bytes` into an aligned buffer and validates it.
    ///
    /// # Errors
    ///
    /// Returns a typed [`WfstError`] describing the first violation found.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        Self::from_image_bytes(ImageBytes::from_slice(bytes))
    }

    /// Reads `path` into an aligned buffer and validates it.
    ///
    /// # Errors
    ///
    /// Returns a typed [`WfstError`] for I/O failures or corrupt content.
    pub fn load(path: &Path) -> Result<Self> {
        Self::from_image_bytes(ImageBytes::read_file(path)?)
    }

    /// The validated degree-sorted transducer, viewing the image in place.
    #[inline]
    pub fn sorted(&self) -> &SortedWfst {
        &self.sorted
    }

    /// The transducer itself (sorted numbering), viewing the image in place.
    #[inline]
    pub fn wfst(&self) -> &Wfst {
        self.sorted.wfst()
    }

    /// An owned handle on the sorted transducer that shares this image's
    /// buffer: a refcount bump plus the (tiny, `N`-entry) unit registers —
    /// never a copy of the state/arc/final/map arrays.
    pub fn to_sorted(&self) -> SortedWfst {
        self.sorted.clone()
    }

    /// Bytes resident for this image: the whole aligned buffer, shared by
    /// every view cloned out of it.
    #[inline]
    pub fn resident_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// The raw container bytes.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        self.bytes.as_bytes()
    }

    /// Number of views currently sharing the underlying buffer (including
    /// this image and the sections inside it).
    pub fn buffer_ref_count(&self) -> usize {
        self.bytes.ref_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::WfstBuilder;
    use crate::synth::{SynthConfig, SynthWfst};
    use crate::{PhoneId, WordId};

    fn sample_sorted(states: usize) -> SortedWfst {
        let w = SynthWfst::generate(&SynthConfig::with_states(states)).unwrap();
        SortedWfst::new(&w).unwrap()
    }

    fn assert_same_graph(a: &Wfst, b: &Wfst) {
        assert_eq!(a.num_states(), b.num_states());
        assert_eq!(a.num_arcs(), b.num_arcs());
        assert_eq!(a.start(), b.start());
        assert_eq!(a.state_entries(), b.state_entries());
        for (x, y) in a.arc_entries().iter().zip(b.arc_entries()) {
            assert_eq!(x.dest, y.dest);
            assert_eq!(x.ilabel, y.ilabel);
            assert_eq!(x.olabel, y.olabel);
            assert_eq!(x.weight.to_bits(), y.weight.to_bits());
        }
        assert_eq!(a.num_phones(), b.num_phones());
        assert_eq!(a.num_words(), b.num_words());
        let fa: Vec<_> = a.final_states().collect();
        let fb: Vec<_> = b.final_states().collect();
        assert_eq!(fa, fb);
    }

    #[test]
    fn image_roundtrips_the_full_sorted_wfst() {
        let sorted = sample_sorted(700);
        let image = GraphImage::from_bytes(&to_bytes(&sorted)).unwrap();
        assert_same_graph(sorted.wfst(), image.wfst());
        assert_eq!(sorted.unit(), image.sorted().unit());
        assert_eq!(sorted.threshold(), image.sorted().threshold());
        assert_eq!(sorted.old_to_new_raw(), image.sorted().old_to_new_raw());
        assert_eq!(sorted.new_to_old_raw(), image.sorted().new_to_old_raw());
    }

    #[test]
    fn loaded_views_point_into_the_buffer() {
        let sorted = sample_sorted(300);
        let image = GraphImage::from_bytes(&to_bytes(&sorted)).unwrap();
        let buf = image.as_bytes().as_ptr_range();
        let arcs = image.wfst().arc_entries();
        let states = image.wfst().state_entries();
        assert!(image.wfst().is_image_backed());
        assert!(buf.contains(&arcs.as_ptr().cast::<u8>()));
        assert!(buf.contains(&states.as_ptr().cast::<u8>()));
    }

    #[test]
    fn views_match_an_explicit_record_decode() {
        // Cross-checks the repr(C) cast against a field-by-field decode of
        // the wire bytes, pinning the layout equivalence the store relies on.
        let sorted = sample_sorted(200);
        let bytes = to_bytes(&sorted);
        let image = GraphImage::from_bytes(&bytes).unwrap();
        let w = image.wfst();
        let arc_off =
            usize::try_from(rd_u64(&bytes, HEADER_BYTES + TABLE_ENTRY_BYTES + 8).unwrap()).unwrap();
        for (i, arc) in w.arc_entries().iter().enumerate() {
            let raw = &bytes[arc_off + i * 16..arc_off + (i + 1) * 16];
            let decoded = <Arc as Record>::from_le(raw);
            assert_eq!(arc.dest, decoded.dest);
            assert_eq!(arc.ilabel, decoded.ilabel);
            assert_eq!(arc.olabel, decoded.olabel);
            assert_eq!(arc.weight.to_bits(), decoded.weight.to_bits());
        }
        let state_off = usize::try_from(rd_u64(&bytes, HEADER_BYTES + 8).unwrap()).unwrap();
        for (i, entry) in w.state_entries().iter().enumerate() {
            let raw = &bytes[state_off + i * 8..state_off + (i + 1) * 8];
            assert_eq!(*entry, <StateEntry as Record>::from_le(raw));
        }
    }

    #[test]
    fn clones_share_one_buffer_and_free_on_last_drop() {
        let sorted = sample_sorted(150);
        let image = GraphImage::from_bytes(&to_bytes(&sorted)).unwrap();
        let before = image.buffer_ref_count();
        let view = image.to_sorted();
        assert!(image.buffer_ref_count() > before);
        drop(view);
        assert_eq!(image.buffer_ref_count(), before);
    }

    #[test]
    fn direct_index_still_agrees_after_load() {
        let sorted = sample_sorted(400);
        let image = GraphImage::from_bytes(&to_bytes(&sorted)).unwrap();
        let s = image.sorted();
        for x in 0..s.unit().sorted_region_end() {
            let (arc, degree) = s.unit().direct_arc_index(StateId(x)).unwrap();
            let entry = s.wfst().state(StateId(x));
            assert_eq!(arc, entry.first_arc);
            assert_eq!(degree as usize, entry.num_arcs());
        }
    }

    #[test]
    fn file_roundtrip_reads_into_aligned_buffer() {
        let sorted = sample_sorted(250);
        let dir = std::env::temp_dir().join("asr_wfst_store_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.wfst2");
        save(&sorted, &path).unwrap();
        let image = GraphImage::load(&path).unwrap();
        assert_same_graph(sorted.wfst(), image.wfst());
        assert_eq!(image.as_bytes().as_ptr() as usize % SECTION_ALIGN, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_version_and_truncation_are_typed_errors() {
        let sorted = sample_sorted(50);
        let bytes = to_bytes(&sorted);
        assert!(matches!(
            GraphImage::from_bytes(b"NOPE").unwrap_err(),
            WfstError::Corrupt(_)
        ));
        let mut v = bytes.clone();
        v[4] = 1;
        let err = GraphImage::from_bytes(&v).unwrap_err();
        assert!(err.to_string().contains("version"));
        let err = GraphImage::from_bytes(&bytes[..bytes.len() - 1]).unwrap_err();
        assert!(matches!(err, WfstError::Corrupt(_)));
    }

    #[test]
    fn mismatched_unit_register_is_a_layout_mismatch() {
        let sorted = sample_sorted(80);
        let mut bytes = to_bytes(&sorted);
        // Nudge the first offset register; the first sorted state's direct
        // index no longer matches its stored first_arc.
        let off_sec =
            usize::try_from(rd_u64(&bytes, HEADER_BYTES + 4 * TABLE_ENTRY_BYTES + 8).unwrap())
                .unwrap();
        let old = i64::from_le_bytes(bytes[off_sec..off_sec + 8].try_into().unwrap());
        bytes[off_sec..off_sec + 8].copy_from_slice(&(old + 1).to_le_bytes());
        let err = GraphImage::from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, WfstError::LayoutMismatch { .. }), "{err}");
    }

    #[test]
    fn builder_graphs_survive_the_store_exactly() {
        let mut b = WfstBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        let s2 = b.add_state();
        b.set_start(s0);
        b.add_arc(s0, s1, PhoneId(1), WordId(1), 1.0);
        b.add_arc(s1, s2, PhoneId(2), WordId::NONE, 2.0);
        b.add_epsilon_arc(s0, s2, 0.5);
        b.set_final(s2, 0.25);
        let sorted = SortedWfst::new(&b.build().unwrap()).unwrap();
        let image = GraphImage::from_bytes(&to_bytes(&sorted)).unwrap();
        assert_same_graph(sorted.wfst(), image.wfst());
        for old in 0..3u32 {
            assert_eq!(
                sorted.map_state(StateId(old)),
                image.sorted().map_state(StateId(old))
            );
        }
    }
}
