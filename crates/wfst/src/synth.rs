//! Deterministic synthetic WFST generation with Kaldi-like statistics.
//!
//! The paper evaluates on Kaldi's 125k-word English WFST: 13.2M states,
//! 34.5M arcs (mean out-degree ~2.6), out-degrees from 1 to 770 with more
//! than 95% of static states at 16 or fewer arcs and ~97% of dynamically
//! visited states at 15 or fewer (Figure 7), and 11.5% epsilon arcs. That
//! model is not redistributable, so this module generates transducers that
//! reproduce those *published statistics* deterministically from a seed:
//! the accelerator's memory behaviour is driven by graph shape and layout,
//! not by linguistic content (see DESIGN.md, substitution log).
//!
//! Degrees are drawn from a two-component power law: a "small" component
//! over `1..=small_max` holding most of the mass and a heavy tail up to
//! `max_degree`. Destinations mix local transitions (decoding graphs are
//! built from composed word/phone chains, so most arcs stay in a
//! neighbourhood) with uniform long-range jumps; the blend reproduces the
//! partial miss ratios of Figure 4 — only a small, sparsely distributed
//! subset of the model is touched per frame (Section IV-A).

use crate::{Arc, ArcId, PhoneId, Result, StateEntry, StateId, Wfst, WordId};
use rand::distributions::Distribution;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Configuration for [`SynthWfst::generate`].
///
/// The defaults reproduce the published Kaldi statistics at a laptop-friendly
/// scale (100k states); [`SynthConfig::kaldi_scale`] switches to the paper's
/// full 13.2M-state size for static-layout experiments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthConfig {
    /// Number of states to generate.
    pub num_states: usize,
    /// Size of the phone label space (Kaldi uses thousands of senone-mapped
    /// transition ids; 2000 keeps the acoustic table realistic but small).
    pub num_phones: u32,
    /// Vocabulary size (the paper's model: 125k words).
    pub vocab_size: u32,
    /// Target fraction of epsilon arcs (paper: 0.115).
    pub epsilon_fraction: f64,
    /// Fraction of non-epsilon arcs carrying a word output label.
    pub word_fraction: f64,
    /// Power-law exponent of the small-degree component (`1..=small_max`).
    pub small_alpha: f64,
    /// Largest degree of the small component (paper: 15-16).
    pub small_max: usize,
    /// Probability that a state belongs to the heavy tail (> small_max).
    pub tail_prob: f64,
    /// Power-law exponent of the tail component.
    pub tail_alpha: f64,
    /// Largest out-degree (paper: 770).
    pub max_degree: usize,
    /// Fraction of states that accept.
    pub final_fraction: f64,
    /// Arc weights are drawn uniformly from this cost range.
    pub weight_range: (f32, f32),
    /// Probability that an arc's destination is *local* (within
    /// [`SynthConfig::locality_window`] of the source) rather than uniform
    /// over the whole state space. Real decoding graphs are built from
    /// composed word/phone chains, so most transitions stay within a
    /// neighbourhood; this is what gives the State and Arc caches their
    /// partial (30-40%, Figure 4) rather than total miss ratios.
    pub locality: f64,
    /// Half-width of the local-destination window, in states.
    pub locality_window: usize,
    /// RNG seed; equal seeds give bit-identical transducers.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self {
            num_states: 100_000,
            num_phones: 2_000,
            vocab_size: 125_000,
            epsilon_fraction: 0.115,
            word_fraction: 0.15,
            small_alpha: 2.2,
            small_max: 15,
            tail_prob: 0.035,
            tail_alpha: 2.6,
            max_degree: 770,
            final_fraction: 0.002,
            weight_range: (0.05, 8.0),
            locality: 0.85,
            locality_window: 512,
            seed: 0x5EED_CAFE,
        }
    }
}

impl SynthConfig {
    /// Scaled configuration with `num_states` states, other statistics
    /// unchanged.
    pub fn with_states(num_states: usize) -> Self {
        Self {
            num_states,
            ..Self::default()
        }
    }

    /// The paper's full-size model: 13.2M states (~34.5M arcs, ~618 MB
    /// packed). Only static experiments need this; it allocates ~700 MB.
    pub fn kaldi_scale() -> Self {
        Self {
            num_states: 13_200_000,
            ..Self::default()
        }
    }

    /// Replaces the seed, keeping all statistics.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Sampler for the two-component power-law out-degree distribution.
#[derive(Debug, Clone)]
pub struct DegreeDistribution {
    small_cdf: Vec<f64>,
    tail_cdf: Vec<f64>,
    small_max: usize,
    tail_prob: f64,
}

impl DegreeDistribution {
    /// Builds the sampler from a configuration.
    pub fn new(cfg: &SynthConfig) -> Self {
        let small_cdf = power_law_cdf(1, cfg.small_max, cfg.small_alpha);
        let tail_lo = cfg.small_max + 1;
        let tail_cdf = if tail_lo <= cfg.max_degree {
            power_law_cdf(tail_lo, cfg.max_degree, cfg.tail_alpha)
        } else {
            Vec::new()
        };
        let tail_prob = if tail_cdf.is_empty() {
            0.0
        } else {
            cfg.tail_prob
        };
        Self {
            small_cdf,
            tail_cdf,
            small_max: cfg.small_max,
            tail_prob,
        }
    }

    /// Expected out-degree under this distribution.
    pub fn mean(&self) -> f64 {
        let small_mean = cdf_mean(&self.small_cdf, 1);
        let tail_mean = if self.tail_cdf.is_empty() {
            0.0
        } else {
            cdf_mean(&self.tail_cdf, self.small_max + 1)
        };
        (1.0 - self.tail_prob) * small_mean + self.tail_prob * tail_mean
    }
}

fn power_law_cdf(lo: usize, hi: usize, alpha: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(hi - lo + 1);
    let mut acc = 0.0;
    for d in lo..=hi {
        acc += (d as f64).powf(-alpha);
        cdf.push(acc);
    }
    let total = acc;
    for v in &mut cdf {
        *v /= total;
    }
    cdf
}

fn cdf_mean(cdf: &[f64], lo: usize) -> f64 {
    let mut mean = 0.0;
    let mut prev = 0.0;
    for (i, &c) in cdf.iter().enumerate() {
        mean += (lo + i) as f64 * (c - prev);
        prev = c;
    }
    mean
}

impl Distribution<usize> for DegreeDistribution {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let (cdf, lo) = if !self.tail_cdf.is_empty() && rng.gen_bool(self.tail_prob) {
            (&self.tail_cdf, self.small_max + 1)
        } else {
            (&self.small_cdf, 1)
        };
        let u: f64 = rng.gen();
        lo + cdf.partition_point(|&c| c < u)
    }
}

/// Generator entry point; see [`SynthWfst::generate`].
///
/// # Example
///
/// ```
/// use asr_wfst::synth::{SynthConfig, SynthWfst};
///
/// let wfst = SynthWfst::generate(&SynthConfig::with_states(10_000))?;
/// assert_eq!(wfst.num_states(), 10_000);
/// // Kaldi-like statistics: ~2.6-3 arcs/state, ~11.5% epsilon arcs.
/// let mean = wfst.num_arcs() as f64 / wfst.num_states() as f64;
/// assert!((2.0..3.6).contains(&mean));
/// assert!((wfst.epsilon_fraction() - 0.115).abs() < 0.04);
/// # Ok::<(), asr_wfst::WfstError>(())
/// ```
#[derive(Debug)]
pub struct SynthWfst;

impl SynthWfst {
    /// Generates a transducer matching `cfg`'s statistics.
    ///
    /// The generation is fully deterministic in `cfg.seed`. Every state gets
    /// at least one outgoing arc and at least one emitting arc (so the beam
    /// search never strands a token on epsilon-only states); epsilon arcs
    /// are drawn among the remaining arcs at a rate that hits the configured
    /// overall epsilon fraction in expectation.
    ///
    /// # Errors
    ///
    /// Propagates validation errors; with a well-formed configuration
    /// generation always succeeds.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.num_states == 0`.
    pub fn generate(cfg: &SynthConfig) -> Result<Wfst> {
        assert!(cfg.num_states > 0, "cannot generate an empty transducer");
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let dist = DegreeDistribution::new(cfg);

        // Pass 1: draw out-degrees so we know how many arcs are "eligible"
        // to be epsilon (all but the first arc of each state).
        let degrees: Vec<u32> = (0..cfg.num_states)
            .map(|_| dist.sample(&mut rng) as u32)
            .collect();
        let total_arcs: u64 = degrees.iter().map(|&d| d as u64).sum();
        let eligible = total_arcs.saturating_sub(cfg.num_states as u64);
        let eps_prob = if eligible == 0 {
            0.0
        } else {
            (cfg.epsilon_fraction * total_arcs as f64 / eligible as f64).min(1.0)
        };

        // Pass 2: materialize states and arcs directly in packed order.
        let n = cfg.num_states;
        let mut states = Vec::with_capacity(n);
        let mut arcs: Vec<Arc> = Vec::with_capacity(total_arcs as usize);
        let mut final_costs = Vec::with_capacity(n);
        let (w_lo, w_hi) = cfg.weight_range;
        for (idx, &d) in degrees.iter().enumerate() {
            let first_arc = ArcId::from_index(arcs.len());
            let mut emitting: Vec<Arc> = Vec::with_capacity(d as usize);
            let mut epsilon: Vec<Arc> = Vec::new();
            for k in 0..d {
                let dest = if cfg.locality > 0.0 && rng.gen_bool(cfg.locality) {
                    // Local transition: stay within the neighbourhood.
                    let w = cfg.locality_window.max(1) as i64;
                    let offset = rng.gen_range(-w..=w);
                    let d = (idx as i64 + offset).rem_euclid(n as i64);
                    StateId(d as u32)
                } else {
                    StateId(rng.gen_range(0..n as u32))
                };
                let weight = rng.gen_range(w_lo..w_hi);
                let is_eps = k > 0 && rng.gen_bool(eps_prob);
                if is_eps {
                    epsilon.push(Arc {
                        dest,
                        weight,
                        ilabel: PhoneId::EPSILON,
                        olabel: WordId::NONE,
                    });
                } else {
                    let ilabel = PhoneId(rng.gen_range(1..=cfg.num_phones));
                    let olabel = if rng.gen_bool(cfg.word_fraction) {
                        WordId(rng.gen_range(1..=cfg.vocab_size))
                    } else {
                        WordId::NONE
                    };
                    emitting.push(Arc {
                        dest,
                        weight,
                        ilabel,
                        olabel,
                    });
                }
            }
            let entry = StateEntry {
                first_arc,
                num_emitting: emitting.len() as u16,
                num_epsilon: epsilon.len() as u16,
            };
            arcs.extend_from_slice(&emitting);
            arcs.extend_from_slice(&epsilon);
            states.push(entry);
            final_costs.push(if rng.gen_bool(cfg.final_fraction) || idx == n - 1 {
                rng.gen_range(0.0..1.0f32)
            } else {
                f32::INFINITY
            });
        }

        Wfst::from_parts(states, arcs, StateId(0), final_costs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Wfst {
        SynthWfst::generate(&SynthConfig::with_states(5_000)).unwrap()
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SynthWfst::generate(&SynthConfig::with_states(2_000)).unwrap();
        let b = SynthWfst::generate(&SynthConfig::with_states(2_000)).unwrap();
        assert_eq!(a.num_arcs(), b.num_arcs());
        assert_eq!(a.state_entries(), b.state_entries());
        // Spot-check arc equality (full comparison is O(arcs), cheap here).
        for (x, y) in a.arc_entries().iter().zip(b.arc_entries()) {
            assert_eq!(x.dest, y.dest);
            assert_eq!(x.weight.to_bits(), y.weight.to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = SynthWfst::generate(&SynthConfig::with_states(2_000)).unwrap();
        let b = SynthWfst::generate(&SynthConfig::with_states(2_000).with_seed(99)).unwrap();
        assert_ne!(
            a.arc_entries()[0].weight.to_bits(),
            b.arc_entries()[0].weight.to_bits()
        );
    }

    #[test]
    fn mean_degree_matches_kaldi_ratio() {
        // Kaldi: 34.5M arcs / 13.2M states ~= 2.6 arcs per state.
        let w = small();
        let mean = w.num_arcs() as f64 / w.num_states() as f64;
        assert!(
            (2.0..3.6).contains(&mean),
            "mean out-degree {mean:.2} outside Kaldi-like band"
        );
    }

    #[test]
    fn epsilon_fraction_near_target() {
        let w = small();
        let f = w.epsilon_fraction();
        assert!(
            (f - 0.115).abs() < 0.03,
            "epsilon fraction {f:.3}, expected ~0.115"
        );
    }

    #[test]
    fn most_states_have_at_most_sixteen_arcs() {
        // Paper: >95% of static states directly addressable with N = 16.
        let w = small();
        let small_states = w
            .state_entries()
            .iter()
            .filter(|s| (1..=16).contains(&s.num_arcs()))
            .count();
        let frac = small_states as f64 / w.num_states() as f64;
        assert!(frac > 0.95, "only {frac:.3} of states have <=16 arcs");
    }

    #[test]
    fn tail_reaches_high_degrees() {
        let cfg = SynthConfig::with_states(50_000);
        let w = SynthWfst::generate(&cfg).unwrap();
        let max = w
            .state_entries()
            .iter()
            .map(StateEntry::num_arcs)
            .max()
            .unwrap();
        assert!(max > 16, "heavy tail missing (max degree {max})");
        assert!(max <= cfg.max_degree);
    }

    #[test]
    fn every_state_has_an_emitting_arc() {
        let w = small();
        assert!(w.state_entries().iter().all(|s| s.num_emitting >= 1));
    }

    #[test]
    fn degree_distribution_mean_is_kaldi_like() {
        let dist = DegreeDistribution::new(&SynthConfig::default());
        let mean = dist.mean();
        assert!((2.0..3.6).contains(&mean), "analytic mean {mean:.2}");
    }

    #[test]
    fn finals_exist_and_last_state_accepts() {
        let w = small();
        assert!(w.final_states().count() >= 1);
        assert!(w.is_final(StateId(w.num_states() as u32 - 1)));
    }

    #[test]
    fn labels_are_in_configured_spaces() {
        let cfg = SynthConfig::with_states(2_000);
        let w = SynthWfst::generate(&cfg).unwrap();
        assert!(w.num_phones() <= cfg.num_phones + 1);
        assert!(w.num_words() <= cfg.vocab_size + 1);
        for a in w.arc_entries() {
            assert!(a.weight >= cfg.weight_range.0 && a.weight < cfg.weight_range.1);
        }
    }
}
