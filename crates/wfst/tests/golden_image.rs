//! Golden-image test: the packed serialization format is an on-disk/DRAM
//! contract (the accelerator computes addresses from it), so its exact
//! bytes must never drift.

use asr_wfst::builder::WfstBuilder;
use asr_wfst::layout::{pack_arc, pack_state, ARC_BYTES, STATE_BYTES};
use asr_wfst::{Arc, ArcId, PhoneId, StateEntry, StateId, WordId};

#[test]
fn state_record_bit_layout_is_frozen() {
    // first_arc in bits 0..32, num_emitting in 32..48, num_epsilon 48..64.
    let word = pack_state(StateEntry {
        first_arc: ArcId(0x0102_0304),
        num_emitting: 0x0506,
        num_epsilon: 0x0708,
    });
    assert_eq!(word, 0x0708_0506_0102_0304);
    assert_eq!(STATE_BYTES, 8);
}

#[test]
fn arc_record_bit_layout_is_frozen() {
    // dest 0..32, weight bits 32..64, ilabel 64..96, olabel 96..128.
    let arc = Arc {
        dest: StateId(0x0102_0304),
        weight: f32::from_bits(0x0506_0708),
        ilabel: PhoneId(0x090A_0B0C),
        olabel: WordId(0x0D0E_0F10),
    };
    assert_eq!(pack_arc(arc), 0x0D0E_0F10_090A_0B0C_0506_0708_0102_0304);
    assert_eq!(ARC_BYTES, 16);
}

#[test]
fn container_bytes_are_frozen() {
    // A two-state, one-arc transducer's full container image.
    let mut b = WfstBuilder::new();
    let s0 = b.add_state();
    let s1 = b.add_state();
    b.set_start(s0);
    b.set_final(s1, 1.5);
    b.add_arc(s0, s1, PhoneId(3), WordId(7), 2.5);
    let wfst = b.build().unwrap();
    let bytes = asr_wfst::io::to_bytes(&wfst);

    let mut expected: Vec<u8> = Vec::new();
    expected.extend_from_slice(b"WFST"); // magic
    expected.push(1); // version
    expected.extend_from_slice(&2u64.to_le_bytes()); // states
    expected.extend_from_slice(&1u64.to_le_bytes()); // arcs
    expected.extend_from_slice(&0u32.to_le_bytes()); // start
    expected.extend_from_slice(&1u64.to_le_bytes()); // final count
    expected.extend_from_slice(&1u32.to_le_bytes()); // final state id
    expected.extend_from_slice(&1.5f32.to_le_bytes()); // final cost
                                                       // State array: s0 = (first 0, 1 emitting, 0 eps); s1 = (first 1, 0, 0).
    expected.extend_from_slice(&0x0000_0001_0000_0000u64.to_le_bytes());
    expected.extend_from_slice(&0x0000_0000_0000_0001u64.to_le_bytes());
    // Pad the state array to the next 64-byte boundary (2 x 8 -> 64).
    expected.extend(std::iter::repeat_n(0u8, 48));
    // Arc record.
    let arc_word = ((7u128) << 96) | ((3u128) << 64) | ((2.5f32.to_bits() as u128) << 32) | 1;
    expected.extend_from_slice(&arc_word.to_le_bytes());

    assert_eq!(bytes, expected, "serialized image drifted");
    // And it still round-trips.
    let back = asr_wfst::io::from_bytes(&bytes).unwrap();
    assert_eq!(back.num_states(), 2);
    assert_eq!(back.arc(ArcId(0)).olabel, WordId(7));
}
