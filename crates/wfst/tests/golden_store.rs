//! Golden-image tests for the v2 zero-copy graph store: the container is a
//! byte-stable on-disk contract, so the exact bytes — header, section
//! table, record layouts — are pinned against a committed fixture and
//! against first-principles offset arithmetic. Any accidental format
//! change fails loudly here.
//!
//! To regenerate the fixture after an *intentional* format change:
//! `cargo test -p asr-wfst --test golden_store -- --ignored bless`.

use asr_wfst::builder::WfstBuilder;
use asr_wfst::sorted::SortedWfst;
use asr_wfst::store::{self, GraphImage};
use asr_wfst::{PhoneId, StateId, WordId};

const FIXTURE: &[u8] = include_bytes!("fixtures/tiny_v2.wfstimg");

/// The deterministic fixture graph: six states with degrees 2, 1, 3, 1, 5
/// and 0, sorted with threshold N = 4 so both the sorted region (three
/// degree groups, one of them empty) and the unsorted tail (a high-degree
/// state and an arc-less final state) are exercised.
fn fixture_sorted() -> SortedWfst {
    let mut b = WfstBuilder::new();
    let s: Vec<StateId> = (0..6).map(|_| b.add_state()).collect();
    b.set_start(s[0]);
    b.add_arc(s[0], s[1], PhoneId(1), WordId(1), 0.5);
    b.add_epsilon_arc(s[0], s[2], 0.25);
    b.add_arc(s[1], s[2], PhoneId(2), WordId::NONE, 1.5);
    b.add_arc(s[2], s[3], PhoneId(3), WordId(2), 0.75);
    b.add_arc(s[2], s[4], PhoneId(1), WordId::NONE, 1.0);
    b.add_epsilon_arc(s[2], s[5], 2.0);
    b.add_arc(s[3], s[5], PhoneId(2), WordId(3), 0.125);
    for k in 0..5u32 {
        b.add_arc(
            s[4],
            s[5],
            PhoneId(1 + (k % 4)),
            WordId::NONE,
            0.5 * k as f32,
        );
    }
    b.set_final(s[3], 0.625);
    b.set_final(s[5], 0.0);
    SortedWfst::with_threshold(&b.build().unwrap(), 4).unwrap()
}

fn le_u32(b: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(b[off..off + 4].try_into().unwrap())
}

fn le_u64(b: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(b[off..off + 8].try_into().unwrap())
}

#[test]
fn v2_container_bytes_are_frozen() {
    let bytes = store::to_bytes(&fixture_sorted());
    assert_eq!(
        bytes, FIXTURE,
        "v2 image bytes drifted from the committed fixture"
    );
}

#[test]
fn v2_header_fields_are_pinned() {
    let b = store::to_bytes(&fixture_sorted());
    assert_eq!(&b[0..4], b"WFST");
    assert_eq!(b[4], 2, "version byte");
    assert_eq!(&b[5..8], &[0, 0, 0], "reserved header bytes");
    assert_eq!(le_u64(&b, 8), 6, "num_states");
    assert_eq!(le_u64(&b, 16), 12, "num_arcs");
    // Sorted order groups by ascending degree: [s1, s3, s0, s2, s4, s5],
    // so original start s0 renumbers to 2.
    assert_eq!(le_u32(&b, 24), 2, "start (sorted numbering)");
    assert_eq!(le_u32(&b, 28), 4, "threshold");
    assert_eq!(le_u32(&b, 32), 5, "num_phones");
    assert_eq!(le_u32(&b, 36), 4, "num_words");
    assert_eq!(le_u32(&b, 40), 7, "section count");
    assert_eq!(le_u32(&b, 44), 0, "reserved header word");
}

#[test]
fn v2_section_table_is_pinned() {
    let b = store::to_bytes(&fixture_sorted());
    // (kind, offset, bytes) per section, offsets 64-byte aligned, in fixed
    // order: states(6x8), arcs(12x16), finals(6x4), boundaries(4x4),
    // offsets(4x8), old_to_new(6x4), new_to_old(6x4).
    let expected: [(u64, u64, u64); 7] = [
        (1, 256, 48),
        (2, 320, 192),
        (3, 512, 24),
        (4, 576, 16),
        (5, 640, 32),
        (6, 704, 24),
        (7, 768, 24),
    ];
    for (i, (kind, offset, len)) in expected.into_iter().enumerate() {
        let e = 48 + i * 24;
        assert_eq!(le_u64(&b, e), kind, "section {i} kind");
        assert_eq!(le_u64(&b, e + 8), offset, "section {i} offset");
        assert_eq!(le_u64(&b, e + 16), len, "section {i} length");
    }
    assert_eq!(b.len(), 768 + 24, "total image size");
}

#[test]
fn v2_record_layouts_are_pinned() {
    let sorted = fixture_sorted();
    let b = store::to_bytes(&sorted);
    // First state record (sorted state 0 = original s1: one emitting arc
    // starting at arc 0): first_arc=0 in bits 0..32, num_emitting=1 in
    // 32..48, num_epsilon=0 in 48..64.
    assert_eq!(le_u64(&b, 256), 0x0000_0001_0000_0000);
    // Its arc record at the arc section base: s1 -> s2 renumbers to dest 3
    // (s2 is sorted state 3), weight 1.5, ilabel 2, olabel 0 — four
    // little-endian u32 fields in order.
    let mut arc = Vec::new();
    arc.extend_from_slice(&3u32.to_le_bytes());
    arc.extend_from_slice(&1.5f32.to_le_bytes());
    arc.extend_from_slice(&2u32.to_le_bytes());
    arc.extend_from_slice(&0u32.to_le_bytes());
    assert_eq!(&b[320..336], arc.as_slice(), "arc record layout");
    // Unit registers: cumulative boundaries [2, 3, 4, 4] — two degree-1
    // states, one degree-2, one degree-3, no degree-4.
    for (g, expect) in [2u32, 3, 4, 4].into_iter().enumerate() {
        assert_eq!(le_u32(&b, 576 + 4 * g), expect, "boundary register {g}");
    }
    // Renumbering maps: new_to_old = [1, 3, 0, 2, 4, 5].
    for (new, old) in [1u32, 3, 0, 2, 4, 5].into_iter().enumerate() {
        assert_eq!(le_u32(&b, 768 + 4 * new), old, "new_to_old[{new}]");
    }
}

#[test]
fn committed_fixture_loads_and_matches_the_builder_graph() {
    let sorted = fixture_sorted();
    let image = GraphImage::from_bytes(FIXTURE).expect("fixture must stay loadable");
    assert_eq!(image.wfst().state_entries(), sorted.wfst().state_entries());
    assert_eq!(image.sorted().unit(), sorted.unit());
    assert_eq!(image.sorted().threshold(), 4);
    assert_eq!(image.wfst().start(), sorted.wfst().start());
    for (a, b) in image
        .wfst()
        .arc_entries()
        .iter()
        .zip(sorted.wfst().arc_entries())
    {
        assert_eq!(a.dest, b.dest);
        assert_eq!(a.ilabel, b.ilabel);
        assert_eq!(a.olabel, b.olabel);
        assert_eq!(a.weight.to_bits(), b.weight.to_bits());
    }
    for old in 0..6u32 {
        assert_eq!(
            image.sorted().map_state(StateId(old)),
            sorted.map_state(StateId(old))
        );
    }
}

#[test]
fn v1_to_v2_read_compat() {
    // The same sorted graph written through the v1 container must load
    // (via the version-dispatching reader) into the same transducer and
    // unit the v2 image carries — v1 just recomputes what v2 stores.
    let sorted = fixture_sorted();
    let v1 = asr_wfst::io::to_bytes(sorted.wfst());
    // The fixture was sorted with threshold 4; recompute with the same N
    // for an apples-to-apples unit comparison.
    let from_v1 = SortedWfst::with_threshold(&asr_wfst::io::from_bytes(&v1).unwrap(), 4).unwrap();
    let from_v2 = GraphImage::from_bytes(FIXTURE).unwrap();
    assert_eq!(
        from_v1.wfst().state_entries(),
        from_v2.wfst().state_entries()
    );
    assert_eq!(from_v1.unit(), from_v2.sorted().unit());
    // And the default-threshold dispatcher accepts both byte streams.
    assert!(asr_wfst::io::sorted_from_bytes(&v1).is_ok());
    assert!(asr_wfst::io::sorted_from_bytes(FIXTURE).is_ok());
}

/// Regenerates the committed fixture. Run explicitly after an intentional
/// format change: `cargo test -p asr-wfst --test golden_store -- --ignored bless`.
#[test]
#[ignore]
fn bless() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("tiny_v2.wfstimg");
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(&path, store::to_bytes(&fixture_sorted())).unwrap();
}
