//! Property tests over the FST operation toolbox: invariants that must
//! hold for arbitrary synthetic graphs.

use asr_wfst::ops::{
    accessible_states, coaccessible_states, concat, connect, project_input, project_output,
    reverse, scale_weights, union,
};
use asr_wfst::rmeps::remove_epsilons;
use asr_wfst::synth::{SynthConfig, SynthWfst};
use asr_wfst::{StateId, Wfst};
use proptest::prelude::*;

fn synth(states: usize, seed: u64) -> Wfst {
    SynthWfst::generate(
        &SynthConfig {
            num_states: states,
            ..SynthConfig::default()
        }
        .with_seed(seed),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn connect_output_is_fully_useful(seed in 0u64..200) {
        let w = synth(150, seed);
        let Ok(trimmed) = connect(&w) else {
            // Nothing useful survived; acceptable for adversarial graphs.
            return Ok(());
        };
        let acc = accessible_states(&trimmed);
        let coacc = coaccessible_states(&trimmed);
        prop_assert!(acc.iter().all(|&a| a), "all states accessible");
        prop_assert!(coacc.iter().all(|&c| c), "all states coaccessible");
        prop_assert!(trimmed.num_states() <= w.num_states());
        prop_assert!(trimmed.num_arcs() <= w.num_arcs());
    }

    #[test]
    fn scaling_is_multiplicative_and_composable(seed in 0u64..200) {
        let w = synth(100, seed);
        let a = scale_weights(&w, 2.0).unwrap();
        let b = scale_weights(&a, 3.0).unwrap();
        let direct = scale_weights(&w, 6.0).unwrap();
        for (x, y) in b.arc_entries().iter().zip(direct.arc_entries()) {
            prop_assert!((x.weight - y.weight).abs() <= 1e-4 * x.weight.abs().max(1.0));
        }
    }

    #[test]
    fn projections_preserve_shape(seed in 0u64..200) {
        let w = synth(100, seed);
        for p in [project_input(&w).unwrap(), project_output(&w).unwrap()] {
            prop_assert_eq!(p.num_states(), w.num_states());
            prop_assert_eq!(p.num_arcs(), w.num_arcs());
            prop_assert!(p.arc_entries().iter().all(|a| a.ilabel.0 == a.olabel.0));
        }
    }

    #[test]
    fn reverse_preserves_arc_count(seed in 0u64..200) {
        let w = synth(100, seed);
        let r = reverse(&w).unwrap();
        // All original arcs plus one epsilon per original final state.
        let finals = w.final_states().count();
        prop_assert_eq!(r.num_arcs(), w.num_arcs() + finals);
        prop_assert_eq!(r.num_states(), w.num_states() + 1);
        // The reversed machine's final is the old start.
        prop_assert!(r.is_final(StateId(w.start().0 + 1)));
    }

    #[test]
    fn union_and_concat_count_states(seed in 0u64..100) {
        let a = synth(40, seed);
        let b = synth(60, seed ^ 0xAA);
        let u = union(&a, &b).unwrap();
        prop_assert_eq!(u.num_states(), a.num_states() + b.num_states() + 1);
        prop_assert_eq!(u.num_arcs(), a.num_arcs() + b.num_arcs() + 2);
        let c = concat(&a, &b).unwrap();
        prop_assert_eq!(c.num_states(), a.num_states() + b.num_states());
        let a_finals = a.final_states().count();
        prop_assert_eq!(c.num_arcs(), a.num_arcs() + b.num_arcs() + a_finals);
        // Concat finals are exactly b's finals.
        prop_assert_eq!(c.final_states().count(), b.final_states().count());
    }

    #[test]
    fn epsilon_removal_is_idempotent(seed in 0u64..100) {
        let w = synth(80, seed);
        let once = remove_epsilons(&w).unwrap();
        prop_assert_eq!(once.epsilon_fraction(), 0.0);
        let twice = remove_epsilons(&once).unwrap();
        prop_assert_eq!(twice.num_arcs(), once.num_arcs());
        prop_assert_eq!(twice.num_states(), once.num_states());
    }
}
