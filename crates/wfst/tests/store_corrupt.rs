//! Corrupt-image robustness for the v2 graph store: arbitrary
//! truncations, random byte flips, and deliberately crafted section-table
//! attacks must all surface as typed [`WfstError`]s — never a panic, and
//! never a silently-wrong graph (every image that validates has passed
//! the full structural scan).

use asr_wfst::sorted::SortedWfst;
use asr_wfst::store::{self, GraphImage};
use asr_wfst::synth::{SynthConfig, SynthWfst};
use asr_wfst::{StateId, WfstError};
use proptest::prelude::*;

fn base_bytes() -> Vec<u8> {
    let w = SynthWfst::generate(&SynthConfig::with_states(300).with_seed(11)).unwrap();
    store::to_bytes(&SortedWfst::new(&w).unwrap())
}

fn le_u64(b: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(b[off..off + 8].try_into().unwrap())
}

/// Byte offset of section `i`'s table entry fields.
fn table_entry(i: usize) -> usize {
    48 + i * 24
}

fn section_offset(b: &[u8], i: usize) -> usize {
    le_u64(b, table_entry(i) + 8) as usize
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_truncation_is_a_typed_error(cut in 0usize..1_000_000) {
        let bytes = base_bytes();
        let cut = cut % bytes.len();
        let err = GraphImage::from_bytes(&bytes[..cut]).unwrap_err();
        // Every prefix is rejected (the section table pins the exact total
        // size) with a typed error, not a panic.
        prop_assert!(matches!(
            err,
            WfstError::Corrupt(_) | WfstError::LayoutMismatch { .. }
        ));
    }

    #[test]
    fn any_single_byte_flip_never_panics(pos in 0usize..1_000_000, mask in 1u8..=255) {
        let mut bytes = base_bytes();
        let pos = pos % bytes.len();
        bytes[pos] ^= mask;
        match GraphImage::from_bytes(&bytes) {
            // A flip in weight/cost payload bytes can still be a valid
            // graph; if validation accepted it, traversal must be safe.
            Ok(image) => {
                let w = image.wfst();
                for s in 0..w.num_states() {
                    for arc in w.arcs(StateId(s as u32)) {
                        prop_assert!(arc.dest.index() < w.num_states());
                        prop_assert!(arc.weight.is_finite());
                    }
                }
            }
            Err(err) => {
                prop_assert!(matches!(
                    err,
                    WfstError::Corrupt(_)
                        | WfstError::LayoutMismatch { .. }
                        | WfstError::UnknownState(_)
                        | WfstError::UnknownArc(_)
                        | WfstError::InvalidWeight { .. }
                        | WfstError::NoFinalStates
                ), "unexpected error class: {err}");
            }
        }
    }

    #[test]
    fn random_garbage_is_rejected(seed in 0u64..10_000) {
        // Deterministic pseudo-random buffers with a valid magic/version
        // prefix, so parsing gets past the first gate.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut bytes = vec![0u8; 2048];
        for b in bytes.iter_mut() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *b = state as u8;
        }
        bytes[..4].copy_from_slice(b"WFST");
        bytes[4] = 2;
        prop_assert!(GraphImage::from_bytes(&bytes).is_err());
    }
}

#[test]
fn bad_magic_and_versions_are_rejected() {
    let bytes = base_bytes();
    let mut v = bytes.clone();
    v[0] = b'X';
    assert!(matches!(
        GraphImage::from_bytes(&v).unwrap_err(),
        WfstError::Corrupt(_)
    ));
    for version in [0u8, 1, 3, 255] {
        let mut v = bytes.clone();
        v[4] = version;
        let err = GraphImage::from_bytes(&v).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }
}

#[test]
fn wrong_section_count_is_rejected() {
    let mut bytes = base_bytes();
    bytes[40..44].copy_from_slice(&6u32.to_le_bytes());
    let err = GraphImage::from_bytes(&bytes).unwrap_err();
    assert!(err.to_string().contains("sections"), "{err}");
}

#[test]
fn zero_threshold_is_rejected() {
    let mut bytes = base_bytes();
    bytes[28..32].copy_from_slice(&0u32.to_le_bytes());
    let err = GraphImage::from_bytes(&bytes).unwrap_err();
    assert!(err.to_string().contains("threshold"), "{err}");
}

#[test]
fn misaligned_section_offset_is_rejected() {
    let mut bytes = base_bytes();
    let e = table_entry(1) + 8;
    let off = le_u64(&bytes, table_entry(1) + 8) + 4;
    bytes[e..e + 8].copy_from_slice(&off.to_le_bytes());
    let err = GraphImage::from_bytes(&bytes).unwrap_err();
    assert!(err.to_string().contains("aligned"), "{err}");
}

#[test]
fn overlapping_sections_are_rejected() {
    let mut bytes = base_bytes();
    // Point the arc section at the state section's offset.
    let states_off = le_u64(&bytes, table_entry(0) + 8);
    let e = table_entry(1) + 8;
    bytes[e..e + 8].copy_from_slice(&states_off.to_le_bytes());
    let err = GraphImage::from_bytes(&bytes).unwrap_err();
    assert!(err.to_string().contains("overlap"), "{err}");
}

#[test]
fn wrong_section_length_is_rejected() {
    let mut bytes = base_bytes();
    let e = table_entry(2) + 16;
    let len = le_u64(&bytes, e) + 4;
    bytes[e..e + 8].copy_from_slice(&len.to_le_bytes());
    let err = GraphImage::from_bytes(&bytes).unwrap_err();
    assert!(err.to_string().contains("expected"), "{err}");
}

#[test]
fn section_past_end_of_image_is_rejected() {
    let mut bytes = base_bytes();
    let e = table_entry(6) + 8;
    let huge = (bytes.len() as u64).next_multiple_of(64);
    bytes[e..e + 8].copy_from_slice(&huge.to_le_bytes());
    let err = GraphImage::from_bytes(&bytes).unwrap_err();
    assert!(err.to_string().contains("exceeds"), "{err}");
}

#[test]
fn out_of_range_arc_target_is_unknown_state() {
    let mut bytes = base_bytes();
    let arc_off = section_offset(&bytes, 1);
    // First arc record's dest field (little-endian u32 at record offset 0).
    bytes[arc_off..arc_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    let err = GraphImage::from_bytes(&bytes).unwrap_err();
    assert!(
        matches!(
            err,
            WfstError::UnknownState(_) | WfstError::LayoutMismatch { .. }
        ),
        "{err}"
    );
}

#[test]
fn out_of_range_start_is_unknown_state() {
    let mut bytes = base_bytes();
    bytes[24..28].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        GraphImage::from_bytes(&bytes).unwrap_err(),
        WfstError::UnknownState(_)
    ));
}

#[test]
fn nan_weight_is_invalid_weight() {
    let mut bytes = base_bytes();
    let arc_off = section_offset(&bytes, 1);
    // Weight field lives at record offset 4.
    bytes[arc_off + 4..arc_off + 8].copy_from_slice(&f32::NAN.to_le_bytes());
    assert!(matches!(
        GraphImage::from_bytes(&bytes).unwrap_err(),
        WfstError::InvalidWeight { .. }
    ));
}

#[test]
fn all_infinite_finals_is_no_final_states() {
    let mut bytes = base_bytes();
    let finals_off = section_offset(&bytes, 2);
    let finals_len = le_u64(&bytes, table_entry(2) + 16) as usize;
    for i in 0..finals_len / 4 {
        bytes[finals_off + 4 * i..finals_off + 4 * i + 4]
            .copy_from_slice(&f32::INFINITY.to_le_bytes());
    }
    assert_eq!(
        GraphImage::from_bytes(&bytes).unwrap_err(),
        WfstError::NoFinalStates
    );
}

#[test]
fn non_cumulative_boundary_register_is_rejected() {
    let mut bytes = base_bytes();
    let b_off = section_offset(&bytes, 3);
    // Make boundary 1 smaller than boundary 0: not a cumulative count.
    let first = u32::from_le_bytes(bytes[b_off..b_off + 4].try_into().unwrap());
    bytes[b_off + 4..b_off + 8].copy_from_slice(&first.wrapping_sub(1).to_le_bytes());
    let err = GraphImage::from_bytes(&bytes).unwrap_err();
    assert!(
        matches!(
            err,
            WfstError::Corrupt(_) | WfstError::LayoutMismatch { .. }
        ),
        "{err}"
    );
}

#[test]
fn corrupted_offset_register_is_layout_mismatch() {
    let mut bytes = base_bytes();
    let o_off = section_offset(&bytes, 4);
    let old = i64::from_le_bytes(bytes[o_off..o_off + 8].try_into().unwrap());
    bytes[o_off..o_off + 8].copy_from_slice(&(old + 2).to_le_bytes());
    assert!(matches!(
        GraphImage::from_bytes(&bytes).unwrap_err(),
        WfstError::LayoutMismatch { .. }
    ));
}

#[test]
fn non_inverse_state_maps_are_rejected() {
    let mut bytes = base_bytes();
    let o2n_off = section_offset(&bytes, 5);
    // Duplicate the first map entry into the second: no longer injective.
    let first = u32::from_le_bytes(bytes[o2n_off..o2n_off + 4].try_into().unwrap());
    bytes[o2n_off + 4..o2n_off + 8].copy_from_slice(&first.to_le_bytes());
    let err = GraphImage::from_bytes(&bytes).unwrap_err();
    assert!(err.to_string().contains("permutation"), "{err}");
}

#[test]
fn label_space_mismatch_is_rejected() {
    let mut bytes = base_bytes();
    let claimed = u32::from_le_bytes(bytes[32..36].try_into().unwrap());
    bytes[32..36].copy_from_slice(&(claimed + 1).to_le_bytes());
    let err = GraphImage::from_bytes(&bytes).unwrap_err();
    assert!(err.to_string().contains("label spaces"), "{err}");
}

#[test]
fn epsilon_ordering_violation_is_rejected() {
    let mut bytes = base_bytes();
    // Find a state with an emitting arc and zero its arc's ilabel: an
    // epsilon arc now sits in the emitting range.
    let image = GraphImage::from_bytes(&bytes).unwrap();
    let w = image.wfst();
    let (state, _) = (0..w.num_states())
        .map(|s| (s, w.state(StateId(s as u32))))
        .find(|(_, e)| e.num_emitting > 0)
        .expect("synth graph has emitting arcs");
    let first_arc = w.state(StateId(state as u32)).first_arc.index();
    drop(image);
    let arc_off = section_offset(&bytes, 1) + first_arc * 16;
    // ilabel field lives at record offset 8.
    bytes[arc_off + 8..arc_off + 12].copy_from_slice(&0u32.to_le_bytes());
    let err = GraphImage::from_bytes(&bytes).unwrap_err();
    assert!(
        matches!(err, WfstError::Corrupt(_)),
        "expected ordering violation, got {err}"
    );
}
