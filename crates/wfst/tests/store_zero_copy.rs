//! Pins the zero-copy claim of the v2 graph store with a counting
//! allocator: validating a 200k-state image into a [`GraphImage`] must not
//! copy the arc records. The arc section alone is ~10 MB; the
//! load is allowed only the small owned side tables (direct-index
//! registers, renumbering bookkeeping), so the test bounds both the number
//! of allocation calls and the total bytes allocated far below the arc
//! section size, and asserts the typed views point into the image buffer
//! itself.

use asr_wfst::sorted::SortedWfst;
use asr_wfst::store::{self, GraphImage, ImageBytes};
use asr_wfst::synth::{SynthConfig, SynthWfst};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// The counters are process-global, so tests in this binary must not run
/// their counted phases concurrently; each test body holds this lock.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn serialized() -> std::sync::MutexGuard<'static, ()> {
    SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

struct CountingAllocator;

// SAFETY: defers to the system allocator; the counters are metadata only.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Runs `f` and returns `(alloc_calls, bytes_allocated)` during it.
fn count<T>(f: impl FnOnce() -> T) -> (T, u64, u64) {
    let calls = ALLOC_CALLS.load(Ordering::Relaxed);
    let bytes = ALLOC_BYTES.load(Ordering::Relaxed);
    let out = f();
    (
        out,
        ALLOC_CALLS.load(Ordering::Relaxed) - calls,
        ALLOC_BYTES.load(Ordering::Relaxed) - bytes,
    )
}

fn contains<T>(bytes: &[u8], slice: &[T]) -> bool {
    let range = bytes.as_ptr_range();
    let ptr = slice.as_ptr().cast::<u8>();
    ptr >= range.start && ptr.wrapping_add(std::mem::size_of_val(slice)) <= range.end
}

#[test]
fn loading_a_200k_state_image_copies_no_arc_records() {
    let _guard = serialized();
    // Authoring side, outside the counted region: synthesize, degree-sort,
    // serialize, and stage the bytes in the aligned buffer a file read
    // would produce.
    let wfst = SynthWfst::generate(&SynthConfig::with_states(200_000).with_seed(5)).unwrap();
    let sorted = SortedWfst::new(&wfst).unwrap();
    let image_bytes = ImageBytes::from_slice(&store::to_bytes(&sorted));
    let arc_section_bytes = (sorted.wfst().num_arcs() * 16) as u64;
    assert!(
        arc_section_bytes > 5_000_000,
        "fixture too small to make the zero-copy bound meaningful"
    );

    let (image, calls, bytes) = count(|| GraphImage::from_image_bytes(image_bytes).unwrap());

    // The load may allocate only the recomputed-register side tables and a
    // handful of struct boxes — never the arc or state records. Both
    // bounds sit orders of magnitude below the ~10 MB arc section.
    assert!(
        bytes < arc_section_bytes / 100,
        "loading allocated {bytes} bytes against a {arc_section_bytes}-byte \
         arc section: records are being copied"
    );
    assert!(
        calls < 64,
        "loading performed {calls} allocations; validation should not build \
         per-record containers"
    );

    // The typed views must alias the image buffer, not an owned copy.
    let w = image.wfst();
    assert!(contains(image.as_bytes(), w.arc_entries()));
    assert!(contains(image.as_bytes(), w.state_entries()));
    assert!(w.is_image_backed());
    assert_eq!(w.num_states(), 200_000);
    assert_eq!(image.resident_bytes(), image.as_bytes().len());
}

#[test]
fn reloading_the_image_reuses_the_buffer_without_new_views_allocating() {
    let _guard = serialized();
    let wfst = SynthWfst::generate(&SynthConfig::with_states(20_000).with_seed(6)).unwrap();
    let sorted = SortedWfst::new(&wfst).unwrap();
    let image_bytes = ImageBytes::from_slice(&store::to_bytes(&sorted));

    let first = GraphImage::from_image_bytes(image_bytes.clone()).unwrap();
    // An image holds several handles on the buffer (its own plus one per
    // zero-copy section view); what matters is that a second load adds the
    // same fixed number of handles — and zero new record storage — and
    // that dropping an image returns every one of them.
    let handles_per_image = first.buffer_ref_count() - 1; // minus the local `image_bytes`
    let (second, _, bytes) = count(|| GraphImage::from_image_bytes(image_bytes.clone()).unwrap());

    assert!(bytes < (sorted.wfst().num_arcs() * 16) as u64 / 100);
    assert_eq!(
        second.buffer_ref_count(),
        1 + 2 * handles_per_image,
        "second load must add exactly one image's worth of buffer handles"
    );
    assert_eq!(
        first.wfst().arc_entries().as_ptr(),
        second.wfst().arc_entries().as_ptr(),
        "both images must view the same arc records"
    );
    drop(first);
    assert_eq!(second.buffer_ref_count(), 1 + handles_per_image);
}

#[test]
fn builder_path_allocates_per_record_where_the_image_path_does_not() {
    let _guard = serialized();
    // A direct head-to-head on the same graph: rebuilding the sorted
    // structure from an owned transducer must allocate at least the full
    // record arrays, while the image path stays under 1% of that.
    let wfst = SynthWfst::generate(&SynthConfig::with_states(50_000).with_seed(7)).unwrap();
    let sorted = SortedWfst::new(&wfst).unwrap();
    let image_bytes = ImageBytes::from_slice(&store::to_bytes(&sorted));

    let (rebuilt, _, builder_bytes) = count(|| SortedWfst::new(&wfst).unwrap());
    let (image, _, image_load_bytes) = count(|| GraphImage::from_image_bytes(image_bytes).unwrap());

    let record_bytes = (rebuilt.wfst().num_arcs() * 16 + rebuilt.wfst().num_states() * 8) as u64;
    assert!(
        builder_bytes >= record_bytes,
        "builder path allocated {builder_bytes} bytes for {record_bytes} bytes \
         of records — expected at least one full materialization"
    );
    assert!(
        image_load_bytes * 100 < builder_bytes,
        "image load ({image_load_bytes} B) is not at least 100x leaner than \
         the builder path ({builder_bytes} B)"
    );
    assert_eq!(image.wfst().state_entries(), rebuilt.wfst().state_entries());
}
