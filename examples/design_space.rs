//! Architecture design-space exploration with the cycle-accurate model.
//!
//! An architect sizing a derivative of the paper's accelerator wants to
//! know where the next unit of area buys the most performance. This
//! example sweeps the Arc cache capacity, the prefetch FIFO depth and the
//! hash-table size on one workload, reporting cycles, power and area for
//! each point — the kind of study the simulator exists for.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use asr_repro::accel::config::{AcceleratorConfig, DesignPoint};
use asr_repro::accel::energy::{AreaModel, EnergyModel};
use asr_repro::accel::sim::Simulator;
use asr_repro::acoustic::scores::AcousticTable;
use asr_repro::wfst::synth::{SynthConfig, SynthWfst};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let wfst = SynthWfst::generate(&SynthConfig::with_states(200_000))?;
    let scores = AcousticTable::random(60, wfst.num_phones() as usize, (0.5, 4.0), 3);
    let beam = 12.0;
    let energy_model = EnergyModel::default();

    let evaluate = |cfg: AcceleratorConfig| -> (u64, f64, f64) {
        let sim = Simulator::new(cfg.clone());
        let r = sim.decode_wfst(&wfst, &scores).expect("simulation");
        let energy = energy_model.energy(&cfg, &r.stats);
        let power = energy.power_w(r.stats.seconds(cfg.frequency_hz));
        let area = AreaModel.area(&cfg).total_mm2();
        (r.stats.cycles, power, area)
    };

    println!("Arc cache capacity (final design):");
    println!(
        "{:>10} {:>12} {:>10} {:>10}",
        "capacity", "cycles", "power", "area"
    );
    for kb in [256usize, 512, 1024, 2048, 4096] {
        let mut cfg = AcceleratorConfig::for_design(DesignPoint::StateAndArc).with_beam(beam);
        cfg.arc_cache.capacity = kb * 1024;
        let (cycles, power, area) = evaluate(cfg);
        println!(
            "{:>8}KB {:>12} {:>8.0}mW {:>9.2}mm2",
            kb,
            cycles,
            power * 1e3,
            area
        );
    }

    println!("\nprefetch FIFO depth (arc-prefetch design):");
    println!("{:>10} {:>12} {:>10}", "depth", "cycles", "power");
    for depth in [8usize, 16, 32, 64, 128, 256] {
        let mut cfg = AcceleratorConfig::for_design(DesignPoint::ArcPrefetch).with_beam(beam);
        cfg.prefetch_fifo = depth;
        let (cycles, power, _) = evaluate(cfg);
        println!("{:>10} {:>12} {:>8.0}mW", depth, cycles, power * 1e3);
    }

    println!("\nhash table entries (base design):");
    println!("{:>10} {:>12} {:>10}", "entries", "cycles", "power");
    for entries in [8 * 1024usize, 16 * 1024, 32 * 1024, 64 * 1024] {
        let mut cfg = AcceleratorConfig::for_design(DesignPoint::Base).with_beam(beam);
        cfg.hash_entries = entries;
        let (cycles, power, _) = evaluate(cfg);
        println!(
            "{:>9}K {:>12} {:>8.0}mW",
            entries / 1024,
            cycles,
            power * 1e3
        );
    }

    println!("\nreading: the Arc cache and FIFO depth move performance;");
    println!("the hash table saturates early — exactly the paper's Section III/IV story.");
    Ok(())
}
