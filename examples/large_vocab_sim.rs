//! Large-vocabulary simulation: the paper's headline experiment at library
//! scale.
//!
//! Generates a synthetic WFST with Kaldi-like statistics (degree
//! distribution, epsilon fraction, locality), runs all four accelerator
//! design points plus the calibrated CPU/GPU baselines, and prints the
//! Figure 9/10-style comparison.
//!
//! ```text
//! cargo run --release --example large_vocab_sim [states] [frames]
//! ```

use asr_repro::accel::config::{AcceleratorConfig, DesignPoint};
use asr_repro::accel::energy::EnergyModel;
use asr_repro::accel::sim::Simulator;
use asr_repro::acoustic::scores::AcousticTable;
use asr_repro::platform::{CpuModel, GpuModel};
use asr_repro::wfst::stats::WfstSummary;
use asr_repro::wfst::synth::{SynthConfig, SynthWfst};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let states: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(500_000);
    let frames: usize = std::env::args()
        .nth(2)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(100);
    let beam = 12.0;

    println!("generating synthetic WFST ({states} states)...");
    let wfst = SynthWfst::generate(&SynthConfig::with_states(states))?;
    println!("{}", WfstSummary::of(&wfst));
    let scores = AcousticTable::random(frames, wfst.num_phones() as usize, (0.5, 4.0), 7);

    let energy_model = EnergyModel::default();
    let mut rows: Vec<(String, f64, f64)> = Vec::new(); // name, time, energy per speech-s
    let speech_s = frames as f64 * 0.01;
    let mut arcs_per_frame = 0.0;

    println!("\nsimulating the four design points...");
    for design in DesignPoint::ALL {
        let cfg = AcceleratorConfig::for_design(design).with_beam(beam);
        let sim = Simulator::new(cfg.clone());
        let r = sim.decode_wfst(&wfst, &scores)?;
        arcs_per_frame = r.stats.arcs_per_frame();
        let time = r.stats.seconds(cfg.frequency_hz) / speech_s;
        let energy = energy_model.energy(&cfg, &r.stats).total_j() / speech_s;
        rows.push((design.label().to_owned(), time, energy));
    }
    let cpu = CpuModel::default().viterbi_point(arcs_per_frame);
    let gpu = GpuModel::default().viterbi_point(arcs_per_frame);
    rows.insert(
        0,
        (
            "GPU".into(),
            gpu.decode_s_per_speech_s,
            gpu.energy_j_per_speech_s,
        ),
    );
    rows.insert(
        0,
        (
            "CPU".into(),
            cpu.decode_s_per_speech_s,
            cpu.energy_j_per_speech_s,
        ),
    );

    let gpu_time = rows[1].1;
    let gpu_energy = rows[1].2;
    println!(
        "\n{:<16} {:>14} {:>12} {:>12} {:>14}",
        "config", "s/speech-s", "vs GPU", "J/speech-s", "energy vs GPU"
    );
    for (name, time, energy) in &rows {
        println!(
            "{:<16} {:>14.5} {:>11.2}x {:>12.5} {:>13.0}x",
            name,
            time,
            gpu_time / time,
            energy,
            gpu_energy / energy
        );
    }
    println!("\npaper: final design 1.7x GPU speed at 287x less energy.");
    Ok(())
}
