//! N-best decoding and language-model rescoring.
//!
//! A common ASR serving pattern: decode with a cheap first-pass grammar,
//! keep the N best hypotheses, then rescore them with a stronger language
//! model. Here the first pass uses a uniform unigram grammar (every word
//! equally likely); the rescoring bigram knows that "lights on" and
//! "call mom" are idiomatic, and reranks accordingly.
//!
//! ```text
//! cargo run --release --example nbest_rescoring
//! ```

use asr_repro::decoder::nbest::NBestDecoder;
use asr_repro::decoder::search::DecodeOptions;
use asr_repro::pipeline::AsrPipeline;
use asr_repro::wfst::grammar::Grammar;
use asr_repro::wfst::lexicon::demo_lexicon;
use asr_repro::wfst::WordId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pipeline = AsrPipeline::demo()?;
    let lexicon = demo_lexicon();

    // A strong second-pass bigram: favoured word pairs get cheap
    // transitions, everything else backs off with a penalty.
    let words: Vec<WordId> = (1..=lexicon.num_words() as u32).map(WordId).collect();
    let mut rescorer = Grammar::uniform(&words);
    rescorer.set_backoff_penalty(2.0);
    for (a, b) in [
        ("lights", "on"),
        ("lights", "off"),
        ("call", "mom"),
        ("play", "music"),
    ] {
        rescorer.set_bigram(
            lexicon.word_id(a).unwrap(),
            lexicon.word_id(b).unwrap(),
            0.05,
        );
    }
    let lm_cost = |hyp: &[WordId]| -> f32 {
        let mut cost = 0.0;
        let mut prev: Option<WordId> = None;
        for &w in hyp {
            cost += match prev {
                None => rescorer.start_cost(w),
                Some(p) => rescorer.transition_cost(p, w),
            };
            prev = Some(w);
        }
        cost
    };

    // First pass: decode "lights on" audio, keep the 5 best.
    let audio = pipeline.render_words(&["lights", "on"])?;
    let scores = {
        use asr_repro::acoustic::template::TemplateScorer;
        TemplateScorer::with_default_signal(lexicon.num_phones() as u32)
            .score_waveform(&audio.samples)
    };
    let nbest = NBestDecoder::new(DecodeOptions::with_beam(40.0), 4);
    let hyps = nbest.decode(pipeline.graph(), &scores, 5);

    println!("first pass (uniform grammar), N-best:");
    for (i, h) in hyps.iter().enumerate() {
        println!(
            "  {}. {:<24} acoustic+graph cost {:.2}",
            i + 1,
            lexicon.transcript(&h.words).join(" "),
            h.cost
        );
    }

    // Second pass: combine first-pass cost with the bigram cost.
    let lm_scale = 5.0;
    let mut rescored: Vec<(f32, String)> = hyps
        .iter()
        .map(|h| {
            let total = h.cost + lm_scale * lm_cost(&h.words);
            (total, lexicon.transcript(&h.words).join(" "))
        })
        .collect();
    rescored.sort_by(|a, b| a.0.total_cmp(&b.0));

    println!("\nafter bigram rescoring (scale {lm_scale}):");
    for (i, (cost, text)) in rescored.iter().enumerate() {
        println!("  {}. {:<24} combined cost {:.2}", i + 1, text, cost);
    }
    println!("\ntop hypothesis: {:?}", rescored[0].1);
    assert_eq!(rescored[0].1, "lights on");
    Ok(())
}
