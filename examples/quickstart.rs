//! Quickstart: recognize a spoken command with the full pipeline, on both
//! the software decoder and the simulated accelerator.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use asr_repro::accel::config::{AcceleratorConfig, DesignPoint};
use asr_repro::pipeline::AsrPipeline;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A twelve-word command vocabulary with a uniform grammar.
    let pipeline = AsrPipeline::demo()?;
    println!(
        "decoding graph: {} states, {} arcs",
        pipeline.graph().num_states(),
        pipeline.graph().num_arcs()
    );

    // Synthesize the utterance "call mom" (16 kHz waveform).
    let audio = pipeline.render_words(&["call", "mom"])?;
    println!(
        "utterance: {} samples ({} frames of 10 ms)",
        audio.samples.len(),
        audio.num_frames()
    );

    // Software decoder (the CPU path).
    let sw = pipeline.recognize(&audio);
    println!("\nsoftware decoder:   {:?} (cost {:.2})", sw.words, sw.cost);

    // Cycle-accurate accelerator simulation (the paper's final design).
    let cfg = AcceleratorConfig::for_design(DesignPoint::StateAndArc);
    let (hw, result) = pipeline.recognize_on_accelerator(&audio, cfg)?;
    println!("accelerator:        {:?} (cost {:.2})", hw.words, hw.cost);
    println!(
        "hardware: {} cycles ({:.1} us at 600 MHz), {} arcs evaluated, {} bytes off-chip",
        result.stats.cycles,
        result.stats.cycles as f64 / 600.0,
        result.stats.arcs_processed + result.stats.eps_arcs_processed,
        result.stats.traffic.search_bytes(),
    );
    assert_eq!(sw.words, hw.words, "hardware must match software");
    println!("\nsoftware and hardware agree.");
    Ok(())
}
