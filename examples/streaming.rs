//! Streaming recognition with voice-activity endpointing and incremental
//! decode sessions.
//!
//! An always-on device records a long audio stream in which short commands
//! are separated by silence. A cheap energy VAD gates the expensive
//! pipeline, and each detected speech segment is served through a
//! [`StreamingSession`]: the scorer produces acoustic rows in batches (the
//! paper's GPU stage) and hands them to the search through the session's
//! double-buffered row pair (the Acoustic Likelihood Buffer), with partial
//! hypotheses available after every batch — the shape of the paper's
//! Section VI pipelined system, in software.
//!
//! ```text
//! cargo run --release --example streaming
//! ```
//!
//! [`StreamingSession`]: asr_repro::pipeline::StreamingSession

use asr_repro::acoustic::signal::{render_phones, SignalConfig, Utterance};
use asr_repro::acoustic::vad::{Vad, VadConfig};
use asr_repro::pipeline::AsrPipeline;
use asr_repro::wfst::PhoneId;

/// Frames handed from scorer to search per batch (the pipelined handoff
/// granularity; the paper overlaps scoring of batch i+1 with the search
/// of batch i).
const BATCH_FRAMES: usize = 10;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pipeline = AsrPipeline::demo()?;
    let signal = SignalConfig::default();
    let silence = |frames: usize| render_phones(&[PhoneId::EPSILON], frames, &signal);

    // Build a 10-ish second stream: silence, command, silence, command...
    let commands: Vec<Vec<&str>> = vec![
        vec!["lights", "on"],
        vec!["play", "music"],
        vec!["call", "mom"],
    ];
    let mut stream: Vec<f32> = silence(40);
    for cmd in &commands {
        let utt = pipeline.render_words(cmd)?;
        stream.extend_from_slice(&utt.samples);
        stream.extend(silence(40));
    }
    println!(
        "stream: {:.1} s of audio, {} embedded commands",
        stream.len() as f64 / 16_000.0,
        commands.len()
    );

    // Endpoint with the VAD.
    let vad_cfg = VadConfig::default();
    let vad = Vad::new(vad_cfg);
    let activity = vad.detect(&stream);
    // Undo the hangover padding before decoding: trailing silence would
    // otherwise be force-aligned onto phones.
    let segments = activity.segments_trimmed(vad_cfg.hangover);
    println!(
        "VAD: {:.0}% active, {} segments detected",
        100.0 * activity.activity_ratio(),
        segments.len()
    );

    // Serve each detected segment through a streaming session. The
    // session's scratch comes from (and returns to) the pipeline's pool,
    // so segment after segment decodes without fresh allocation.
    let frame = 160usize;
    let mut decoded = Vec::new();
    for &(first, last) in &segments {
        let lo = first * frame;
        let hi = ((last + 1) * frame).min(stream.len());
        let utt = Utterance {
            samples: stream[lo..hi].to_vec(),
            frame_phones: Vec::new(), // unknown: this is recognition
        };
        // Scoring stage: the "GPU" fills the score table for the segment.
        let scores = pipeline.score(&utt);

        // Search stage: rows stream into the session batch by batch.
        let mut session = pipeline.open_session();
        println!("  frames {first:>3}-{last:<3}");
        let mut next_frame = 0;
        while next_frame < scores.num_frames() {
            let end = (next_frame + BATCH_FRAMES).min(scores.num_frames());
            for f in next_frame..end {
                session.push_row(scores.frame_row(f));
            }
            next_frame = end;
            if let Some(partial) = session.partial() {
                println!(
                    "    after {:>3} frames: {:?} (cost {:.2})",
                    partial.frames_decoded, partial.words, partial.cost
                );
            }
        }
        let transcript = session.finalize();
        println!(
            "    final: {:?} (cost {:.2}, reached final: {})",
            transcript.words, transcript.cost, transcript.reached_final
        );
        decoded.push(transcript.words.join(" "));
    }

    let expected: Vec<String> = commands.iter().map(|c| c.join(" ")).collect();
    println!("\nexpected: {expected:?}");
    println!("decoded:  {decoded:?}");
    let correct = decoded
        .iter()
        .zip(&expected)
        .filter(|(d, e)| d == e)
        .count();
    println!(
        "{}/{} commands correct; pool now holds {} warm scratch set(s)",
        correct,
        expected.len(),
        pipeline.scratch_pool().idle()
    );
    // The VAD advantage: decode time covers only active audio.
    let active_fraction = activity.activity_ratio();
    println!(
        "idle {:.0}% of the stream never reached the search pipeline.",
        100.0 * (1.0 - active_fraction)
    );
    Ok(())
}
