//! Microphone-style streaming recognition on the shared runtime: two
//! concurrent mics, raw audio in, words out, with VAD-gated
//! auto-endpointing.
//!
//! An always-on device hears long audio streams in which short commands
//! are separated by silence — and a *serving* deployment hears many such
//! streams at once. This example runs two microphone threads against
//! **one** [`AsrRuntime`]: the runtime handle is cloned into each thread
//! (an `Arc` bump), and every utterance opens an owned [`Session`] —
//! `Send + 'static`, no pipeline borrow — so each connection drives its
//! own recognition while sharing the runtime's scratch pool, front-end
//! pool, and work-stealing executor. Per stream:
//!
//! * samples arrive in 10 ms packets (160 samples at 16 kHz), exactly as
//!   a microphone driver would deliver them;
//! * a streaming [`Endpointer`] (causal energy VAD + trailing-silence
//!   counter) decides when speech starts and when an utterance has ended;
//! * while speech is active, packets flow into the session via
//!   `push_samples`: the pooled online front-end fills the session's
//!   double-buffered row pair — the software image of the paper's GPU
//!   filling the Acoustic Likelihood Buffer — and, on a multi-lane
//!   runtime, each new frame's scoring runs as a stolen executor task
//!   while the search relaxes the previous row (Section VI pipelining);
//! * a small packet delay line drops the VAD's hangover padding before it
//!   reaches the search, so trailing near-silence is never force-aligned
//!   onto phones;
//! * at the endpoint the session finalizes with the batch decoder's
//!   end-of-utterance semantics: the transcript is byte-identical to
//!   batch-recognizing the same speech frames.
//!
//! ```text
//! cargo run --release --example streaming
//! ```
//!
//! [`AsrRuntime`]: asr_repro::runtime::AsrRuntime
//! [`Session`]: asr_repro::runtime::Session
//! [`Endpointer`]: asr_repro::acoustic::vad::Endpointer

use asr_repro::acoustic::signal::{render_phones, SignalConfig};
use asr_repro::acoustic::vad::{Endpointer, VadConfig};
use asr_repro::runtime::AsrRuntime;
use asr_repro::wfst::PhoneId;
use std::collections::VecDeque;

/// Samples per packet: one 10 ms frame, the microphone-driver granularity.
const PACKET: usize = 160;

/// Frames of raw silence after speech that close the utterance (300 ms).
const ENDPOINT_SILENCE: usize = 30;

/// One always-on microphone: builds a silence-separated command stream,
/// then runs the VAD-gated packet loop, opening an owned session per
/// utterance. Runs on its own thread; `runtime` is a cheap clone of the
/// shared handle.
fn run_mic(
    runtime: AsrRuntime,
    mic: &str,
    commands: Vec<Vec<&str>>,
) -> Result<Vec<String>, Box<dyn std::error::Error + Send + Sync>> {
    let signal = SignalConfig::default();
    let silence = |frames: usize| render_phones(&[PhoneId::EPSILON], frames, &signal);

    // Silence, command, silence, command...
    let mut stream: Vec<f32> = silence(40);
    for cmd in &commands {
        let utt = runtime.render_words(cmd)?;
        stream.extend_from_slice(&utt.samples);
        stream.extend(silence(40));
    }
    println!(
        "[{mic}] stream: {:.1} s of audio, {} embedded commands, {PACKET}-sample packets",
        stream.len() as f64 / 16_000.0,
        commands.len()
    );

    let vad_cfg = VadConfig::default();
    let mut endpointer = Endpointer::new(vad_cfg, ENDPOINT_SILENCE);
    // Packets ride a delay line `hangover` deep while speech is active, so
    // the VAD's hangover padding (near-silence kept active to bridge
    // short pauses) can be dropped at the endpoint instead of decoded.
    let mut delay: VecDeque<Vec<f32>> = VecDeque::new();
    let mut session = None;
    let mut decoded: Vec<String> = Vec::new();
    let mut speech_packets = 0usize;

    for packet in stream.chunks(PACKET) {
        let endpoint = endpointer.push_samples(packet);
        // Gate on the per-frame VAD decision: packets flow to the
        // recognizer only while the detector hears speech (or its
        // hangover), not through the pre-endpoint silence.
        if endpointer.last_frame_active() {
            if session.is_none() {
                println!(
                    "[{mic}]   [{:>5.2}s] speech detected, session opened",
                    endpointer.frames() as f64 * 0.01
                );
                session = Some(runtime.open_session());
                delay.clear();
            }
            delay.push_back(packet.to_vec());
            while delay.len() > vad_cfg.hangover {
                let ready = delay.pop_front().expect("non-empty delay line");
                let s = session.as_mut().expect("open session");
                s.push_samples(&ready);
                speech_packets += 1;
                if speech_packets.is_multiple_of(10) {
                    if let Some(partial) = s.partial() {
                        println!(
                            "[{mic}]     after {:>3} frames: {:?} (cost {:.2})",
                            partial.frames_decoded, partial.words, partial.cost
                        );
                    }
                }
            }
        }
        if endpoint {
            // The delay line still holds the hangover padding: drop it.
            let dropped = delay.len();
            delay.clear();
            let transcript = session.take().expect("endpoint implies session").finalize();
            println!(
                "[{mic}]   [{:>5.2}s] endpoint after {ENDPOINT_SILENCE} silent frames \
                 ({dropped} hangover packets trimmed)",
                endpointer.frames() as f64 * 0.01
            );
            println!(
                "[{mic}]     final: {:?} (cost {:.2}, reached final: {})",
                transcript.words, transcript.cost, transcript.reached_final
            );
            decoded.push(transcript.words.join(" "));
        }
    }
    if let Some(mut s) = session.take() {
        // Stream ended before an endpoint fired. If the VAD was still
        // active on the final frame the delay line holds real speech —
        // drain it before finalizing; if the tail had already gone
        // silent it holds hangover padding, which stays trimmed.
        if endpointer.last_frame_active() {
            for packet in delay.drain(..) {
                s.push_samples(&packet);
            }
        }
        decoded.push(s.finalize().words.join(" "));
    }

    let idle_fraction = 1.0 - speech_packets as f64 / (stream.len() / PACKET) as f64;
    println!(
        "[{mic}] idle {:.0}% of the stream never reached the front-end or the search.",
        100.0 * idle_fraction
    );
    Ok(decoded)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One runtime serves every microphone: shared graph, shared pools,
    // shared executor.
    let runtime = AsrRuntime::demo()?;
    let mic_a_commands: Vec<Vec<&str>> = vec![
        vec!["lights", "on"],
        vec!["play", "music"],
        vec!["call", "mom"],
    ];
    let mic_b_commands: Vec<Vec<&str>> =
        vec![vec!["stop"], vec!["lights", "off"], vec!["go", "home"]];

    println!(
        "one runtime ({} executor lane(s)), two concurrent microphone threads\n",
        runtime.lanes()
    );

    // Each mic is a plain spawned thread holding a clone of the runtime
    // handle; the sessions it opens are owned and Send.
    let handle_a = {
        let runtime = runtime.clone();
        let commands = mic_a_commands.clone();
        std::thread::spawn(move || run_mic(runtime, "mic-A", commands))
    };
    let handle_b = {
        let runtime = runtime.clone();
        let commands = mic_b_commands.clone();
        std::thread::spawn(move || run_mic(runtime, "mic-B", commands))
    };
    let decoded_a = handle_a
        .join()
        .expect("mic-A thread")
        .map_err(|e| e.to_string())?;
    let decoded_b = handle_b
        .join()
        .expect("mic-B thread")
        .map_err(|e| e.to_string())?;

    let mut correct = 0;
    let mut total = 0;
    for (mic, commands, decoded) in [
        ("mic-A", &mic_a_commands, &decoded_a),
        ("mic-B", &mic_b_commands, &decoded_b),
    ] {
        let expected: Vec<String> = commands.iter().map(|c| c.join(" ")).collect();
        println!("\n[{mic}] expected: {expected:?}");
        println!("[{mic}] decoded:  {decoded:?}");
        correct += decoded
            .iter()
            .zip(&expected)
            .filter(|(d, e)| d == e)
            .count();
        total += expected.len();
    }
    let stats = runtime.scratch_pool().stats();
    println!(
        "\n{correct}/{total} commands correct across both mics; scratch pool: \
         {} cold / {} warm checkouts, {} idle",
        stats.cold_checkouts,
        stats.warm_checkouts,
        runtime.scratch_pool().idle()
    );
    Ok(())
}
