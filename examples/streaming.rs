//! Microphone-style streaming recognition: raw audio in, words out, with
//! VAD-gated auto-endpointing.
//!
//! An always-on device hears a long audio stream in which short commands
//! are separated by silence. Samples arrive in 10 ms packets (160 samples
//! at 16 kHz), exactly as a microphone driver would deliver them:
//!
//! * a streaming [`Endpointer`] (causal energy VAD + trailing-silence
//!   counter) decides when speech starts and when an utterance has ended —
//!   no lookahead over the whole stream;
//! * while speech is active, packets flow into a [`StreamingSession`] via
//!   `push_samples`: the pooled online front-end (streaming MFCC + Δ/ΔΔ
//!   lookahead + template scorer) fills the session's double-buffered row
//!   pair — the software image of the paper's GPU filling the Acoustic
//!   Likelihood Buffer — and partial hypotheses firm up as the command is
//!   still being spoken;
//! * a small packet delay line drops the VAD's hangover padding before it
//!   reaches the search, so trailing near-silence is never force-aligned
//!   onto phones (the streaming analogue of trimming batch VAD segments);
//! * at the endpoint the session finalizes with the batch decoder's
//!   end-of-utterance semantics: the transcript is byte-identical to
//!   batch-recognizing the same speech frames.
//!
//! ```text
//! cargo run --release --example streaming
//! ```
//!
//! [`Endpointer`]: asr_repro::acoustic::vad::Endpointer
//! [`StreamingSession`]: asr_repro::pipeline::StreamingSession

use asr_repro::acoustic::signal::{render_phones, SignalConfig};
use asr_repro::acoustic::vad::{Endpointer, VadConfig};
use asr_repro::pipeline::AsrPipeline;
use asr_repro::wfst::PhoneId;
use std::collections::VecDeque;

/// Samples per packet: one 10 ms frame, the microphone-driver granularity.
const PACKET: usize = 160;

/// Frames of raw silence after speech that close the utterance (300 ms).
const ENDPOINT_SILENCE: usize = 30;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pipeline = AsrPipeline::demo()?;
    let signal = SignalConfig::default();
    let silence = |frames: usize| render_phones(&[PhoneId::EPSILON], frames, &signal);

    // Build a 10-ish second stream: silence, command, silence, command...
    let commands: Vec<Vec<&str>> = vec![
        vec!["lights", "on"],
        vec!["play", "music"],
        vec!["call", "mom"],
    ];
    let mut stream: Vec<f32> = silence(40);
    for cmd in &commands {
        let utt = pipeline.render_words(cmd)?;
        stream.extend_from_slice(&utt.samples);
        stream.extend(silence(40));
    }
    println!(
        "stream: {:.1} s of audio, {} embedded commands, {PACKET}-sample packets",
        stream.len() as f64 / 16_000.0,
        commands.len()
    );

    let vad_cfg = VadConfig::default();
    let mut endpointer = Endpointer::new(vad_cfg, ENDPOINT_SILENCE);
    // Packets ride a delay line `hangover` deep while speech is active, so
    // the VAD's hangover padding (near-silence kept active to bridge
    // short pauses) can be dropped at the endpoint instead of decoded.
    let mut delay: VecDeque<Vec<f32>> = VecDeque::new();
    let mut session = None;
    let mut decoded: Vec<String> = Vec::new();
    let mut speech_packets = 0usize;

    for packet in stream.chunks(PACKET) {
        let endpoint = endpointer.push_samples(packet);
        // Gate on the per-frame VAD decision: packets flow to the
        // recognizer only while the detector hears speech (or its
        // hangover), not through the pre-endpoint silence.
        if endpointer.last_frame_active() {
            if session.is_none() {
                println!(
                    "  [{:>5.2}s] speech detected, session opened",
                    endpointer.frames() as f64 * 0.01
                );
                session = Some(pipeline.open_session());
                delay.clear();
            }
            delay.push_back(packet.to_vec());
            while delay.len() > vad_cfg.hangover {
                let ready = delay.pop_front().expect("non-empty delay line");
                let s = session.as_mut().expect("open session");
                s.push_samples(&ready);
                speech_packets += 1;
                if speech_packets.is_multiple_of(10) {
                    if let Some(partial) = s.partial() {
                        println!(
                            "    after {:>3} frames: {:?} (cost {:.2})",
                            partial.frames_decoded, partial.words, partial.cost
                        );
                    }
                }
            }
        }
        if endpoint {
            // The delay line still holds the hangover padding: drop it.
            let dropped = delay.len();
            delay.clear();
            let transcript = session.take().expect("endpoint implies session").finalize();
            println!(
                "  [{:>5.2}s] endpoint after {ENDPOINT_SILENCE} silent frames \
                 ({dropped} hangover packets trimmed)",
                endpointer.frames() as f64 * 0.01
            );
            println!(
                "    final: {:?} (cost {:.2}, reached final: {})",
                transcript.words, transcript.cost, transcript.reached_final
            );
            decoded.push(transcript.words.join(" "));
        }
    }
    if let Some(mut s) = session.take() {
        // Stream ended before an endpoint fired. If the VAD was still
        // active on the final frame the delay line holds real speech —
        // drain it before finalizing; if the tail had already gone
        // silent it holds hangover padding, which stays trimmed.
        if endpointer.last_frame_active() {
            for packet in delay.drain(..) {
                s.push_samples(&packet);
            }
        }
        decoded.push(s.finalize().words.join(" "));
    }

    let expected: Vec<String> = commands.iter().map(|c| c.join(" ")).collect();
    println!("\nexpected: {expected:?}");
    println!("decoded:  {decoded:?}");
    let correct = decoded
        .iter()
        .zip(&expected)
        .filter(|(d, e)| d == e)
        .count();
    println!(
        "{}/{} commands correct; pools hold {} decode scratch(es)",
        correct,
        expected.len(),
        pipeline.scratch_pool().idle()
    );
    let active = speech_packets as f64 / (stream.len() / PACKET) as f64;
    println!(
        "idle {:.0}% of the stream never reached the front-end or the search.",
        100.0 * (1.0 - active)
    );
    Ok(())
}
