//! Streaming recognition with voice-activity endpointing.
//!
//! An always-on device records a long audio stream in which short commands
//! are separated by silence. A cheap energy VAD gates the expensive
//! pipeline: only detected speech segments reach the (simulated)
//! accelerator, exactly how a mobile deployment of the paper's design
//! would conserve power.
//!
//! ```text
//! cargo run --release --example streaming
//! ```

use asr_repro::accel::config::{AcceleratorConfig, DesignPoint};
use asr_repro::acoustic::signal::{render_phones, SignalConfig, Utterance};
use asr_repro::acoustic::vad::{Vad, VadConfig};
use asr_repro::pipeline::AsrPipeline;
use asr_repro::wfst::PhoneId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pipeline = AsrPipeline::demo()?;
    let signal = SignalConfig::default();
    let silence = |frames: usize| render_phones(&[PhoneId::EPSILON], frames, &signal);

    // Build a 10-ish second stream: silence, command, silence, command...
    let commands: Vec<Vec<&str>> = vec![
        vec!["lights", "on"],
        vec!["play", "music"],
        vec!["call", "mom"],
    ];
    let mut stream: Vec<f32> = silence(40);
    let mut boundaries = Vec::new();
    for cmd in &commands {
        let utt = pipeline.render_words(cmd)?;
        boundaries.push(stream.len());
        stream.extend_from_slice(&utt.samples);
        stream.extend(silence(40));
    }
    println!(
        "stream: {:.1} s of audio, {} embedded commands",
        stream.len() as f64 / 16_000.0,
        commands.len()
    );

    // Endpoint with the VAD.
    let vad_cfg = VadConfig::default();
    let vad = Vad::new(vad_cfg);
    let activity = vad.detect(&stream);
    // Undo the hangover padding before decoding: trailing silence would
    // otherwise be force-aligned onto phones.
    let segments = activity.segments_trimmed(vad_cfg.hangover);
    println!(
        "VAD: {:.0}% active, {} segments detected",
        100.0 * activity.activity_ratio(),
        segments.len()
    );

    // Decode each detected segment on the accelerator.
    let cfg = AcceleratorConfig::for_design(DesignPoint::StateAndArc);
    let frame = 160usize;
    let mut decoded = Vec::new();
    let mut total_cycles = 0u64;
    for &(first, last) in &segments {
        let lo = first * frame;
        let hi = ((last + 1) * frame).min(stream.len());
        let utt = Utterance {
            samples: stream[lo..hi].to_vec(),
            frame_phones: Vec::new(), // unknown: this is recognition
        };
        let (transcript, result) = pipeline.recognize_on_accelerator(&utt, cfg.clone())?;
        println!(
            "  frames {first:>3}-{last:<3} -> {:?} ({} cycles)",
            transcript.words, result.stats.cycles
        );
        decoded.push(transcript.words.join(" "));
        total_cycles += result.stats.cycles;
    }

    let expected: Vec<String> = commands.iter().map(|c| c.join(" ")).collect();
    println!("\nexpected: {expected:?}");
    println!("decoded:  {decoded:?}");
    let correct = decoded
        .iter()
        .zip(&expected)
        .filter(|(d, e)| d == e)
        .count();
    println!(
        "{}/{} commands correct; {} accelerator cycles total ({:.1} us at 600 MHz)",
        correct,
        expected.len(),
        total_cycles,
        total_cycles as f64 / 600.0
    );
    // The VAD advantage: decode time covers only active audio.
    let active_fraction = activity.activity_ratio();
    println!(
        "idle {:.0}% of the stream never reached the search pipeline.",
        100.0 * (1.0 - active_fraction)
    );
    Ok(())
}
