//! Voice-command scenario: the paper's motivating use case.
//!
//! A smart-home assistant decodes a battery of spoken commands; we measure
//! accuracy (WER), then compare what each platform would pay for a day of
//! such interactions — the energy argument at the heart of the paper's
//! introduction (cloud offload vs local CPU vs dedicated accelerator).
//!
//! ```text
//! cargo run --release --example voice_commands
//! ```

use asr_repro::accel::config::{AcceleratorConfig, DesignPoint};
use asr_repro::accel::energy::EnergyModel;
use asr_repro::pipeline::AsrPipeline;
use asr_repro::platform::{CpuModel, GpuModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pipeline = AsrPipeline::demo()?;
    let commands: Vec<Vec<&str>> = vec![
        vec!["call", "mom"],
        vec!["play", "music"],
        vec!["stop"],
        vec!["go", "home"],
        vec!["lights", "on"],
        vec!["lights", "off"],
        vec!["music", "off"],
        vec!["call", "home"],
    ];

    let cfg = AcceleratorConfig::for_design(DesignPoint::StateAndArc);
    let energy_model = EnergyModel::default();
    let mut total_wer = 0.0;
    let mut total_cycles = 0u64;
    let mut total_energy_j = 0.0;
    let mut total_arcs = 0u64;
    let mut total_frames = 0usize;

    println!(
        "{:<24} {:<24} {:>6} {:>10}",
        "spoken", "recognized", "WER", "cycles"
    );
    for cmd in &commands {
        let audio = pipeline.render_words(cmd)?;
        let (transcript, result) = pipeline.recognize_on_accelerator(&audio, cfg.clone())?;
        let wer = pipeline.wer(cmd, &transcript);
        total_wer += wer;
        total_cycles += result.stats.cycles;
        total_arcs += result.stats.arcs_processed + result.stats.eps_arcs_processed;
        total_frames += result.stats.frames;
        total_energy_j += energy_model.energy(&cfg, &result.stats).total_j();
        println!(
            "{:<24} {:<24} {:>5.0}% {:>10}",
            cmd.join(" "),
            transcript.words.join(" "),
            100.0 * wer,
            result.stats.cycles
        );
    }
    let n = commands.len() as f64;
    println!("\nmean WER: {:.1}%", 100.0 * total_wer / n);

    // The battery argument: energy for 500 such commands a day.
    let arcs_per_frame = total_arcs as f64 / total_frames as f64;
    let speech_s = total_frames as f64 * 0.01;
    let cpu = CpuModel::default().viterbi_point(arcs_per_frame);
    let gpu = GpuModel::default().viterbi_point(arcs_per_frame);
    let per_day = 500.0 / n; // scale the batch to 500 commands
    println!("\nprojected search energy for 500 commands/day:");
    println!(
        "  CPU (Kaldi-class software):   {:>9.2} J",
        cpu.energy_j_per_speech_s * speech_s * per_day
    );
    println!(
        "  GPU (CUDA decoder):           {:>9.2} J",
        gpu.energy_j_per_speech_s * speech_s * per_day
    );
    println!(
        "  accelerator (this work):      {:>9.4} J  ({} cycles total today)",
        total_energy_j * per_day,
        total_cycles
    );
    Ok(())
}
