# Developer entry points for the MICRO 2016 ASR accelerator reproduction.
# Usage: `just <target>` (or copy the command lines directly; everything is
# plain cargo, offline, no external dependencies).

# Build everything in release mode.
build:
    cargo build --release

# Run the full workspace test suite (tier-1 verify).
test:
    cargo build --release && cargo test -q

# Formatting and lints, as CI runs them.
check:
    cargo fmt --check
    cargo clippy --workspace --all-targets -- -D warnings

# The repo's custom static-analysis pass: SAFETY comments on every
# unsafe, Ordering/raw-pointer allowlists, no-panic hot paths, and
# repr(C) size/align asserts. Exits non-zero on any finding.
lint:
    cargo run --release -p asr-verify --bin asr-lint .

# Exhaustive model checking of the lock-free executor: the checker's
# own litmus self-tests (correct idioms pass, seeded bugs are caught),
# then the pool harnesses (ChaseLev pop-vs-steal, injector full-ring
# helping, eventcount lost wakeup, batch slot generations) compiled
# against the shadow sync facade.
model-check:
    cargo test -q -p asr-verify
    cargo test -q -p asr-decoder --features model-check --lib model_check

# Targeted Miri over the unsafe suites (needs a nightly toolchain with
# the miri + rust-src components; CI runs this, offline boxes may not
# have it installed).
miri:
    @rustup component list --toolchain nightly 2>/dev/null | grep -q 'miri.*(installed)' \
        && { cargo +nightly miri test -p asr-decoder --lib token_table; \
             cargo +nightly miri test -p asr-decoder --lib stream; \
             cargo +nightly miri test -p asr-wfst --lib store; } \
        || echo "miri: nightly component not installed; skipping (CI runs this)"

# ThreadSanitizer over the executor and runtime concurrency suites
# (needs nightly + rust-src for -Z build-std; CI runs this).
tsan:
    @rustup component list --toolchain nightly 2>/dev/null | grep -q 'rust-src.*(installed)' \
        && { RUSTFLAGS="-Z sanitizer=thread" cargo +nightly test -Z build-std \
                 --target x86_64-unknown-linux-gnu -p asr-decoder --lib pool; \
             RUSTFLAGS="-Z sanitizer=thread" cargo +nightly test -Z build-std \
                 --target x86_64-unknown-linux-gnu -p asr-repro --lib runtime; } \
        || echo "tsan: nightly rust-src not installed; skipping (CI runs this)"

# The full verification gate: custom lint, exhaustive model check, then
# the tier-1 build+test suite.
verify: lint model-check test

# Decode-throughput benchmark: token-table engine vs the HashMap
# reference; writes BENCH_decode.json at the repo root.
bench-decode:
    cargo run --release -p asr-bench --bin bench_decode

# Serving-path benchmark: persistent pools vs per-request construction,
# plus the runtime concurrency sweep; splices a "serving" section into
# BENCH_decode.json.
bench-serving:
    cargo run --release -p asr-bench --bin bench_serving

# Runtime concurrency sweep (shared lock-free work-stealing executor vs
# private per-decoder pools at 1/2/4/8/16/32 concurrent sessions, plus
# the lanes-vs-throughput curve) — the same binary as bench-serving with
# the sweep sizes spelled out; part of the "serving" section of
# BENCH_decode.json.
bench-runtime:
    cargo run --release -p asr-bench --bin bench_serving -- --sessions 1,2,4,8,16,32 --lanes 1,2,4,8

# Open-loop overload harness: Poisson arrivals at 1x/2x the calibrated
# saturation rate against fixed-beam vs QoS-degrading runtimes; splices a
# "load" section into BENCH_decode.json (bar: fixed p99 >= 3x QoS p99 at
# 2x, zero panics, shed counts reported).
bench-load:
    cargo run --release -p asr-bench --bin bench_load -- --arrivals 150 --loads 1,2

# Cross-session batched scoring benchmark: N concurrent sessions through
# the gather window (one block forward pass per window) vs per-session
# forward passes, byte-identity checked on every transcript; splices a
# "batch" section into BENCH_decode.json (bar: batched beats per-session
# frames/sec at 8+ concurrent sessions).
bench-batch:
    cargo run --release -p asr-bench --bin bench_batch

# Graph-store benchmark: v2 image load vs SortedWfst rebuild across graph
# sizes, plus a decode head-to-head over the image-backed vs owned graph;
# splices a "store" section into BENCH_decode.json (bar: 200k-state image
# load >= 10x faster than the builder, decode byte-identical).
bench-store:
    cargo run --release -p asr-bench --bin bench_store

# Front-end benchmark: streaming MFCC/scorer vs the batch path; splices a
# "frontend" section into BENCH_decode.json (bar: online <= 1.25x batch).
bench-frontend:
    cargo run --release -p asr-bench --bin bench_frontend

# Accelerator-simulator benchmark: all four design points on the pinned
# fixture, cycles/frame + RTF at the paper's 600 MHz clock, base-design
# counter deltas vs the pre-port (HashMap-era) simulator; splices an
# "accel" section into BENCH_decode.json and fails if any delta is
# non-zero.
bench-accel:
    cargo run --release -p asr-bench --bin bench_accel

# Rustdoc for the whole workspace, warnings denied (as CI runs it).
doc:
    RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

# Criterion microbenchmarks (hardware building blocks + decoders).
bench-micro:
    cargo bench -p asr-bench --bench micro

# Per-figure experiment binaries land JSON under target/experiments/.
figures:
    cargo run --release -p asr-bench --bin fig09_decoding_time -- --scale small
    cargo run --release -p asr-bench --bin fig10_speedup -- --scale small
