//! `asr-repro`: facade crate for the reproduction of *"An Ultra Low-Power
//! Hardware Accelerator for Automatic Speech Recognition"* (Yazdani et al.,
//! MICRO 2016).
//!
//! The workspace rebuilds the paper's entire system in Rust:
//!
//! | crate | contents |
//! |---|---|
//! | [`wfst`] | recognition-network substrate: packed WFSTs, composition, the degree-sorted layout, synthetic Kaldi-statistics models |
//! | [`acoustic`] | MFCC front-end (FFT, mel, DCT), MLP acoustic model, template scorer, synthetic speech |
//! | [`decoder`] | reference software Viterbi beam search (tokens, pruning, epsilon closure, backtracking, WER) |
//! | [`accel`] | the paper's contribution: a cycle-accurate simulator of the 5-stage accelerator, its caches, hash tables, arc prefetcher, state-layout optimization, and energy/area models |
//! | [`platform`] | calibrated CPU/GPU baselines and the pipelined full-system model |
//!
//! This crate re-exports them and adds [`pipeline::AsrPipeline`], a
//! high-level "microphone to words" API used by the runnable examples.
//! The pipeline is a *serving* facade: it pools warmed decode working
//! sets ([`decoder::pool::ScratchPool`]) so repeated recognitions are
//! allocation-free per frame, and it exposes streaming sessions
//! ([`pipeline::StreamingSession`]) that consume acoustic score rows as
//! they are produced — the software image of the paper's batch-pipelined
//! GPU-to-accelerator handoff.
//!
//! # Quick start
//!
//! ```
//! use asr_repro::pipeline::AsrPipeline;
//!
//! let pipeline = AsrPipeline::demo()?;
//! let audio = pipeline.render_words(&["call", "mom"])?;
//! let transcript = pipeline.recognize(&audio);
//! assert_eq!(transcript.words, vec!["call", "mom"]);
//! # Ok::<(), asr_repro::PipelineError>(())
//! ```
//!
//! For incremental input, open a session (see
//! [`AsrPipeline::open_session`] for a runnable example): push score
//! rows, pull [`pipeline::Hypothesis`] partials, and `finalize()` into
//! the same transcript the batch path produces.

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub use asr_accel as accel;
pub use asr_acoustic as acoustic;
pub use asr_decoder as decoder;
pub use asr_platform as platform;
pub use asr_wfst as wfst;

pub mod pipeline;

pub use pipeline::{AsrPipeline, Hypothesis, PipelineError, StreamingSession, Transcript};
