//! `asr-repro`: facade crate for the reproduction of *"An Ultra Low-Power
//! Hardware Accelerator for Automatic Speech Recognition"* (Yazdani et al.,
//! MICRO 2016).
//!
//! The workspace rebuilds the paper's entire system in Rust:
//!
//! | crate | contents |
//! |---|---|
//! | [`wfst`] | recognition-network substrate: packed WFSTs, composition, the degree-sorted layout, synthetic Kaldi-statistics models |
//! | [`acoustic`] | MFCC front-end (FFT, mel, DCT), MLP acoustic model, template scorer, synthetic speech |
//! | [`decoder`] | reference software Viterbi beam search (tokens, pruning, epsilon closure, backtracking, WER) |
//! | [`accel`] | the paper's contribution: a cycle-accurate simulator of the 5-stage accelerator, its caches, hash tables, arc prefetcher, state-layout optimization, and energy/area models |
//! | [`platform`] | calibrated CPU/GPU baselines and the pipelined full-system model |
//!
//! This crate re-exports them and adds the serving layer:
//! [`runtime::AsrRuntime`], a shared "microphone to words" runtime that
//! owns the engine state behind an `Arc` plus **one global work-stealing
//! executor**, and hands out owned [`runtime::Session`]s
//! (`Send + 'static`) that any thread can drive and migrate
//! mid-utterance. Scratches and front-ends are pooled
//! ([`decoder::pool::ScratchPool`]) so repeated recognitions are
//! allocation-free per frame; on a multi-lane runtime each session
//! overlaps the scoring of frame *i + 1* with the search of frame *i*
//! (the paper's Section VI pipelining) with byte-identical results. The
//! pre-runtime facade [`pipeline::AsrPipeline`] survives as a thin
//! wrapper.
//!
//! # Quick start
//!
//! ```
//! use asr_repro::runtime::AsrRuntime;
//!
//! let runtime = AsrRuntime::demo()?;
//! let audio = runtime.render_words(&["call", "mom"])?;
//! let transcript = runtime.recognize(&audio);
//! assert_eq!(transcript.words, vec!["call", "mom"]);
//! # Ok::<(), asr_repro::PipelineError>(())
//! ```
//!
//! For incremental input, open an owned session (see
//! [`AsrRuntime::open_session`] for a runnable example): push raw
//! samples or score rows, pull [`runtime::Hypothesis`] partials — from
//! any thread — and `finalize()` into the same transcript the batch
//! path produces.

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub use asr_accel as accel;
pub use asr_acoustic as acoustic;
pub use asr_decoder as decoder;
pub use asr_platform as platform;
pub use asr_wfst as wfst;

pub mod pipeline;
pub mod runtime;

pub use pipeline::{AsrPipeline, StreamingSession};
pub use runtime::{
    AsrRuntime, BatchScoringConfig, BatchScoringStats, Hypothesis, ModelStats, PipelineError,
    QosPolicy, QosTier, RuntimeConfig, RuntimeError, RuntimeStats, ScoresRoute, Session,
    SessionOptions, Transcript,
};
