//! The legacy single-tenant facade, kept as a thin wrapper over
//! [`AsrRuntime`].
//!
//! **Deprecated in favour of [`crate::runtime`].** `AsrPipeline` predates
//! the shared runtime: its sessions borrow the pipeline
//! (`StreamingSession<'_>` cannot leave the thread-of-birth's borrow
//! scope), and historically every parallel decoder hoarded a private
//! worker pool. Both limitations are gone underneath — the pipeline now
//! *is* a runtime handle, every call delegates, and the borrowed
//! session is an owned [`Session`] wearing a lifetime for source
//! compatibility — but new code should hold an [`AsrRuntime`] directly:
//! it adds owned `Send + 'static` sessions, the shared work-stealing
//! executor, configuration builders, and lane-leased batch decoders.
//!
//! Everything documented here keeps its behaviour: pooled scratches,
//! zero steady-state allocations per frame, byte-identical streaming
//! (`tests/facade_alloc.rs`, `tests/serving.rs`, `tests/audio_session.rs`
//! all still pin this surface).

use crate::runtime::{AsrRuntime, Session};
use asr_accel::config::AcceleratorConfig;
use asr_accel::sim::SimResult;
use asr_acoustic::scores::AcousticTable;
use asr_acoustic::signal::Utterance;
use asr_decoder::pool::ScratchPool;
use asr_decoder::search::DecodeOptions;
use asr_wfst::grammar::Grammar;
use asr_wfst::lexicon::Lexicon;
use asr_wfst::Wfst;
use std::marker::PhantomData;

pub use crate::runtime::{Hypothesis, PipelineError, Transcript};

/// A complete small-vocabulary ASR system — the legacy name for a
/// [`AsrRuntime`] handle (see the module docs; prefer the runtime in new
/// code).
#[derive(Debug)]
pub struct AsrPipeline {
    runtime: AsrRuntime,
}

impl AsrPipeline {
    /// Builds a pipeline from a lexicon and grammar.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Wfst`] if the decoding graph cannot be
    /// composed.
    pub fn new(lexicon: Lexicon, grammar: &Grammar) -> Result<Self, PipelineError> {
        Ok(Self {
            runtime: AsrRuntime::new(lexicon, grammar)?,
        })
    }

    /// The ready-made demo system: twelve command words, uniform grammar.
    ///
    /// # Errors
    ///
    /// Propagates graph construction failures (none for the built-in data).
    pub fn demo() -> Result<Self, PipelineError> {
        Ok(Self {
            runtime: AsrRuntime::demo()?,
        })
    }

    /// The runtime this facade wraps — the full API (owned sessions,
    /// executor, configuration) lives there.
    pub fn runtime(&self) -> &AsrRuntime {
        &self.runtime
    }

    /// Unwraps the facade into its runtime handle.
    pub fn into_runtime(self) -> AsrRuntime {
        self.runtime
    }

    /// The decoding graph (for inspection and accelerator experiments).
    pub fn graph(&self) -> &Wfst {
        self.runtime.graph()
    }

    /// The lexicon.
    pub fn lexicon(&self) -> &Lexicon {
        self.runtime.lexicon()
    }

    /// The beam-search options every software decode uses.
    pub fn options(&self) -> &DecodeOptions {
        self.runtime.options()
    }

    /// The scratch pool backing the serving path (for observability:
    /// [`ScratchPool::stats`] splits cold checkouts from warm restores).
    pub fn scratch_pool(&self) -> &ScratchPool {
        self.runtime.scratch_pool()
    }

    /// Renders a synthetic utterance speaking `words`.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::UnknownWord`] for out-of-vocabulary words.
    pub fn render_words(&self, words: &[&str]) -> Result<Utterance, PipelineError> {
        self.runtime.render_words(words)
    }

    /// Scores a waveform into the per-frame acoustic cost table the
    /// search consumes — the scoring stage of the paper's pipeline,
    /// exposed so callers can split scoring from search (batch scoring,
    /// then streaming the rows through a session).
    pub fn score(&self, utterance: &Utterance) -> AcousticTable {
        self.runtime.score(utterance)
    }

    /// Recognizes a waveform with the software decoder, through the
    /// pooled serving path (a one-shot session internally — see
    /// [`AsrRuntime::recognize`]).
    pub fn recognize(&self, utterance: &Utterance) -> Transcript {
        self.runtime.recognize(utterance)
    }

    /// Recognizes a pre-scored utterance (the accelerator-style
    /// deployment, where the acoustic model runs elsewhere) through the
    /// pooled serving path: the decode reuses a warmed scratch from the
    /// pool and is allocation-free per frame in the steady state.
    pub fn recognize_scores(&self, scores: &AcousticTable) -> Transcript {
        self.runtime.recognize_scores(scores)
    }

    /// Opens a streaming recognition session: push score frames as they
    /// are produced, pull partial hypotheses, then
    /// [`StreamingSession::finalize`].
    ///
    /// The session mirrors the paper's batch-pipelined handoff (Section
    /// VI): incoming rows land in the *staging* half of a double-buffered
    /// row pair — the software image of the Acoustic Likelihood Buffer —
    /// and the search consumes the *front* half one row behind, so the
    /// final row can receive the batch decoder's end-of-utterance
    /// treatment. Finalizing therefore yields exactly the transcript
    /// [`AsrPipeline::recognize_scores`] produces for the same rows.
    ///
    /// The returned session is an owned [`Session`] wearing the
    /// pipeline's lifetime for source compatibility; use
    /// [`AsrRuntime::open_session`] for one that is `Send + 'static`.
    ///
    /// # Example
    ///
    /// ```
    /// use asr_repro::pipeline::AsrPipeline;
    ///
    /// let pipeline = AsrPipeline::demo()?;
    /// let audio = pipeline.render_words(&["play", "music"])?;
    /// let scores = pipeline.score(&audio);
    ///
    /// let mut session = pipeline.open_session();
    /// for frame in 0..scores.num_frames() {
    ///     session.push_row(scores.frame_row(frame));
    /// }
    /// if let Some(partial) = session.partial() {
    ///     assert!(partial.frames_decoded < scores.num_frames());
    /// }
    /// let transcript = session.finalize();
    /// assert_eq!(transcript.words, vec!["play", "music"]);
    /// # Ok::<(), asr_repro::PipelineError>(())
    /// ```
    pub fn open_session(&self) -> StreamingSession<'_> {
        StreamingSession {
            session: self.runtime.open_session(),
            _pipeline: PhantomData,
        }
    }

    /// Recognizes a waveform on the simulated accelerator, returning the
    /// transcript together with the full hardware result (cycles, traffic,
    /// cache statistics).
    ///
    /// # Errors
    ///
    /// Propagates WFST re-layout failures for state-optimized designs.
    pub fn recognize_on_accelerator(
        &self,
        utterance: &Utterance,
        cfg: AcceleratorConfig,
    ) -> Result<(Transcript, SimResult), PipelineError> {
        self.runtime.recognize_on_accelerator(utterance, cfg)
    }

    /// Word error rate of a hypothesis against a reference word sequence.
    pub fn wer(&self, reference: &[&str], transcript: &Transcript) -> f64 {
        self.runtime.wer(reference, transcript)
    }
}

/// An in-flight streaming recognition bound to a borrowed
/// [`AsrPipeline`] — the legacy session type.
///
/// Created by [`AsrPipeline::open_session`]. Underneath it is an owned
/// runtime [`Session`]; the lifetime exists only for source
/// compatibility with pre-runtime callers. Push acoustic score rows with
/// [`StreamingSession::push_row`]/[`StreamingSession::push_frames`] or
/// raw audio with [`StreamingSession::push_samples`], read the evolving
/// best hypothesis with [`StreamingSession::partial`], and end with
/// [`StreamingSession::finalize`]. Dropping a session without finalizing
/// returns its warmed scratch to the pipeline's pool.
///
/// Sessions are independent: any number may be open concurrently, from
/// any threads, against one pipeline.
#[derive(Debug)]
pub struct StreamingSession<'p> {
    session: Session,
    _pipeline: PhantomData<&'p AsrPipeline>,
}

impl StreamingSession<'_> {
    /// Pushes raw 16 kHz audio samples, in any chunking (see
    /// [`Session::push_samples`]).
    pub fn push_samples(&mut self, samples: &[f32]) {
        self.session.push_samples(samples);
    }

    /// Pushes one frame's acoustic score row (see [`Session::push_row`]).
    ///
    /// # Panics
    ///
    /// Panics if the session has been fed raw audio via
    /// [`StreamingSession::push_samples`]: the front-end's lookahead
    /// frames would be searched after this row, reordering the utterance.
    pub fn push_row(&mut self, row: &[f32]) {
        self.session.push_row(row);
    }

    /// Pushes every frame of a scored batch, in order.
    pub fn push_frames(&mut self, scores: &AcousticTable) {
        self.session.push_frames(scores);
    }

    /// Frames pushed into the session so far.
    pub fn frames_pushed(&self) -> usize {
        self.session.frames_pushed()
    }

    /// The current best hypothesis (see [`Session::partial`]).
    pub fn partial(&self) -> Option<Hypothesis> {
        self.session.partial()
    }

    /// Ends the utterance and returns the transcript (see
    /// [`Session::finalize`]): byte-identical to
    /// [`AsrPipeline::recognize_scores`] over the same rows.
    pub fn finalize(self) -> Transcript {
        self.session.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asr_accel::config::DesignPoint;

    #[test]
    fn demo_pipeline_recognizes_each_word() {
        let p = AsrPipeline::demo().unwrap();
        for word in ["go", "stop", "low", "music"] {
            let audio = p.render_words(&[word]).unwrap();
            let t = p.recognize(&audio);
            assert_eq!(t.words, vec![word], "failed on {word:?}");
            assert!(t.reached_final);
        }
    }

    #[test]
    fn demo_pipeline_recognizes_sequences() {
        let p = AsrPipeline::demo().unwrap();
        let audio = p.render_words(&["lights", "on"]).unwrap();
        let t = p.recognize(&audio);
        assert_eq!(t.words, vec!["lights", "on"]);
        assert_eq!(p.wer(&["lights", "on"], &t), 0.0);
    }

    #[test]
    fn repeated_recognize_reuses_pooled_scratch() {
        let p = AsrPipeline::demo().unwrap();
        let audio = p.render_words(&["go"]).unwrap();
        assert_eq!(p.scratch_pool().idle(), 0);
        let first = p.recognize(&audio);
        assert_eq!(p.scratch_pool().idle(), 1, "scratch returned to the pool");
        for _ in 0..3 {
            assert_eq!(p.recognize(&audio), first);
        }
        assert_eq!(
            p.scratch_pool().idle(),
            1,
            "sequential decodes share one scratch"
        );
        let stats = p.scratch_pool().stats();
        assert_eq!(stats.cold_checkouts, 1, "only the first checkout was cold");
        assert_eq!(stats.warm_checkouts, 3);
    }

    #[test]
    fn session_matches_batch_recognize() {
        let p = AsrPipeline::demo().unwrap();
        for words in [vec!["go"], vec!["lights", "on"], vec!["call", "mom"]] {
            let audio = p.render_words(&words).unwrap();
            let scores = p.score(&audio);
            let batch = p.recognize_scores(&scores);
            let mut session = p.open_session();
            session.push_frames(&scores);
            assert_eq!(session.frames_pushed(), scores.num_frames());
            let streamed = session.finalize();
            assert_eq!(streamed.words, batch.words);
            assert_eq!(streamed.cost.to_bits(), batch.cost.to_bits());
            assert_eq!(streamed.reached_final, batch.reached_final);
        }
    }

    #[test]
    fn session_partials_evolve_toward_the_transcript() {
        let p = AsrPipeline::demo().unwrap();
        let audio = p.render_words(&["play", "music"]).unwrap();
        let scores = p.score(&audio);
        let mut session = p.open_session();
        let opening = session.partial().expect("start closure is live");
        assert_eq!(opening.frames_decoded, 0);
        assert!(opening.words.is_empty(), "nothing recognized before audio");
        let mut partials = 0;
        for frame in 0..scores.num_frames() {
            session.push_row(scores.frame_row(frame));
            if let Some(h) = session.partial() {
                assert_eq!(h.frames_decoded, frame, "search runs one row behind");
                partials += 1;
            }
        }
        assert!(partials > 0, "partials became available mid-utterance");
        let t = session.finalize();
        assert_eq!(t.words, vec!["play", "music"]);
    }

    #[test]
    fn dropped_session_returns_its_scratch() {
        let p = AsrPipeline::demo().unwrap();
        let audio = p.render_words(&["stop"]).unwrap();
        let scores = p.score(&audio);
        {
            let mut session = p.open_session();
            session.push_frames(&scores);
            // Dropped without finalize (caller went away mid-utterance).
        }
        assert_eq!(p.scratch_pool().idle(), 1);
        // The recovered scratch serves the next request.
        let t = p.recognize(&audio);
        assert_eq!(t.words, vec!["stop"]);
        assert_eq!(p.scratch_pool().idle(), 1);
    }

    #[test]
    fn empty_session_finalizes_gracefully() {
        let p = AsrPipeline::demo().unwrap();
        let t = p.open_session().finalize();
        assert!(t.words.is_empty());
        // Identical to a batch decode of zero frames.
        let empty = AcousticTable::from_fn(0, p.lexicon().num_phones() + 1, |_, _| 0.0);
        let batch = p.recognize_scores(&empty);
        assert_eq!(t, batch);
    }

    #[test]
    fn accelerator_matches_software_decoder() {
        let p = AsrPipeline::demo().unwrap();
        let audio = p.render_words(&["play", "music"]).unwrap();
        let sw = p.recognize(&audio);
        for design in DesignPoint::ALL {
            let (hw, result) = p
                .recognize_on_accelerator(&audio, AcceleratorConfig::for_design(design))
                .unwrap();
            assert_eq!(hw.words, sw.words, "{design:?}");
            assert_eq!(hw.cost, sw.cost, "{design:?}");
            assert!(result.stats.cycles > 0);
        }
    }

    #[test]
    fn unknown_word_is_reported() {
        let p = AsrPipeline::demo().unwrap();
        let err = p.render_words(&["xylophone"]).unwrap_err();
        assert_eq!(err, PipelineError::UnknownWord("xylophone".into()));
        assert!(err.to_string().contains("xylophone"));
    }

    #[test]
    fn wer_detects_errors() {
        let p = AsrPipeline::demo().unwrap();
        let t = Transcript {
            words: vec!["go".into(), "home".into()],
            cost: 0.0,
            reached_final: true,
        };
        assert_eq!(p.wer(&["go", "home"], &t), 0.0);
        assert!(p.wer(&["stop"], &t) > 0.0);
    }
}
