//! High-level ASR pipeline: waveform in, words out.
//!
//! Wires the substrates together the way the paper's Figure 3 system does:
//! a decoding graph compiled from a lexicon and grammar, an acoustic model
//! scoring 10 ms frames, and a Viterbi beam search — either the reference
//! software decoder (the "CPU" path) or the cycle-accurate accelerator
//! simulator (the "ASIC" path, which also yields hardware statistics).
//!
//! # Serving
//!
//! The pipeline is built to be held for the lifetime of a service, not a
//! single request. It owns a [`ScratchPool`] of warmed decode working
//! sets: every [`AsrPipeline::recognize`] call and every streaming
//! [`StreamingSession`] checks one out and returns it, so after the pool's
//! high-water mark is reached, the decode frame loop performs **zero
//! steady-state heap allocations** (pinned by `tests/facade_alloc.rs`).
//! Concurrent callers are fine — the pool grows to the peak concurrency
//! and stays there. For utterances that arrive incrementally, use
//! [`AsrPipeline::open_session`]: sessions accept either pre-scored rows
//! ([`StreamingSession::push_row`]) or raw 16 kHz audio
//! ([`StreamingSession::push_samples`]), the latter through a pooled
//! streaming front-end (incremental MFCC + scorer, see
//! `asr_acoustic::online`) whose output is bit-identical to batch
//! scoring. [`AsrPipeline::recognize`] itself runs on the online path,
//! so batch recognition and streaming share one front-end.

use asr_accel::config::AcceleratorConfig;
use asr_accel::sim::{PreparedWfst, SimResult, Simulator};
use asr_acoustic::online::{FrameScorer, OnlineMfcc};
use asr_acoustic::scores::AcousticTable;
use asr_acoustic::signal::{SignalConfig, Utterance};
use asr_acoustic::template::TemplateScorer;
use asr_decoder::pool::ScratchPool;
use asr_decoder::search::{DecodeOptions, ViterbiDecoder};
use asr_decoder::stream::StreamingDecode;
use asr_decoder::wer;
use asr_wfst::compose::build_decoding_graph;
use asr_wfst::grammar::Grammar;
use asr_wfst::lexicon::{demo_lexicon, Lexicon};
use asr_wfst::{PhoneId, Wfst, WfstError, WordId};
use std::fmt;
use std::sync::Mutex;

/// Errors from pipeline construction or use.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PipelineError {
    /// Underlying WFST construction failed.
    Wfst(WfstError),
    /// A word is not in the pipeline's lexicon.
    UnknownWord(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Wfst(e) => write!(f, "decoding-graph construction failed: {e}"),
            PipelineError::UnknownWord(w) => write!(f, "word {w:?} is not in the lexicon"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Wfst(e) => Some(e),
            PipelineError::UnknownWord(_) => None,
        }
    }
}

impl From<WfstError> for PipelineError {
    fn from(e: WfstError) -> Self {
        PipelineError::Wfst(e)
    }
}

/// A recognized utterance.
#[derive(Debug, Clone, PartialEq)]
pub struct Transcript {
    /// Recognized words, in order.
    pub words: Vec<String>,
    /// Viterbi path cost (lower is better).
    pub cost: f32,
    /// Whether the best path ended in a final state of the graph.
    pub reached_final: bool,
}

/// A mid-utterance hypothesis pulled from a [`StreamingSession`].
#[derive(Debug, Clone, PartialEq)]
pub struct Hypothesis {
    /// Words on the current best path, in utterance order.
    pub words: Vec<String>,
    /// Path cost of the current best token (no final cost applied).
    pub cost: f32,
    /// Frames the search has consumed so far (one behind the frames
    /// pushed: the newest row waits in the session's score buffer).
    pub frames_decoded: usize,
}

/// A complete small-vocabulary ASR system.
#[derive(Debug)]
pub struct AsrPipeline {
    lexicon: Lexicon,
    graph: Wfst,
    scorer: TemplateScorer,
    signal: SignalConfig,
    options: DecodeOptions,
    scratch_pool: ScratchPool,
    /// Warmed streaming front-ends (online MFCC state + scoring buffers),
    /// pooled like decode scratches so raw-audio sessions are
    /// allocation-free per frame in the steady state.
    frontend_pool: Mutex<Vec<SessionFrontend>>,
    frames_per_phone: usize,
}

/// The per-session streaming front-end: an [`OnlineMfcc`] plus the
/// feature/row buffers one frame of scoring works over. Checked out of
/// (and restored to) the pipeline's front-end pool.
#[derive(Debug)]
struct SessionFrontend {
    mfcc: OnlineMfcc,
    feat: Vec<f32>,
    row: Vec<f32>,
}

impl AsrPipeline {
    /// Builds a pipeline from a lexicon and grammar.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Wfst`] if the decoding graph cannot be
    /// composed.
    pub fn new(lexicon: Lexicon, grammar: &Grammar) -> Result<Self, PipelineError> {
        let graph = build_decoding_graph(&lexicon, grammar)?;
        let scorer = TemplateScorer::with_default_signal(lexicon.num_phones() as u32);
        let options = DecodeOptions::with_beam(40.0);
        let scratch_pool = ScratchPool::new(graph.num_states());
        Ok(Self {
            lexicon,
            graph,
            scorer,
            signal: SignalConfig::default(),
            options,
            scratch_pool,
            frontend_pool: Mutex::new(Vec::new()),
            frames_per_phone: 6,
        })
    }

    /// Pops a warmed streaming front-end, or builds the first one.
    fn checkout_frontend(&self) -> SessionFrontend {
        let pooled = self
            .frontend_pool
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop();
        match pooled {
            Some(mut fe) => {
                fe.mfcc.reset();
                fe
            }
            None => {
                let mfcc = OnlineMfcc::new(*self.scorer.mfcc_config());
                let dim = mfcc.dim();
                SessionFrontend {
                    mfcc,
                    feat: vec![0.0; dim],
                    row: vec![0.0; FrameScorer::row_len(&self.scorer)],
                }
            }
        }
    }

    /// Returns a front-end to the pool for the next raw-audio session.
    fn restore_frontend(&self, frontend: SessionFrontend) {
        self.frontend_pool
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(frontend);
    }

    /// The ready-made demo system: twelve command words, uniform grammar.
    ///
    /// # Errors
    ///
    /// Propagates graph construction failures (none for the built-in data).
    pub fn demo() -> Result<Self, PipelineError> {
        let lexicon = demo_lexicon();
        let words: Vec<WordId> = (1..=lexicon.num_words() as u32).map(WordId).collect();
        Self::new(lexicon, &Grammar::uniform(&words))
    }

    /// The decoding graph (for inspection and accelerator experiments).
    pub fn graph(&self) -> &Wfst {
        &self.graph
    }

    /// The lexicon.
    pub fn lexicon(&self) -> &Lexicon {
        &self.lexicon
    }

    /// The beam-search options every software decode uses.
    pub fn options(&self) -> &DecodeOptions {
        &self.options
    }

    /// The scratch pool backing the serving path (for observability:
    /// [`ScratchPool::idle`] is the warm-set high-water mark).
    pub fn scratch_pool(&self) -> &ScratchPool {
        &self.scratch_pool
    }

    /// Renders a synthetic utterance speaking `words`.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::UnknownWord`] for out-of-vocabulary words.
    pub fn render_words(&self, words: &[&str]) -> Result<Utterance, PipelineError> {
        let mut phones: Vec<PhoneId> = Vec::new();
        for word in words {
            let id = self
                .lexicon
                .word_id(word)
                .ok_or_else(|| PipelineError::UnknownWord((*word).to_owned()))?;
            let pron = self
                .lexicon
                .pronunciations()
                .iter()
                .find(|(w, _)| *w == id)
                .expect("lexicon invariant: every word has a pronunciation");
            phones.extend_from_slice(&pron.1);
        }
        Ok(Utterance::render(
            &phones,
            self.frames_per_phone,
            &self.signal,
        ))
    }

    /// Scores a waveform into the per-frame acoustic cost table the
    /// search consumes — the scoring stage of the paper's pipeline,
    /// exposed so callers can split scoring from search (batch scoring,
    /// then streaming the rows through a session).
    pub fn score(&self, utterance: &Utterance) -> AcousticTable {
        self.scorer.score_waveform(&utterance.samples)
    }

    /// Recognizes a waveform with the software decoder, through the
    /// pooled serving path.
    ///
    /// Batch recognition and streaming share one front-end: this runs the
    /// *online* path — a session fed the raw samples via
    /// [`StreamingSession::push_samples`] — which is byte-identical to
    /// batch-scoring the waveform and decoding the table (both halves of
    /// that contract are pinned by tests).
    pub fn recognize(&self, utterance: &Utterance) -> Transcript {
        let mut session = self.open_session();
        session.push_samples(&utterance.samples);
        session.finalize()
    }

    /// Recognizes a pre-scored utterance (the accelerator-style
    /// deployment, where the acoustic model runs elsewhere) through the
    /// pooled serving path: the decode reuses a warmed scratch from the
    /// pool and is allocation-free per frame in the steady state.
    pub fn recognize_scores(&self, scores: &AcousticTable) -> Transcript {
        let mut scratch = self.scratch_pool.scratch();
        let decoder = ViterbiDecoder::new(self.options.clone());
        let result = decoder.decode_with(&mut scratch, &self.graph, scores);
        Transcript {
            words: self.lexicon.transcript(&result.words),
            cost: result.cost,
            reached_final: result.reached_final,
        }
    }

    /// Opens a streaming recognition session: push score frames as they
    /// are produced, pull partial hypotheses, then
    /// [`StreamingSession::finalize`].
    ///
    /// The session mirrors the paper's batch-pipelined handoff (Section
    /// VI): incoming rows land in the *staging* half of a double-buffered
    /// row pair — the software image of the Acoustic Likelihood Buffer —
    /// and the search consumes the *front* half one row behind, so the
    /// final row can receive the batch decoder's end-of-utterance
    /// treatment. Finalizing therefore yields exactly the transcript
    /// [`AsrPipeline::recognize_scores`] produces for the same rows.
    ///
    /// # Example
    ///
    /// ```
    /// use asr_repro::pipeline::AsrPipeline;
    ///
    /// let pipeline = AsrPipeline::demo()?;
    /// let audio = pipeline.render_words(&["play", "music"])?;
    /// let scores = pipeline.score(&audio);
    ///
    /// let mut session = pipeline.open_session();
    /// for frame in 0..scores.num_frames() {
    ///     session.push_row(scores.frame_row(frame));
    /// }
    /// if let Some(partial) = session.partial() {
    ///     assert!(partial.frames_decoded < scores.num_frames());
    /// }
    /// let transcript = session.finalize();
    /// assert_eq!(transcript.words, vec!["play", "music"]);
    /// # Ok::<(), asr_repro::PipelineError>(())
    /// ```
    pub fn open_session(&self) -> StreamingSession<'_> {
        let scratch = self.scratch_pool.checkout();
        StreamingSession {
            pipeline: self,
            decode: Some(StreamingDecode::new(
                &self.graph,
                self.options.clone(),
                scratch,
            )),
            frontend: None,
            front: Vec::new(),
            staging: Vec::new(),
            have_front: false,
            frames_pushed: 0,
        }
    }

    /// Recognizes a waveform on the simulated accelerator, returning the
    /// transcript together with the full hardware result (cycles, traffic,
    /// cache statistics).
    ///
    /// # Errors
    ///
    /// Propagates WFST re-layout failures for state-optimized designs.
    pub fn recognize_on_accelerator(
        &self,
        utterance: &Utterance,
        cfg: AcceleratorConfig,
    ) -> Result<(Transcript, SimResult), PipelineError> {
        let scores = self.scorer.score_waveform(&utterance.samples);
        let mut cfg = cfg;
        cfg.beam = self.options.beam;
        let prepared = PreparedWfst::new(&self.graph, &cfg)?;
        let result = Simulator::new(cfg).decode(&prepared, &scores);
        let transcript = Transcript {
            words: self.lexicon.transcript(&result.words),
            cost: result.cost,
            reached_final: result.reached_final,
        };
        Ok((transcript, result))
    }

    /// Word error rate of a hypothesis against a reference word sequence.
    pub fn wer(&self, reference: &[&str], transcript: &Transcript) -> f64 {
        let to_ids = |words: &[String]| -> Vec<WordId> {
            words
                .iter()
                .map(|w| self.lexicon.word_id(w).unwrap_or(WordId(u32::MAX)))
                .collect()
        };
        let ref_owned: Vec<String> = reference.iter().map(|s| (*s).to_owned()).collect();
        wer::wer(&to_ids(&ref_owned), &to_ids(&transcript.words))
    }
}

/// An in-flight streaming recognition over a borrowed [`AsrPipeline`].
///
/// Created by [`AsrPipeline::open_session`]. Push acoustic score rows with
/// [`StreamingSession::push_row`]/[`StreamingSession::push_frames`], read
/// the evolving best hypothesis with [`StreamingSession::partial`], and
/// end with [`StreamingSession::finalize`]. Dropping a session without
/// finalizing returns its warmed scratch to the pipeline's pool.
///
/// Sessions are independent: any number may be open concurrently, from
/// any threads, against one pipeline.
#[derive(Debug)]
pub struct StreamingSession<'p> {
    pipeline: &'p AsrPipeline,
    decode: Option<StreamingDecode<'p>>,
    /// The pooled streaming front-end, checked out lazily by the first
    /// [`StreamingSession::push_samples`]. `None` for row-fed sessions.
    frontend: Option<SessionFrontend>,
    /// Front half of the score double buffer: the row the search will
    /// consume next (held back one row for last-frame semantics).
    front: Vec<f32>,
    /// Staging half: where an incoming row lands before the swap.
    staging: Vec<f32>,
    have_front: bool,
    frames_pushed: usize,
}

impl StreamingSession<'_> {
    /// Pushes raw 16 kHz audio samples, in any chunking — the
    /// microphone-style entry point. The pooled online front-end turns
    /// them into MFCC frames and acoustic cost rows (bit-identical to
    /// batch scoring) and feeds each row through
    /// [`StreamingSession::push_row`]; pushes are allocation-free per
    /// frame once the session is warm.
    ///
    /// The Δ/ΔΔ recurrence looks two frames ahead, so the search lags the
    /// newest audio by up to three frames (two in the front-end, one in
    /// the session's held-back row) until [`StreamingSession::finalize`]
    /// flushes the tail. Feed a session *either* samples *or* pre-scored
    /// rows: rows pushed while the front-end still holds lookahead frames
    /// would be searched ahead of them, reordering the utterance.
    pub fn push_samples(&mut self, samples: &[f32]) {
        let mut frontend = self
            .frontend
            .take()
            .unwrap_or_else(|| self.pipeline.checkout_frontend());
        frontend.mfcc.push_samples(samples);
        self.drain_frontend(&mut frontend);
        self.frontend = Some(frontend);
    }

    /// Scores every completed front-end frame and pushes its cost row.
    fn drain_frontend(&mut self, frontend: &mut SessionFrontend) {
        let mut scorer = &self.pipeline.scorer;
        while frontend.mfcc.pop_frame_into(&mut frontend.feat) {
            scorer.score_into(&frontend.feat, &mut frontend.row);
            self.push_row(&frontend.row);
        }
    }
    /// Pushes one frame's acoustic score row (`row[p]` = cost of phone
    /// `p`; use [`AcousticTable::frame_row`] or a scorer's output).
    ///
    /// The row is staged in the back half of the session's score buffer
    /// while the search consumes the previously staged row — the
    /// double-buffered handoff of the paper's Acoustic Likelihood Buffer.
    /// After the first few rows the push itself is allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if the session has been fed raw audio via
    /// [`StreamingSession::push_samples`]: the front-end's lookahead
    /// frames would be searched after this row, reordering the utterance.
    pub fn push_row(&mut self, row: &[f32]) {
        assert!(
            self.frontend.is_none(),
            "push_row after push_samples: the online front-end still holds \
             lookahead frames, so this row would be searched out of order"
        );
        self.staging.clear();
        self.staging.extend_from_slice(row);
        if self.have_front {
            if let Some(decode) = self.decode.as_mut() {
                decode.step(&self.front);
            }
        }
        std::mem::swap(&mut self.front, &mut self.staging);
        self.have_front = true;
        self.frames_pushed += 1;
    }

    /// Pushes every frame of a scored batch, in order — the per-batch
    /// handoff a pipelined scorer would perform.
    pub fn push_frames(&mut self, scores: &AcousticTable) {
        for frame in 0..scores.num_frames() {
            self.push_row(scores.frame_row(frame));
        }
    }

    /// Frames pushed into the session so far.
    pub fn frames_pushed(&self) -> usize {
        self.frames_pushed
    }

    /// The current best hypothesis (empty words before any audio: the
    /// start state's closure), or `None` after the beam pruned every
    /// path or the session was finalized. The search runs one row behind
    /// the pushes, so `frames_decoded` lags [`Self::frames_pushed`] by
    /// one.
    pub fn partial(&self) -> Option<Hypothesis> {
        let decode = self.decode.as_ref()?;
        decode.partial().map(|p| Hypothesis {
            words: self.pipeline.lexicon.transcript(&p.words),
            cost: p.cost,
            frames_decoded: p.frames,
        })
    }

    /// Ends the utterance: the front-end's delta lookahead (for raw-audio
    /// sessions) is flushed with the batch edge clamping, the held-back
    /// final row gets the batch decoder's end-of-utterance treatment,
    /// final states are selected, and the warmed scratch and front-end
    /// return to the pipeline's pools.
    ///
    /// The transcript is byte-identical to
    /// [`AsrPipeline::recognize_scores`] over the same rows — and, for
    /// sessions fed raw samples, to batch-scoring the same waveform and
    /// decoding the table.
    pub fn finalize(mut self) -> Transcript {
        if let Some(mut frontend) = self.frontend.take() {
            frontend.mfcc.finish();
            self.drain_frontend(&mut frontend);
            self.pipeline.restore_frontend(frontend);
        }
        let decode = self.decode.take().expect("session not yet finalized");
        let last = if self.have_front {
            Some(self.front.as_slice())
        } else {
            None
        };
        let (result, scratch) = decode.finish(last);
        self.pipeline.scratch_pool.restore(scratch);
        Transcript {
            words: self.pipeline.lexicon.transcript(&result.words),
            cost: result.cost,
            reached_final: result.reached_final,
        }
    }
}

impl Drop for StreamingSession<'_> {
    fn drop(&mut self) {
        if let Some(frontend) = self.frontend.take() {
            self.pipeline.restore_frontend(frontend);
        }
        if let Some(decode) = self.decode.take() {
            self.pipeline.scratch_pool.restore(decode.into_scratch());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asr_accel::config::DesignPoint;

    #[test]
    fn demo_pipeline_recognizes_each_word() {
        let p = AsrPipeline::demo().unwrap();
        for word in ["go", "stop", "low", "music"] {
            let audio = p.render_words(&[word]).unwrap();
            let t = p.recognize(&audio);
            assert_eq!(t.words, vec![word], "failed on {word:?}");
            assert!(t.reached_final);
        }
    }

    #[test]
    fn demo_pipeline_recognizes_sequences() {
        let p = AsrPipeline::demo().unwrap();
        let audio = p.render_words(&["lights", "on"]).unwrap();
        let t = p.recognize(&audio);
        assert_eq!(t.words, vec!["lights", "on"]);
        assert_eq!(p.wer(&["lights", "on"], &t), 0.0);
    }

    #[test]
    fn repeated_recognize_reuses_pooled_scratch() {
        let p = AsrPipeline::demo().unwrap();
        let audio = p.render_words(&["go"]).unwrap();
        assert_eq!(p.scratch_pool().idle(), 0);
        let first = p.recognize(&audio);
        assert_eq!(p.scratch_pool().idle(), 1, "scratch returned to the pool");
        for _ in 0..3 {
            assert_eq!(p.recognize(&audio), first);
        }
        assert_eq!(
            p.scratch_pool().idle(),
            1,
            "sequential decodes share one scratch"
        );
    }

    #[test]
    fn session_matches_batch_recognize() {
        let p = AsrPipeline::demo().unwrap();
        for words in [vec!["go"], vec!["lights", "on"], vec!["call", "mom"]] {
            let audio = p.render_words(&words).unwrap();
            let scores = p.score(&audio);
            let batch = p.recognize_scores(&scores);
            let mut session = p.open_session();
            session.push_frames(&scores);
            assert_eq!(session.frames_pushed(), scores.num_frames());
            let streamed = session.finalize();
            assert_eq!(streamed.words, batch.words);
            assert_eq!(streamed.cost.to_bits(), batch.cost.to_bits());
            assert_eq!(streamed.reached_final, batch.reached_final);
        }
    }

    #[test]
    fn session_partials_evolve_toward_the_transcript() {
        let p = AsrPipeline::demo().unwrap();
        let audio = p.render_words(&["play", "music"]).unwrap();
        let scores = p.score(&audio);
        let mut session = p.open_session();
        let opening = session.partial().expect("start closure is live");
        assert_eq!(opening.frames_decoded, 0);
        assert!(opening.words.is_empty(), "nothing recognized before audio");
        let mut partials = 0;
        for frame in 0..scores.num_frames() {
            session.push_row(scores.frame_row(frame));
            if let Some(h) = session.partial() {
                assert_eq!(h.frames_decoded, frame, "search runs one row behind");
                partials += 1;
            }
        }
        assert!(partials > 0, "partials became available mid-utterance");
        let t = session.finalize();
        assert_eq!(t.words, vec!["play", "music"]);
    }

    #[test]
    fn dropped_session_returns_its_scratch() {
        let p = AsrPipeline::demo().unwrap();
        let audio = p.render_words(&["stop"]).unwrap();
        let scores = p.score(&audio);
        {
            let mut session = p.open_session();
            session.push_frames(&scores);
            // Dropped without finalize (caller went away mid-utterance).
        }
        assert_eq!(p.scratch_pool().idle(), 1);
        // The recovered scratch serves the next request.
        let t = p.recognize(&audio);
        assert_eq!(t.words, vec!["stop"]);
        assert_eq!(p.scratch_pool().idle(), 1);
    }

    #[test]
    fn empty_session_finalizes_gracefully() {
        let p = AsrPipeline::demo().unwrap();
        let t = p.open_session().finalize();
        assert!(t.words.is_empty());
        // Identical to a batch decode of zero frames.
        let empty = AcousticTable::from_fn(0, p.lexicon().num_phones() + 1, |_, _| 0.0);
        let batch = p.recognize_scores(&empty);
        assert_eq!(t, batch);
    }

    #[test]
    fn accelerator_matches_software_decoder() {
        let p = AsrPipeline::demo().unwrap();
        let audio = p.render_words(&["play", "music"]).unwrap();
        let sw = p.recognize(&audio);
        for design in DesignPoint::ALL {
            let (hw, result) = p
                .recognize_on_accelerator(&audio, AcceleratorConfig::for_design(design))
                .unwrap();
            assert_eq!(hw.words, sw.words, "{design:?}");
            assert_eq!(hw.cost, sw.cost, "{design:?}");
            assert!(result.stats.cycles > 0);
        }
    }

    #[test]
    fn unknown_word_is_reported() {
        let p = AsrPipeline::demo().unwrap();
        let err = p.render_words(&["xylophone"]).unwrap_err();
        assert_eq!(err, PipelineError::UnknownWord("xylophone".into()));
        assert!(err.to_string().contains("xylophone"));
    }

    #[test]
    fn wer_detects_errors() {
        let p = AsrPipeline::demo().unwrap();
        let t = Transcript {
            words: vec!["go".into(), "home".into()],
            cost: 0.0,
            reached_final: true,
        };
        assert_eq!(p.wer(&["go", "home"], &t), 0.0);
        assert!(p.wer(&["stop"], &t) > 0.0);
    }
}
