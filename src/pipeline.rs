//! High-level ASR pipeline: waveform in, words out.
//!
//! Wires the substrates together the way the paper's Figure 3 system does:
//! a decoding graph compiled from a lexicon and grammar, an acoustic model
//! scoring 10 ms frames, and a Viterbi beam search — either the reference
//! software decoder (the "CPU" path) or the cycle-accurate accelerator
//! simulator (the "ASIC" path, which also yields hardware statistics).

use asr_accel::config::AcceleratorConfig;
use asr_accel::sim::{PreparedWfst, SimResult, Simulator};
use asr_acoustic::signal::{SignalConfig, Utterance};
use asr_acoustic::template::TemplateScorer;
use asr_decoder::search::{DecodeOptions, ViterbiDecoder};
use asr_decoder::wer;
use asr_wfst::compose::build_decoding_graph;
use asr_wfst::grammar::Grammar;
use asr_wfst::lexicon::{demo_lexicon, Lexicon};
use asr_wfst::{PhoneId, Wfst, WfstError, WordId};
use std::fmt;

/// Errors from pipeline construction or use.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PipelineError {
    /// Underlying WFST construction failed.
    Wfst(WfstError),
    /// A word is not in the pipeline's lexicon.
    UnknownWord(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Wfst(e) => write!(f, "decoding-graph construction failed: {e}"),
            PipelineError::UnknownWord(w) => write!(f, "word {w:?} is not in the lexicon"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Wfst(e) => Some(e),
            PipelineError::UnknownWord(_) => None,
        }
    }
}

impl From<WfstError> for PipelineError {
    fn from(e: WfstError) -> Self {
        PipelineError::Wfst(e)
    }
}

/// A recognized utterance.
#[derive(Debug, Clone, PartialEq)]
pub struct Transcript {
    /// Recognized words, in order.
    pub words: Vec<String>,
    /// Viterbi path cost (lower is better).
    pub cost: f32,
    /// Whether the best path ended in a final state of the graph.
    pub reached_final: bool,
}

/// A complete small-vocabulary ASR system.
#[derive(Debug)]
pub struct AsrPipeline {
    lexicon: Lexicon,
    graph: Wfst,
    scorer: TemplateScorer,
    signal: SignalConfig,
    options: DecodeOptions,
    frames_per_phone: usize,
}

impl AsrPipeline {
    /// Builds a pipeline from a lexicon and grammar.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Wfst`] if the decoding graph cannot be
    /// composed.
    pub fn new(lexicon: Lexicon, grammar: &Grammar) -> Result<Self, PipelineError> {
        let graph = build_decoding_graph(&lexicon, grammar)?;
        let scorer = TemplateScorer::with_default_signal(lexicon.num_phones() as u32);
        Ok(Self {
            lexicon,
            graph,
            scorer,
            signal: SignalConfig::default(),
            options: DecodeOptions::with_beam(40.0),
            frames_per_phone: 6,
        })
    }

    /// The ready-made demo system: twelve command words, uniform grammar.
    ///
    /// # Errors
    ///
    /// Propagates graph construction failures (none for the built-in data).
    pub fn demo() -> Result<Self, PipelineError> {
        let lexicon = demo_lexicon();
        let words: Vec<WordId> = (1..=lexicon.num_words() as u32).map(WordId).collect();
        Self::new(lexicon, &Grammar::uniform(&words))
    }

    /// The decoding graph (for inspection and accelerator experiments).
    pub fn graph(&self) -> &Wfst {
        &self.graph
    }

    /// The lexicon.
    pub fn lexicon(&self) -> &Lexicon {
        &self.lexicon
    }

    /// Renders a synthetic utterance speaking `words`.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::UnknownWord`] for out-of-vocabulary words.
    pub fn render_words(&self, words: &[&str]) -> Result<Utterance, PipelineError> {
        let mut phones: Vec<PhoneId> = Vec::new();
        for word in words {
            let id = self
                .lexicon
                .word_id(word)
                .ok_or_else(|| PipelineError::UnknownWord((*word).to_owned()))?;
            let pron = self
                .lexicon
                .pronunciations()
                .iter()
                .find(|(w, _)| *w == id)
                .expect("lexicon invariant: every word has a pronunciation");
            phones.extend_from_slice(&pron.1);
        }
        Ok(Utterance::render(
            &phones,
            self.frames_per_phone,
            &self.signal,
        ))
    }

    /// Recognizes a waveform with the reference software decoder.
    pub fn recognize(&self, utterance: &Utterance) -> Transcript {
        let scores = self.scorer.score_waveform(&utterance.samples);
        let result = ViterbiDecoder::new(self.options.clone()).decode(&self.graph, &scores);
        Transcript {
            words: self.lexicon.transcript(&result.words),
            cost: result.cost,
            reached_final: result.reached_final,
        }
    }

    /// Recognizes a waveform on the simulated accelerator, returning the
    /// transcript together with the full hardware result (cycles, traffic,
    /// cache statistics).
    ///
    /// # Errors
    ///
    /// Propagates WFST re-layout failures for state-optimized designs.
    pub fn recognize_on_accelerator(
        &self,
        utterance: &Utterance,
        cfg: AcceleratorConfig,
    ) -> Result<(Transcript, SimResult), PipelineError> {
        let scores = self.scorer.score_waveform(&utterance.samples);
        let mut cfg = cfg;
        cfg.beam = self.options.beam;
        let prepared = PreparedWfst::new(&self.graph, &cfg)?;
        let result = Simulator::new(cfg).decode(&prepared, &scores);
        let transcript = Transcript {
            words: self.lexicon.transcript(&result.words),
            cost: result.cost,
            reached_final: result.reached_final,
        };
        Ok((transcript, result))
    }

    /// Word error rate of a hypothesis against a reference word sequence.
    pub fn wer(&self, reference: &[&str], transcript: &Transcript) -> f64 {
        let to_ids = |words: &[String]| -> Vec<WordId> {
            words
                .iter()
                .map(|w| self.lexicon.word_id(w).unwrap_or(WordId(u32::MAX)))
                .collect()
        };
        let ref_owned: Vec<String> = reference.iter().map(|s| (*s).to_owned()).collect();
        wer::wer(&to_ids(&ref_owned), &to_ids(&transcript.words))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asr_accel::config::DesignPoint;

    #[test]
    fn demo_pipeline_recognizes_each_word() {
        let p = AsrPipeline::demo().unwrap();
        for word in ["go", "stop", "low", "music"] {
            let audio = p.render_words(&[word]).unwrap();
            let t = p.recognize(&audio);
            assert_eq!(t.words, vec![word], "failed on {word:?}");
            assert!(t.reached_final);
        }
    }

    #[test]
    fn demo_pipeline_recognizes_sequences() {
        let p = AsrPipeline::demo().unwrap();
        let audio = p.render_words(&["lights", "on"]).unwrap();
        let t = p.recognize(&audio);
        assert_eq!(t.words, vec!["lights", "on"]);
        assert_eq!(p.wer(&["lights", "on"], &t), 0.0);
    }

    #[test]
    fn accelerator_matches_software_decoder() {
        let p = AsrPipeline::demo().unwrap();
        let audio = p.render_words(&["play", "music"]).unwrap();
        let sw = p.recognize(&audio);
        for design in DesignPoint::ALL {
            let (hw, result) = p
                .recognize_on_accelerator(&audio, AcceleratorConfig::for_design(design))
                .unwrap();
            assert_eq!(hw.words, sw.words, "{design:?}");
            assert_eq!(hw.cost, sw.cost, "{design:?}");
            assert!(result.stats.cycles > 0);
        }
    }

    #[test]
    fn unknown_word_is_reported() {
        let p = AsrPipeline::demo().unwrap();
        let err = p.render_words(&["xylophone"]).unwrap_err();
        assert_eq!(err, PipelineError::UnknownWord("xylophone".into()));
        assert!(err.to_string().contains("xylophone"));
    }

    #[test]
    fn wer_detects_errors() {
        let p = AsrPipeline::demo().unwrap();
        let t = Transcript {
            words: vec!["go".into(), "home".into()],
            cost: 0.0,
            reached_final: true,
        };
        assert_eq!(p.wer(&["go", "home"], &t), 0.0);
        assert!(p.wer(&["stop"], &t) > 0.0);
    }
}
