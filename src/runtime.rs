//! The shared serving runtime: one engine, one executor, any number of
//! owned sessions.
//!
//! The paper's accelerator is a *shared* recognition resource — one
//! datapath multiplexed across all traffic, with scoring and search
//! overlapped (Section VI) — and [`AsrRuntime`] is the software image of
//! that deployment shape. The runtime owns the engine state (decoding
//! graph, lexicon, acoustic scorer, scratch and front-end pools) behind
//! an [`Arc`], plus **one global work-stealing executor**
//! ([`WorkerPool`]): per-decoder private pools are replaced by lane
//! leases from the shared executor, so N concurrent decodes share all
//! lanes instead of serializing behind per-request thread sets.
//!
//! [`AsrRuntime::open_session`] returns an **owned [`Session`]**:
//! `Send + 'static`, no borrowed pipeline lifetime, so callers can open
//! a session on one thread, hand it to another mid-utterance, and
//! finalize it anywhere — the natural shape for per-connection tasks in
//! a server. Cloning the runtime handle is an `Arc` bump; all clones
//! share the same pools and executor.
//!
//! # Section VI pipelining
//!
//! On top of the shared executor, a session overlaps its front-end with
//! its search: while the search relaxes the held-back row of packet
//! *i*, the scoring of packet *i + 1* runs as a stolen task on another
//! lane — exactly the paper's GPU-scores-batch-*i + 1*-while-the-
//! accelerator-searches-batch-*i* overlap, shrunk to frame granularity.
//! Results stay **byte-identical** to the sequential path because the
//! two halves touch disjoint state (the search never reads the row
//! being scored, the scorer never reads the search) and the rows enter
//! the search in the same order; determinism is structural, not lucky.
//! When the runtime has a single lane (or overlap is disabled through
//! [`SessionOptions`]), the session simply scores inline — same bytes,
//! no synchronization.
//!
//! # Entry points, unified
//!
//! Batch, pre-scored, and raw-audio recognition are all one code path:
//! [`AsrRuntime::recognize`] and [`AsrRuntime::recognize_scores`] are
//! one-shot sessions internally, so every equivalence pinned for
//! sessions (byte-identity to the batch decoder, zero steady-state
//! allocations per frame) covers the batch API for free. The legacy
//! [`crate::pipeline::AsrPipeline`] facade survives as a thin wrapper
//! over a runtime.

use asr_accel::config::AcceleratorConfig;
use asr_accel::sim::{PreparedWfst, SimResult, Simulator};
use asr_acoustic::online::{FrameScorer, OnlineMfcc};
use asr_acoustic::scores::AcousticTable;
use asr_acoustic::signal::{SignalConfig, Utterance};
use asr_acoustic::template::TemplateScorer;
use asr_decoder::parallel::ParallelDecoder;
use asr_decoder::pool::{ScratchPool, WorkerPool};
use asr_decoder::search::DecodeOptions;
use asr_decoder::stream::StreamingDecode;
use asr_decoder::wer;
use asr_wfst::compose::build_decoding_graph;
use asr_wfst::grammar::Grammar;
use asr_wfst::lexicon::{demo_lexicon, Lexicon};
use asr_wfst::{PhoneId, Wfst, WfstError, WordId};
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Errors from runtime (or pipeline) construction or use.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PipelineError {
    /// Underlying WFST construction failed.
    Wfst(WfstError),
    /// A word is not in the runtime's lexicon.
    UnknownWord(String),
}

/// The runtime's error type — the same enum the legacy pipeline facade
/// reports, under the name the new API reads naturally with.
pub type RuntimeError = PipelineError;

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Wfst(e) => write!(f, "decoding-graph construction failed: {e}"),
            PipelineError::UnknownWord(w) => write!(f, "word {w:?} is not in the lexicon"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Wfst(e) => Some(e),
            PipelineError::UnknownWord(_) => None,
        }
    }
}

impl From<WfstError> for PipelineError {
    fn from(e: WfstError) -> Self {
        PipelineError::Wfst(e)
    }
}

/// A recognized utterance.
#[derive(Debug, Clone, PartialEq)]
pub struct Transcript {
    /// Recognized words, in order.
    pub words: Vec<String>,
    /// Viterbi path cost (lower is better).
    pub cost: f32,
    /// Whether the best path ended in a final state of the graph.
    pub reached_final: bool,
}

/// A mid-utterance hypothesis pulled from a [`Session`].
#[derive(Debug, Clone, PartialEq)]
pub struct Hypothesis {
    /// Words on the current best path, in utterance order.
    pub words: Vec<String>,
    /// Path cost of the current best token (no final cost applied).
    pub cost: f32,
    /// Frames the search has consumed so far (one behind the frames
    /// pushed: the newest row waits in the session's score buffer).
    pub frames_decoded: usize,
}

/// Construction-time configuration for an [`AsrRuntime`], as a builder.
///
/// ```
/// use asr_repro::runtime::{AsrRuntime, RuntimeConfig};
///
/// let runtime = AsrRuntime::demo_with(RuntimeConfig::new().lanes(2).beam(40.0))?;
/// assert_eq!(runtime.lanes(), 2);
/// # Ok::<(), asr_repro::PipelineError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    lanes: usize,
    options: DecodeOptions,
    frames_per_phone: usize,
}

impl Default for RuntimeConfig {
    /// Machine-sized executor, the demo beam, six frames per rendered
    /// phone.
    fn default() -> Self {
        Self {
            lanes: WorkerPool::default_lanes(),
            options: DecodeOptions::with_beam(40.0),
            frames_per_phone: 6,
        }
    }
}

impl RuntimeConfig {
    /// The default configuration (see [`RuntimeConfig::default`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the executor width: the number of lanes the runtime's shared
    /// [`WorkerPool`] has. `1` means no worker threads at all — every
    /// decode and every session runs inline.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn lanes(mut self, lanes: usize) -> Self {
        assert!(lanes > 0, "need at least one lane");
        self.lanes = lanes;
        self
    }

    /// Sets the beam width every decode uses.
    pub fn beam(mut self, beam: f32) -> Self {
        self.options.beam = beam;
        self
    }

    /// Replaces the full beam-search option set.
    pub fn decode_options(mut self, options: DecodeOptions) -> Self {
        self.options = options;
        self
    }

    /// Frames per phone for [`AsrRuntime::render_words`]' synthetic
    /// speech.
    ///
    /// # Panics
    ///
    /// Panics if `frames_per_phone == 0`.
    pub fn frames_per_phone(mut self, frames_per_phone: usize) -> Self {
        assert!(frames_per_phone > 0, "need at least one frame per phone");
        self.frames_per_phone = frames_per_phone;
        self
    }
}

/// Per-session options for [`AsrRuntime::open_session_with`], as a
/// builder.
#[derive(Debug, Clone, Default)]
pub struct SessionOptions {
    /// `None` = automatic: overlap scoring with the search whenever the
    /// runtime's executor has more than one lane.
    overlap: Option<bool>,
}

impl SessionOptions {
    /// The default options: overlap scoring and search automatically
    /// when the executor has lanes to steal from.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forces the Section VI scoring/search overlap on or off for this
    /// session. Results are byte-identical either way; `false` removes
    /// all executor traffic from the session's pushes, `true` requests
    /// overlap even where it cannot win (it still degrades to inline
    /// execution on a one-lane runtime).
    pub fn overlap_scoring(mut self, overlap: bool) -> Self {
        self.overlap = Some(overlap);
        self
    }
}

/// The per-session streaming front-end: an [`OnlineMfcc`] plus the
/// feature/row buffers one frame of scoring works over. Checked out of
/// (and restored to) the runtime's front-end pool.
#[derive(Debug)]
struct SessionFrontend {
    mfcc: OnlineMfcc,
    feat: Vec<f32>,
    row: Vec<f32>,
}

/// Engine state shared by every clone of a runtime handle and every
/// session opened from it.
#[derive(Debug)]
struct RuntimeInner {
    lexicon: Lexicon,
    graph: Arc<Wfst>,
    scorer: TemplateScorer,
    signal: SignalConfig,
    options: DecodeOptions,
    lanes: usize,
    scratch_pool: ScratchPool,
    /// Warmed streaming front-ends (online MFCC state + scoring
    /// buffers), pooled like decode scratches so raw-audio sessions are
    /// allocation-free per frame in the steady state.
    frontend_pool: Mutex<Vec<SessionFrontend>>,
    /// The shared work-stealing executor, spun up on first use (a
    /// one-lane runtime never spawns it).
    executor: OnceLock<Arc<WorkerPool>>,
    frames_per_phone: usize,
}

impl RuntimeInner {
    /// Pops a warmed streaming front-end, or builds the first one.
    fn checkout_frontend(&self) -> SessionFrontend {
        let pooled = self
            .frontend_pool
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop();
        match pooled {
            Some(mut fe) => {
                fe.mfcc.reset();
                fe
            }
            None => {
                let mfcc = OnlineMfcc::new(*self.scorer.mfcc_config());
                let dim = mfcc.dim();
                SessionFrontend {
                    mfcc,
                    feat: vec![0.0; dim],
                    row: vec![0.0; FrameScorer::row_len(&&self.scorer)],
                }
            }
        }
    }

    /// Returns a front-end to the pool for the next raw-audio session.
    fn restore_frontend(&self, frontend: SessionFrontend) {
        self.frontend_pool
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(frontend);
    }
}

/// The shared serving runtime: engine state plus one global
/// work-stealing executor, handing out owned [`Session`]s.
///
/// Cloning the handle is an `Arc` bump — clone it freely into
/// per-connection threads; every clone shares the scratch pool, the
/// front-end pool, and the executor.
///
/// # Quick start
///
/// ```
/// use asr_repro::runtime::AsrRuntime;
///
/// let runtime = AsrRuntime::demo()?;
/// let audio = runtime.render_words(&["call", "mom"])?;
/// let transcript = runtime.recognize(&audio);
/// assert_eq!(transcript.words, vec!["call", "mom"]);
/// # Ok::<(), asr_repro::PipelineError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AsrRuntime {
    inner: Arc<RuntimeInner>,
}

impl AsrRuntime {
    /// Builds a runtime from a lexicon and grammar with the default
    /// [`RuntimeConfig`].
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Wfst`] if the decoding graph cannot be
    /// composed.
    pub fn new(lexicon: Lexicon, grammar: &Grammar) -> Result<Self, PipelineError> {
        Self::with_config(lexicon, grammar, RuntimeConfig::default())
    }

    /// Builds a runtime with an explicit configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Wfst`] if the decoding graph cannot be
    /// composed.
    pub fn with_config(
        lexicon: Lexicon,
        grammar: &Grammar,
        config: RuntimeConfig,
    ) -> Result<Self, PipelineError> {
        let graph = Arc::new(build_decoding_graph(&lexicon, grammar)?);
        let scorer = TemplateScorer::with_default_signal(lexicon.num_phones() as u32);
        let scratch_pool = ScratchPool::new(graph.num_states());
        Ok(Self {
            inner: Arc::new(RuntimeInner {
                lexicon,
                graph,
                scorer,
                signal: SignalConfig::default(),
                options: config.options,
                lanes: config.lanes,
                scratch_pool,
                frontend_pool: Mutex::new(Vec::new()),
                executor: OnceLock::new(),
                frames_per_phone: config.frames_per_phone,
            }),
        })
    }

    /// The ready-made demo system: twelve command words, uniform
    /// grammar, default configuration.
    ///
    /// # Errors
    ///
    /// Propagates graph construction failures (none for the built-in
    /// data).
    pub fn demo() -> Result<Self, PipelineError> {
        Self::demo_with(RuntimeConfig::default())
    }

    /// The demo system with an explicit configuration.
    ///
    /// # Errors
    ///
    /// Propagates graph construction failures (none for the built-in
    /// data).
    pub fn demo_with(config: RuntimeConfig) -> Result<Self, PipelineError> {
        let lexicon = demo_lexicon();
        let words: Vec<WordId> = (1..=lexicon.num_words() as u32).map(WordId).collect();
        Self::with_config(lexicon, &Grammar::uniform(&words), config)
    }

    /// The decoding graph (for inspection and accelerator experiments).
    pub fn graph(&self) -> &Wfst {
        &self.inner.graph
    }

    /// The lexicon.
    pub fn lexicon(&self) -> &Lexicon {
        &self.inner.lexicon
    }

    /// The beam-search options every decode uses.
    pub fn options(&self) -> &DecodeOptions {
        &self.inner.options
    }

    /// The configured executor width.
    pub fn lanes(&self) -> usize {
        self.inner.lanes
    }

    /// The scratch pool backing the serving path (for observability:
    /// [`ScratchPool::stats`] splits cold checkouts from warm restores).
    pub fn scratch_pool(&self) -> &ScratchPool {
        &self.inner.scratch_pool
    }

    /// The shared work-stealing executor, or `None` on a one-lane
    /// runtime (which never spawns worker threads). Spun up lazily on
    /// first call; every session and leased decoder shares it.
    pub fn executor(&self) -> Option<&Arc<WorkerPool>> {
        if self.inner.lanes <= 1 {
            return None;
        }
        Some(
            self.inner
                .executor
                .get_or_init(|| Arc::new(WorkerPool::new(self.inner.lanes))),
        )
    }

    /// Leases a parallel batch decoder on the runtime's shared executor
    /// (the accelerator-deployment shape for bulk pre-scored decodes):
    /// its per-frame shard phases interleave with every other lease and
    /// session in the same injector, so concurrent batch decodes share
    /// all lanes. On a one-lane runtime the decoder runs fully inline.
    pub fn lease_decoder(&self) -> ParallelDecoder {
        match self.executor() {
            Some(pool) => ParallelDecoder::on_pool(
                self.inner.options.clone(),
                self.inner.lanes,
                Arc::clone(pool),
            ),
            None => ParallelDecoder::new(self.inner.options.clone(), 1),
        }
    }

    /// Renders a synthetic utterance speaking `words`.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::UnknownWord`] for out-of-vocabulary
    /// words.
    pub fn render_words(&self, words: &[&str]) -> Result<Utterance, PipelineError> {
        let mut phones: Vec<PhoneId> = Vec::new();
        for word in words {
            let id = self
                .inner
                .lexicon
                .word_id(word)
                .ok_or_else(|| PipelineError::UnknownWord((*word).to_owned()))?;
            let pron = self
                .inner
                .lexicon
                .pronunciations()
                .iter()
                .find(|(w, _)| *w == id)
                .expect("lexicon invariant: every word has a pronunciation");
            phones.extend_from_slice(&pron.1);
        }
        Ok(Utterance::render(
            &phones,
            self.inner.frames_per_phone,
            &self.inner.signal,
        ))
    }

    /// Scores a waveform into the per-frame acoustic cost table the
    /// search consumes — the scoring stage of the paper's pipeline,
    /// exposed so callers can split scoring from search.
    pub fn score(&self, utterance: &Utterance) -> AcousticTable {
        self.inner.scorer.score_waveform(&utterance.samples)
    }

    /// Recognizes a waveform: a one-shot [`Session`] fed the raw
    /// samples. Byte-identical to batch-scoring the waveform and
    /// decoding the table (both halves of that contract are pinned by
    /// tests), allocation-free per frame once the pools are warm.
    pub fn recognize(&self, utterance: &Utterance) -> Transcript {
        let mut session = self.open_session();
        session.push_samples(&utterance.samples);
        session.finalize()
    }

    /// Recognizes a pre-scored utterance (the accelerator-style
    /// deployment, where the acoustic model runs elsewhere): a one-shot
    /// [`Session`] fed the score rows, riding a warmed scratch from the
    /// shared pool.
    pub fn recognize_scores(&self, scores: &AcousticTable) -> Transcript {
        let mut session = self.open_session();
        session.push_frames(scores);
        session.finalize()
    }

    /// Opens an owned streaming session with default [`SessionOptions`].
    ///
    /// The session is `Send + 'static`: it holds the engine through the
    /// runtime's `Arc`, not a borrow, so it can be driven from any
    /// thread and handed between threads mid-utterance. Push score rows
    /// or raw audio, read [`Session::partial`] hypotheses, then
    /// [`Session::finalize`].
    ///
    /// # Example
    ///
    /// ```
    /// use asr_repro::runtime::AsrRuntime;
    ///
    /// let runtime = AsrRuntime::demo()?;
    /// let audio = runtime.render_words(&["play", "music"])?;
    ///
    /// let mut session = runtime.open_session();
    /// session.push_samples(&audio.samples);
    /// // Owned and Send: finish the utterance on another thread.
    /// let transcript = std::thread::spawn(move || session.finalize())
    ///     .join()
    ///     .expect("session thread");
    /// assert_eq!(transcript.words, vec!["play", "music"]);
    /// # Ok::<(), asr_repro::PipelineError>(())
    /// ```
    pub fn open_session(&self) -> Session {
        self.open_session_with(SessionOptions::default())
    }

    /// Opens an owned streaming session with explicit options.
    pub fn open_session_with(&self, options: SessionOptions) -> Session {
        let scratch = self.inner.scratch_pool.checkout();
        let overlap = options.overlap.unwrap_or(true);
        let executor = if overlap {
            self.executor().cloned()
        } else {
            None
        };
        Session {
            runtime: Arc::clone(&self.inner),
            decode: Some(StreamingDecode::new(
                Arc::clone(&self.inner.graph),
                self.inner.options.clone(),
                scratch,
            )),
            frontend: None,
            executor,
            front: Vec::new(),
            staging: Vec::new(),
            have_front: false,
            frames_pushed: 0,
        }
    }

    /// Recognizes a waveform on the simulated accelerator, returning the
    /// transcript together with the full hardware result (cycles,
    /// traffic, cache statistics).
    ///
    /// # Errors
    ///
    /// Propagates WFST re-layout failures for state-optimized designs.
    pub fn recognize_on_accelerator(
        &self,
        utterance: &Utterance,
        cfg: AcceleratorConfig,
    ) -> Result<(Transcript, SimResult), PipelineError> {
        let scores = self.inner.scorer.score_waveform(&utterance.samples);
        let mut cfg = cfg;
        cfg.beam = self.inner.options.beam;
        let prepared = PreparedWfst::new(&self.inner.graph, &cfg)?;
        let result = Simulator::new(cfg).decode(&prepared, &scores)?;
        let transcript = Transcript {
            words: self.inner.lexicon.transcript(&result.words),
            cost: result.cost,
            reached_final: result.reached_final,
        };
        Ok((transcript, result))
    }

    /// Word error rate of a hypothesis against a reference word
    /// sequence.
    pub fn wer(&self, reference: &[&str], transcript: &Transcript) -> f64 {
        let to_ids = |words: &[String]| -> Vec<WordId> {
            words
                .iter()
                .map(|w| self.inner.lexicon.word_id(w).unwrap_or(WordId(u32::MAX)))
                .collect()
        };
        let ref_owned: Vec<String> = reference.iter().map(|s| (*s).to_owned()).collect();
        wer::wer(&to_ids(&ref_owned), &to_ids(&transcript.words))
    }
}

/// An owned, in-flight streaming recognition: `Send + 'static`.
///
/// Created by [`AsrRuntime::open_session`]. The session holds the engine
/// through the runtime's `Arc` — no borrowed lifetime — so it can be
/// moved freely between threads, including mid-utterance. Push acoustic
/// score rows with [`Session::push_row`]/[`Session::push_frames`] or raw
/// 16 kHz audio with [`Session::push_samples`], read the evolving best
/// hypothesis with [`Session::partial`], and end with
/// [`Session::finalize`]. Dropping a session without finalizing returns
/// its warmed scratch and front-end to the runtime's pools.
///
/// Sessions are independent: any number may be open concurrently, from
/// any threads, against one runtime. When the runtime's executor has
/// more than one lane, a raw-audio session overlaps the scoring of each
/// new frame with the search of the previous one (the paper's Section VI
/// pipelining) — byte-identical to the inline path.
#[derive(Debug)]
pub struct Session {
    runtime: Arc<RuntimeInner>,
    decode: Option<StreamingDecode<Arc<Wfst>>>,
    /// The pooled streaming front-end, checked out lazily by the first
    /// [`Session::push_samples`]. `None` for row-fed sessions.
    frontend: Option<SessionFrontend>,
    /// The shared executor, when this session overlaps scoring with the
    /// search; `None` scores inline.
    executor: Option<Arc<WorkerPool>>,
    /// Front half of the score double buffer: the row the search will
    /// consume next (held back one row for last-frame semantics).
    front: Vec<f32>,
    /// Staging half: where an incoming row lands before the swap.
    staging: Vec<f32>,
    have_front: bool,
    frames_pushed: usize,
}

impl Session {
    /// Pushes raw 16 kHz audio samples, in any chunking — the
    /// microphone-style entry point. The pooled online front-end turns
    /// them into MFCC frames and acoustic cost rows (bit-identical to
    /// batch scoring) and stages each row behind the search; pushes are
    /// allocation-free per frame once the session is warm.
    ///
    /// With a multi-lane runtime, each completed frame's scoring runs as
    /// a stolen task on the shared executor *while* the search relaxes
    /// the previously staged row — the paper's Section VI overlap — with
    /// byte-identical results to inline scoring.
    ///
    /// The Δ/ΔΔ recurrence looks two frames ahead, so the search lags
    /// the newest audio by up to three frames (two in the front-end, one
    /// in the session's held-back row) until [`Session::finalize`]
    /// flushes the tail. Feed a session *either* samples *or* pre-scored
    /// rows: rows pushed while the front-end still holds lookahead
    /// frames would be searched ahead of them, reordering the utterance.
    pub fn push_samples(&mut self, samples: &[f32]) {
        let mut frontend = self
            .frontend
            .take()
            .unwrap_or_else(|| self.runtime.checkout_frontend());
        frontend.mfcc.push_samples(samples);
        self.drain_frontend(&mut frontend);
        self.frontend = Some(frontend);
    }

    /// Scores every completed front-end frame and stages its cost row,
    /// overlapping scoring with the search when an executor is attached.
    fn drain_frontend(&mut self, frontend: &mut SessionFrontend) {
        while frontend.mfcc.pop_frame_into(&mut frontend.feat) {
            self.score_and_stage(frontend);
        }
    }

    /// One frame of the pipelined front-end: score `frontend.feat` into
    /// `frontend.row` while the search consumes the held-back front row,
    /// then swap the fresh row in — the ALB handoff with the paper's
    /// Section VI overlap on top.
    ///
    /// Determinism: the two overlapped halves share no mutable state
    /// (the scorer writes `frontend.row`, the search reads `self.front`
    /// and mutates only the decode), and the row order into the search
    /// is unchanged, so the transcript is byte-identical to the inline
    /// path for any executor width and steal schedule.
    fn score_and_stage(&mut self, frontend: &mut SessionFrontend) {
        let scorer = &self.runtime.scorer;
        let overlap = self.have_front && self.decode.is_some();
        match (&self.executor, overlap) {
            (Some(pool), true) => {
                let decode_slot = Mutex::new(self.decode.as_mut().expect("overlap checked"));
                let row_slot = Mutex::new(&mut frontend.row);
                let front: &[f32] = &self.front;
                let feat: &[f32] = &frontend.feat;
                pool.fork_join(2, &|chunk| {
                    if chunk == 0 {
                        let mut decode = decode_slot.lock().unwrap_or_else(PoisonError::into_inner);
                        decode.step(front);
                    } else {
                        let mut shared_scorer = scorer;
                        let mut row = row_slot.lock().unwrap_or_else(PoisonError::into_inner);
                        shared_scorer.score_into(feat, row.as_mut_slice());
                    }
                });
            }
            _ => {
                let mut shared_scorer = scorer;
                shared_scorer.score_into(&frontend.feat, &mut frontend.row);
                self.step_front();
            }
        }
        self.staging.clear();
        self.staging.extend_from_slice(&frontend.row);
        self.commit_staged_row();
    }

    /// Advances the search over the held-back front row, if there is
    /// one — the search half of the ALB handoff, shared by the row-fed
    /// and audio-fed paths.
    fn step_front(&mut self) {
        if self.have_front {
            if let Some(decode) = self.decode.as_mut() {
                decode.step(&self.front);
            }
        }
    }

    /// Completes the ALB handoff: `self.staging` holds the freshly
    /// produced row (the search half has already run), so swap it in as
    /// the next held-back front row. The hold-back-one-row semantics
    /// live here, in one place, for every push path.
    fn commit_staged_row(&mut self) {
        std::mem::swap(&mut self.front, &mut self.staging);
        self.have_front = true;
        self.frames_pushed += 1;
    }

    /// Pushes one frame's acoustic score row (`row[p]` = cost of phone
    /// `p`; use [`AcousticTable::frame_row`] or a scorer's output).
    ///
    /// The row is staged in the back half of the session's score buffer
    /// while the search consumes the previously staged row — the
    /// double-buffered handoff of the paper's Acoustic Likelihood
    /// Buffer. After the first few rows the push itself is
    /// allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if the session has been fed raw audio via
    /// [`Session::push_samples`]: the front-end's lookahead frames would
    /// be searched after this row, reordering the utterance.
    pub fn push_row(&mut self, row: &[f32]) {
        assert!(
            self.frontend.is_none(),
            "push_row after push_samples: the online front-end still holds \
             lookahead frames, so this row would be searched out of order"
        );
        self.staging.clear();
        self.staging.extend_from_slice(row);
        self.step_front();
        self.commit_staged_row();
    }

    /// Pushes every frame of a scored batch, in order — the per-batch
    /// handoff a pipelined scorer would perform.
    pub fn push_frames(&mut self, scores: &AcousticTable) {
        for frame in 0..scores.num_frames() {
            self.push_row(scores.frame_row(frame));
        }
    }

    /// Frames pushed into the session so far.
    pub fn frames_pushed(&self) -> usize {
        self.frames_pushed
    }

    /// The current best hypothesis (empty words before any audio: the
    /// start state's closure), or `None` after the beam pruned every
    /// path or the session was finalized. The search runs one row behind
    /// the pushes, so `frames_decoded` lags [`Session::frames_pushed`]
    /// by one.
    pub fn partial(&self) -> Option<Hypothesis> {
        let decode = self.decode.as_ref()?;
        decode.partial().map(|p| Hypothesis {
            words: self.runtime.lexicon.transcript(&p.words),
            cost: p.cost,
            frames_decoded: p.frames,
        })
    }

    /// Ends the utterance: the front-end's delta lookahead (for
    /// raw-audio sessions) is flushed with the batch edge clamping, the
    /// held-back final row gets the batch decoder's end-of-utterance
    /// treatment, final states are selected, and the warmed scratch and
    /// front-end return to the runtime's pools.
    ///
    /// The transcript is byte-identical to
    /// [`AsrRuntime::recognize_scores`] over the same rows — and, for
    /// sessions fed raw samples, to batch-scoring the same waveform and
    /// decoding the table.
    pub fn finalize(mut self) -> Transcript {
        if let Some(mut frontend) = self.frontend.take() {
            frontend.mfcc.finish();
            self.drain_frontend(&mut frontend);
            self.runtime.restore_frontend(frontend);
        }
        let decode = self.decode.take().expect("session not yet finalized");
        let last = if self.have_front {
            Some(self.front.as_slice())
        } else {
            None
        };
        let (result, scratch) = decode.finish(last);
        self.runtime.scratch_pool.restore(scratch);
        Transcript {
            words: self.runtime.lexicon.transcript(&result.words),
            cost: result.cost,
            reached_final: result.reached_final,
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        if let Some(frontend) = self.frontend.take() {
            self.runtime.restore_frontend(frontend);
        }
        if let Some(decode) = self.decode.take() {
            self.runtime.scratch_pool.restore(decode.into_scratch());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send_static<T: Send + 'static>() {}

    #[test]
    fn session_and_runtime_are_send_and_static() {
        assert_send_static::<Session>();
        assert_send_static::<AsrRuntime>();
    }

    #[test]
    fn runtime_clones_share_the_pools() {
        let a = AsrRuntime::demo().unwrap();
        let b = a.clone();
        let audio = a.render_words(&["go"]).unwrap();
        let t = a.recognize(&audio);
        assert_eq!(t.words, vec!["go"]);
        assert_eq!(
            b.scratch_pool().stats().cold_checkouts,
            1,
            "clone observes the same scratch pool"
        );
        let t2 = b.recognize(&audio);
        assert_eq!(t2, t);
        assert_eq!(
            b.scratch_pool().stats().cold_checkouts,
            1,
            "second recognize rode the warmed scratch"
        );
    }

    #[test]
    fn one_lane_runtime_has_no_executor() {
        let runtime = AsrRuntime::demo_with(RuntimeConfig::new().lanes(1)).unwrap();
        assert!(runtime.executor().is_none());
        let audio = runtime.render_words(&["stop"]).unwrap();
        assert_eq!(runtime.recognize(&audio).words, vec!["stop"]);
    }

    #[test]
    fn overlapped_and_inline_scoring_are_byte_identical() {
        let runtime = AsrRuntime::demo_with(RuntimeConfig::new().lanes(2)).unwrap();
        assert!(runtime.executor().is_some());
        let audio = runtime.render_words(&["lights", "on"]).unwrap();
        let run = |overlap: bool| {
            let mut session =
                runtime.open_session_with(SessionOptions::new().overlap_scoring(overlap));
            for packet in audio.samples.chunks(160) {
                session.push_samples(packet);
            }
            session.finalize()
        };
        let overlapped = run(true);
        let inline = run(false);
        assert_eq!(overlapped.words, inline.words);
        assert_eq!(overlapped.cost.to_bits(), inline.cost.to_bits());
        assert_eq!(overlapped.reached_final, inline.reached_final);
        // ... and both match the batch path.
        let batch = runtime.recognize_scores(&runtime.score(&audio));
        assert_eq!(overlapped.words, batch.words);
        assert_eq!(overlapped.cost.to_bits(), batch.cost.to_bits());
    }

    #[test]
    fn leased_decoder_matches_the_session_path() {
        let runtime = AsrRuntime::demo_with(RuntimeConfig::new().lanes(2)).unwrap();
        let audio = runtime.render_words(&["call", "mom"]).unwrap();
        let scores = runtime.score(&audio);
        let sessioned = runtime.recognize_scores(&scores);
        let decoder = runtime.lease_decoder();
        let leased = decoder.decode(runtime.graph(), &scores);
        assert_eq!(runtime.lexicon().transcript(&leased.words), sessioned.words);
        assert_eq!(leased.cost.to_bits(), sessioned.cost.to_bits());
    }

    #[test]
    fn config_builder_is_applied() {
        let runtime =
            AsrRuntime::demo_with(RuntimeConfig::new().lanes(3).beam(12.0).frames_per_phone(4))
                .unwrap();
        assert_eq!(runtime.lanes(), 3);
        assert_eq!(runtime.options().beam, 12.0);
        let audio = runtime.render_words(&["go"]).unwrap();
        let t = runtime.recognize(&audio);
        assert_eq!(t.words, vec!["go"]);
    }
}
