//! The shared serving runtime: one engine, one executor, any number of
//! owned sessions.
//!
//! The paper's accelerator is a *shared* recognition resource — one
//! datapath multiplexed across all traffic, with scoring and search
//! overlapped (Section VI) — and [`AsrRuntime`] is the software image of
//! that deployment shape. The runtime owns the engine state (decoding
//! graph, lexicon, acoustic scorer, scratch and front-end pools) behind
//! an [`Arc`], plus **one global work-stealing executor**
//! ([`WorkerPool`]): per-decoder private pools are replaced by lane
//! leases from the shared executor, so N concurrent decodes share all
//! lanes instead of serializing behind per-request thread sets.
//!
//! [`AsrRuntime::open_session`] returns an **owned [`Session`]**:
//! `Send + 'static`, no borrowed pipeline lifetime, so callers can open
//! a session on one thread, hand it to another mid-utterance, and
//! finalize it anywhere — the natural shape for per-connection tasks in
//! a server. Cloning the runtime handle is an `Arc` bump; all clones
//! share the same pools and executor.
//!
//! # Section VI pipelining
//!
//! On top of the shared executor, a session overlaps its front-end with
//! its search: while the search relaxes the held-back row of packet
//! *i*, the scoring of packet *i + 1* runs as a stolen task on another
//! lane — exactly the paper's GPU-scores-batch-*i + 1*-while-the-
//! accelerator-searches-batch-*i* overlap, shrunk to frame granularity.
//! Results stay **byte-identical** to the sequential path because the
//! two halves touch disjoint state (the search never reads the row
//! being scored, the scorer never reads the search) and the rows enter
//! the search in the same order; determinism is structural, not lucky.
//! When the runtime has a single lane (or overlap is disabled through
//! [`SessionOptions`]), the session simply scores inline — same bytes,
//! no synchronization.
//!
//! # Entry points, unified
//!
//! Batch, pre-scored, and raw-audio recognition are all one code path:
//! [`AsrRuntime::recognize`] and [`AsrRuntime::recognize_scores`] are
//! one-shot sessions internally, so every equivalence pinned for
//! sessions (byte-identity to the batch decoder, zero steady-state
//! allocations per frame) covers the batch API for free. The legacy
//! [`crate::pipeline::AsrPipeline`] facade survives as a thin wrapper
//! over a runtime.
//!
//! # Load-adaptive QoS
//!
//! The paper trades beam width against cycles and accuracy at design
//! time; the runtime turns the same knob at *serving* time. Installing
//! a [`QosPolicy`] ([`RuntimeConfig::qos`]) gives the runtime ordered
//! pressure tiers that narrow `beam`/`max_active` as a pressure signal
//! rises — the maximum of session saturation, executor queue depth per
//! lane, and an EWMA of the per-frame real-time factor — with
//! configurable per-session floors. It also arms admission control:
//! past the policy's saturation point, [`AsrRuntime::try_open_session`]
//! sheds new sessions with a typed [`PipelineError::Overloaded`]
//! instead of queueing them into unbounded latency, while every
//! admitted session always runs to completion. Tier changes apply at
//! frame boundaries only, so a session's decode is deterministic given
//! its tier trace — pinned to one tier it is byte-identical to a
//! fixed-beam decode at that tier's parameters, and with QoS off the
//! runtime is byte-identical to a runtime with no policy at all.
//! [`AsrRuntime::stats`] exposes the whole signal chain
//! ([`RuntimeStats`]): active/peak/shed sessions, EWMA RTF, pressure,
//! current and peak tier, plus the scratch-pool and executor counters.
//!
//! # Cross-session batched scoring
//!
//! Per-session scoring runs one forward pass per session per frame;
//! production inference servers amortize the matrix work by batching
//! across requests. Installing a [`BatchScoringConfig`]
//! ([`RuntimeConfig::batch_scoring`]) adds a batched scoring service to
//! the runtime: audio-fed sessions enqueue each completed feature frame
//! into a shared **gather window**, one matrix–matrix forward pass (the
//! row-block entry points in `asr-acoustic`) scores the whole block,
//! and the rows **scatter** back to each session's ALB slot — the
//! CPU-lane image of the paper's Acoustic Likelihood Buffer decoupling
//! scoring throughput from search. The window is bounded by a
//! configurable row cap and per-session wait budget, a lone session
//! falls back to synchronous single-row scoring (it never stalls on a
//! batch that will not fill), and the PR 6 pressure signal *widens* the
//! batch toward the row cap before any QoS tier narrows a beam.
//! Transcripts are **byte-identical** per session regardless of batch
//! composition: every row of a block is computed with the single-row
//! fold order, and each session's search still consumes its own rows in
//! push order (see `tests/runtime_batch_equivalence.rs`).
//!
//! # Multi-model registry
//!
//! A runtime serves any number of decoding graphs at once. The
//! construction-time graph stays the unnamed default; further models
//! are registered by name — [`AsrRuntime::register_model`] for owned
//! graphs, [`AsrRuntime::register_model_image`] /
//! [`AsrRuntime::load_model`] for zero-copy
//! [`GraphImage`]s whose records stay typed
//! views over the store buffer — and selected per session with
//! [`SessionOptions::model`]. A session resolves its name once, at
//! open: [`AsrRuntime::swap_model`] and
//! [`AsrRuntime::unregister_model`] take effect for *new* opens only,
//! while every in-flight session finishes on the graph it resolved.
//! Replaced graphs are refcounted out: the registry keeps a weak
//! retired record, the sessions' own strong references keep the graph
//! (and any backing image buffer) alive, and the storage frees the
//! moment the last session drops. [`RuntimeStats::models`] reports
//! per-model session counts and resident bytes;
//! [`RuntimeStats::retired_models`] counts swapped-out graphs still
//! draining.

use asr_accel::config::AcceleratorConfig;
use asr_accel::sim::{PreparedWfst, SimResult, Simulator};
use asr_acoustic::dnn::Mlp;
use asr_acoustic::mfcc::{MfccConfig, MfccPipeline};
use asr_acoustic::online::{FrameScorer, OnlineMfcc};
use asr_acoustic::scores::AcousticTable;
use asr_acoustic::signal::{SignalConfig, Utterance};
use asr_acoustic::template::TemplateScorer;
use asr_decoder::parallel::ParallelDecoder;
use asr_decoder::pool::{ScratchPool, ScratchPoolStats, WorkerPool, WorkerPoolStats};
use asr_decoder::search::DecodeOptions;
use asr_decoder::stream::{AlbHandoff, AlbQueue, StreamingDecode};
use asr_decoder::wer;
use asr_wfst::compose::build_decoding_graph;
use asr_wfst::grammar::Grammar;
use asr_wfst::lexicon::{demo_lexicon, Lexicon};
use asr_wfst::store::GraphImage;
use asr_wfst::{PhoneId, Wfst, WfstError, WordId};
use std::collections::VecDeque;
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError, Weak};
use std::time::{Duration, Instant};

/// Nominal wall-clock duration of one acoustic frame (the 10 ms frame
/// shift every front-end in the repo uses): the denominator of the
/// real-time factor the pressure monitor tracks.
const FRAME_SECONDS: f64 = 0.01;

/// Errors from runtime (or pipeline) construction or use.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PipelineError {
    /// Underlying WFST construction failed.
    Wfst(WfstError),
    /// A word is not in the runtime's lexicon.
    UnknownWord(String),
    /// Admission control refused a new session: the runtime is at its
    /// [`QosPolicy`] saturation point. Returned by
    /// [`AsrRuntime::try_open_session`] — never a panic — so callers
    /// can shed load (reject, retry later, fail over) while every
    /// in-flight session runs to completion.
    Overloaded {
        /// Sessions in flight when admission was refused.
        active: usize,
        /// The policy's configured session limit.
        limit: usize,
    },
    /// [`SessionOptions::model`] named a model the registry does not
    /// hold (never registered, or already unregistered).
    UnknownModel(String),
    /// [`AsrRuntime::register_model`] was given a name the registry
    /// already holds (use [`AsrRuntime::swap_model`] to replace a live
    /// model).
    DuplicateModel(String),
    /// A registered graph's phone labels exceed the runtime's acoustic
    /// model, so score rows could never cover its emitting arcs.
    IncompatibleModel {
        /// The name the graph was being registered under.
        name: String,
        /// One past the largest phone label the graph's arcs reference
        /// — the graph's label space, epsilon (label 0) included.
        graph_phones: u32,
        /// Score columns the runtime's acoustic model produces per
        /// frame (phones plus the epsilon column).
        model_phones: u32,
    },
}

/// The runtime's error type — the same enum the legacy pipeline facade
/// reports, under the name the new API reads naturally with.
pub type RuntimeError = PipelineError;

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Wfst(e) => write!(f, "decoding-graph construction failed: {e}"),
            PipelineError::UnknownWord(w) => write!(f, "word {w:?} is not in the lexicon"),
            PipelineError::Overloaded { active, limit } => write!(
                f,
                "runtime overloaded: {active} active sessions at the admission limit of {limit}"
            ),
            PipelineError::UnknownModel(name) => {
                write!(f, "model {name:?} is not registered with the runtime")
            }
            PipelineError::DuplicateModel(name) => {
                write!(f, "model {name:?} is already registered with the runtime")
            }
            PipelineError::IncompatibleModel {
                name,
                graph_phones,
                model_phones,
            } => write!(
                f,
                "model {name:?} uses {graph_phones} phones but the runtime's \
                 acoustic model scores only {model_phones}"
            ),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Wfst(e) => Some(e),
            PipelineError::UnknownWord(_)
            | PipelineError::Overloaded { .. }
            | PipelineError::UnknownModel(_)
            | PipelineError::DuplicateModel(_)
            | PipelineError::IncompatibleModel { .. } => None,
        }
    }
}

impl From<WfstError> for PipelineError {
    fn from(e: WfstError) -> Self {
        PipelineError::Wfst(e)
    }
}

/// A recognized utterance.
#[derive(Debug, Clone, PartialEq)]
pub struct Transcript {
    /// Recognized words, in order.
    pub words: Vec<String>,
    /// Viterbi path cost (lower is better).
    pub cost: f32,
    /// Whether the best path ended in a final state of the graph.
    pub reached_final: bool,
}

/// A mid-utterance hypothesis pulled from a [`Session`].
#[derive(Debug, Clone, PartialEq)]
pub struct Hypothesis {
    /// Words on the current best path, in utterance order.
    pub words: Vec<String>,
    /// Path cost of the current best token (no final cost applied).
    pub cost: f32,
    /// Frames the search has consumed so far (one behind the frames
    /// pushed: the newest row waits in the session's score buffer).
    pub frames_decoded: usize,
}

/// One rung of a [`QosPolicy`]: at or above `min_pressure`, adaptive
/// sessions decode with this beam / max-active pair (clamped to the
/// policy's floors).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosTier {
    min_pressure: f64,
    beam: f32,
    max_active: Option<usize>,
}

impl QosTier {
    /// The pressure at which this tier engages.
    pub fn min_pressure(&self) -> f64 {
        self.min_pressure
    }

    /// The beam width this tier decodes with (before floor clamping).
    pub fn beam(&self) -> f32 {
        self.beam
    }

    /// The max-active cap this tier decodes with (before floor
    /// clamping); `None` leaves the token count beam-limited only.
    pub fn max_active(&self) -> Option<usize> {
        self.max_active
    }
}

/// A tiered degradation policy: the serving-time image of the paper's
/// beam-width/cycles/accuracy trade-off, plus admission control.
///
/// A policy is an ordered list of pressure tiers. Tier `0` is the
/// runtime's base [`DecodeOptions`]; each [`QosPolicy::tier`] call adds
/// the next rung, engaged when the pressure signal reaches its
/// threshold. Per-session floors ([`QosPolicy::floors`]) bound how far
/// degradation may narrow the search, and
/// [`QosPolicy::max_sessions`] arms admission control for
/// [`AsrRuntime::try_open_session`].
///
/// ```
/// use asr_repro::runtime::QosPolicy;
///
/// let policy = QosPolicy::new()
///     .tier(0.50, 30.0, None)         // mild pressure: narrow the beam
///     .tier(0.75, 20.0, Some(2048))   // heavy: cap active tokens too
///     .tier(0.95, 12.0, Some(512))    // saturated: survival mode
///     .floors(8.0, 128)
///     .max_sessions(8);
/// assert_eq!(policy.num_tiers(), 4); // base + three rungs
/// assert_eq!(policy.select_tier(0.6), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QosPolicy {
    tiers: Vec<QosTier>,
    beam_floor: f32,
    max_active_floor: usize,
    max_sessions: usize,
    ewma_alpha: f64,
}

impl Default for QosPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl QosPolicy {
    /// An empty policy: no degradation tiers, no admission limit. On
    /// its own it only turns on pressure tracking; add tiers and a
    /// session limit to make it bite.
    pub fn new() -> Self {
        Self {
            tiers: Vec::new(),
            beam_floor: 0.0,
            max_active_floor: 1,
            max_sessions: 0,
            ewma_alpha: 0.2,
        }
    }

    /// Appends a degradation tier engaged at `min_pressure`.
    ///
    /// # Panics
    ///
    /// Panics unless `min_pressure` is positive, finite, and strictly
    /// greater than the previous tier's threshold (tiers are declared
    /// in ascending pressure order).
    pub fn tier(mut self, min_pressure: f64, beam: f32, max_active: Option<usize>) -> Self {
        assert!(
            min_pressure.is_finite() && min_pressure > 0.0,
            "tier threshold must be positive and finite"
        );
        if let Some(last) = self.tiers.last() {
            assert!(
                min_pressure > last.min_pressure,
                "tiers must be declared in ascending pressure order \
                 ({min_pressure} after {})",
                last.min_pressure
            );
        }
        self.tiers.push(QosTier {
            min_pressure,
            beam,
            max_active,
        });
        self
    }

    /// Per-session floors degradation never crosses: no tier decodes
    /// below `beam_floor` or with fewer than `max_active_floor` active
    /// tokens, however hard the runtime is pressed.
    ///
    /// # Panics
    ///
    /// Panics if `max_active_floor == 0` (the search needs at least one
    /// live token).
    pub fn floors(mut self, beam_floor: f32, max_active_floor: usize) -> Self {
        assert!(max_active_floor > 0, "need at least one active token");
        self.beam_floor = beam_floor;
        self.max_active_floor = max_active_floor;
        self
    }

    /// Arms admission control: [`AsrRuntime::try_open_session`] sheds
    /// new sessions once `limit` are in flight. `0` (the default)
    /// leaves admission unlimited.
    pub fn max_sessions(mut self, limit: usize) -> Self {
        self.max_sessions = limit;
        self
    }

    /// Smoothing factor of the per-frame RTF EWMA, in `(0, 1]`; higher
    /// reacts faster. Defaults to `0.2`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn ewma_alpha(mut self, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        self.ewma_alpha = alpha;
        self
    }

    /// The declared degradation rungs, in ascending pressure order
    /// (tier `0`, the runtime's base options, is implicit).
    pub fn tiers(&self) -> &[QosTier] {
        &self.tiers
    }

    /// The configured admission limit (`0` = unlimited).
    pub fn session_limit(&self) -> usize {
        self.max_sessions
    }

    /// Number of tiers including the implicit base tier `0`.
    pub fn num_tiers(&self) -> usize {
        self.tiers.len() + 1
    }

    /// The tier a given pressure selects: the highest rung whose
    /// threshold the pressure reaches, or `0` below every threshold.
    pub fn select_tier(&self, pressure: f64) -> usize {
        self.tiers
            .iter()
            .take_while(|t| pressure >= t.min_pressure)
            .count()
    }

    /// The `(beam, max_active)` a session decodes with at `tier`, given
    /// the runtime's base options: tier `0` is the base pair untouched;
    /// higher tiers are the declared rungs clamped to the policy's
    /// floors. Tiers past the last rung saturate at the last rung.
    pub fn params(&self, tier: usize, base: &DecodeOptions) -> (f32, Option<usize>) {
        if tier == 0 || self.tiers.is_empty() {
            return (base.beam, base.max_active);
        }
        let rung = self.tiers[tier.min(self.tiers.len()) - 1];
        let beam = rung.beam.max(self.beam_floor);
        let max_active = rung.max_active.map(|m| m.max(self.max_active_floor));
        (beam, max_active)
    }
}

/// Lock-free pressure bookkeeping shared by every runtime clone: the
/// serving-side observability the accelerator exposes through its
/// cycle counters, kept off the frame hot path (a handful of relaxed
/// atomics per frame, none at all when no [`QosPolicy`] is installed).
#[derive(Debug, Default)]
struct PressureMonitor {
    active_sessions: AtomicUsize,
    peak_sessions: AtomicUsize,
    shed_sessions: AtomicU64,
    frames_observed: AtomicU64,
    /// EWMA of the per-frame real-time factor, as `f64` bits (`0` =
    /// nothing observed yet).
    ewma_rtf_bits: AtomicU64,
    /// The latest combined pressure signal, as `f64` bits.
    pressure_bits: AtomicU64,
    tier: AtomicUsize,
    peak_tier: AtomicUsize,
}

/// A point-in-time snapshot of the runtime's serving state, from
/// [`AsrRuntime::stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeStats {
    /// Sessions currently in flight.
    pub active_sessions: usize,
    /// High-water mark of concurrent sessions.
    pub peak_sessions: usize,
    /// Sessions refused by [`AsrRuntime::try_open_session`].
    pub shed_sessions: u64,
    /// Frames the pressure monitor has timed (0 without a policy).
    pub frames_observed: u64,
    /// EWMA of the per-frame real-time factor (decode seconds per 10 ms
    /// frame); `0.0` before any frame is observed.
    pub ewma_rtf: f64,
    /// The combined pressure signal: the maximum of session saturation,
    /// executor queue depth per lane, and the RTF EWMA.
    pub pressure: f64,
    /// The degradation tier adaptive sessions currently decode at
    /// (`0` = base options).
    pub tier: usize,
    /// The highest tier the runtime has reached.
    pub peak_tier: usize,
    /// Scratch-pool counters (cold checkouts vs warm restores).
    pub scratch: ScratchPoolStats,
    /// Executor scheduling counters, when the shared pool has been
    /// spun up (`None` on one-lane runtimes or before first use).
    pub executor: Option<WorkerPoolStats>,
    /// Tasks queued in the executor right now (0 when `executor` is
    /// `None`).
    pub executor_queue_depth: usize,
    /// Batched-scoring counters, when the runtime has a
    /// [`BatchScoringConfig`] installed.
    pub batch: Option<BatchScoringStats>,
    /// Per-model registry counters, one entry per registered model (the
    /// construction-time default graph is not listed — its sessions are
    /// the `active_sessions` remainder).
    pub models: Vec<ModelStats>,
    /// Total graph bytes resident for the registered models: image
    /// bytes for image-backed models, heap record bytes for owned ones.
    pub resident_model_bytes: usize,
    /// Swapped-out or unregistered graphs still held alive by in-flight
    /// sessions; each is freed (and leaves this count) when its last
    /// session drops.
    pub retired_models: usize,
}

/// One registered model's counters, from [`RuntimeStats::models`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelStats {
    /// The name the model was registered under.
    pub name: String,
    /// Sessions currently decoding over this model.
    pub active_sessions: usize,
    /// Sessions ever opened on this model (across swaps the counter
    /// carries over: it counts the *name*, not the graph behind it).
    pub opened_sessions: u64,
    /// Bytes of graph storage this model keeps resident.
    pub resident_bytes: usize,
    /// Whether the graph is a zero-copy view over a v2 store image.
    pub image_backed: bool,
}

/// Counters of the cross-session batched scoring service, from
/// [`RuntimeStats::batch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchScoringStats {
    /// Gather windows flushed through the block forward pass.
    pub batches: u64,
    /// Score rows produced by block flushes (across all sessions).
    pub batched_rows: u64,
    /// Rows scored synchronously because the session was alone on the
    /// service (the lone-session fallback).
    pub single_row_fallbacks: u64,
    /// The widest block any flush has scored.
    pub widest_batch: usize,
    /// Flushes whose gather target had been widened past the live
    /// session count by the pressure signal.
    pub widened_flushes: u64,
    /// Flushes performed by an idle executor lane draining a partially
    /// filled gather window (rows that would otherwise have waited for
    /// the next submitter).
    pub idle_flushes: u64,
    /// Sessions currently registered with the service (audio-fed
    /// sessions that have pushed at least one sample).
    pub open_slots: usize,
    /// Rows sitting in the gather window right now, awaiting the next
    /// flush (by a submitter or an idle lane).
    pub pending_rows: usize,
}

/// Configuration of the cross-session batched scoring service, as a
/// builder for [`RuntimeConfig::batch_scoring`].
///
/// The gather window is bounded two ways: `max_rows` caps how many
/// frames one block forward pass may score, and `max_wait_frames` caps
/// how many of its *own* frames any session lets ride unscored before
/// it forces a flush — so a session's search never lags its audio by
/// more than the wait budget, however idle its batch mates are. The
/// flush target between those bounds is the number of live sessions,
/// widened toward `max_rows` by the runtime's pressure signal (see
/// [`RuntimeConfig::qos`]): under pressure the service trades a little
/// latency for deeper batches *before* any QoS tier narrows a beam.
///
/// ```
/// use asr_repro::runtime::BatchScoringConfig;
///
/// let cfg = BatchScoringConfig::new(32).max_wait_frames(3);
/// assert_eq!(cfg.max_rows(), 32);
/// assert_eq!(cfg.max_wait_frames_limit(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchScoringConfig {
    max_rows: usize,
    max_wait_frames: usize,
}

impl BatchScoringConfig {
    /// A service whose gather window holds at most `max_rows` frames,
    /// with the default wait budget of two frames per session.
    ///
    /// # Panics
    ///
    /// Panics if `max_rows == 0`.
    pub fn new(max_rows: usize) -> Self {
        assert!(max_rows > 0, "the gather window needs at least one row");
        Self {
            max_rows,
            max_wait_frames: 2,
        }
    }

    /// Sets the per-session wait budget: once a session has more than
    /// `frames` of its own rows in the gather window, its next submit
    /// flushes the window regardless of the gather target.
    ///
    /// # Panics
    ///
    /// Panics if `frames == 0`.
    pub fn max_wait_frames(mut self, frames: usize) -> Self {
        assert!(frames > 0, "sessions must be allowed one in-flight row");
        self.max_wait_frames = frames;
        self
    }

    /// The gather window's row cap.
    pub fn max_rows(&self) -> usize {
        self.max_rows
    }

    /// The per-session wait budget, in frames.
    pub fn max_wait_frames_limit(&self) -> usize {
        self.max_wait_frames
    }
}

/// The runtime's acoustic model: the template prototype scorer (the
/// functional default) or a seeded MLP (the realistic DNN compute
/// shape). Both expose the same three entry points — whole waveform,
/// single frame, row block — with the block path bit-identical per row
/// to the single-frame path (the foundation the batched service's
/// determinism rests on).
#[derive(Debug)]
enum AcousticModel {
    Template(TemplateScorer),
    Mlp { mlp: Mlp, pipeline: MfccPipeline },
}

impl AcousticModel {
    /// The MFCC configuration session front-ends must extract with.
    fn mfcc_config(&self) -> &MfccConfig {
        match self {
            AcousticModel::Template(t) => t.mfcc_config(),
            AcousticModel::Mlp { pipeline, .. } => pipeline.config(),
        }
    }

    /// Feature vector width of one frame.
    fn feat_dim(&self) -> usize {
        match self {
            AcousticModel::Template(t) => MfccPipeline::new(*t.mfcc_config()).dim(),
            AcousticModel::Mlp { mlp, .. } => mlp.input_dim(),
        }
    }

    /// Width of one acoustic cost row (phones + the epsilon column).
    fn row_len(&self) -> usize {
        match self {
            AcousticModel::Template(t) => t.num_phones() as usize + 1,
            AcousticModel::Mlp { mlp, .. } => mlp.output_dim() + 1,
        }
    }

    /// Batch-scores a whole waveform (the one-shot [`AsrRuntime::score`]
    /// path).
    fn score_waveform(&self, samples: &[f32]) -> AcousticTable {
        match self {
            AcousticModel::Template(t) => t.score_waveform(samples),
            AcousticModel::Mlp { mlp, pipeline } => mlp.score_utterance(&pipeline.process(samples)),
        }
    }

    /// Scores one frame into a cost row; `x`/`y` are the MLP's pooled
    /// activation buffers (untouched by the template model).
    fn score_frame_into(&self, feat: &[f32], row: &mut [f32], x: &mut Vec<f32>, y: &mut Vec<f32>) {
        match self {
            AcousticModel::Template(t) => {
                let mut shared = t;
                shared.score_into(feat, row);
            }
            AcousticModel::Mlp { mlp, .. } => mlp.score_row_into(feat, row, x, y),
        }
    }

    /// Exact scratch length the block path needs for `rows` frames.
    fn block_scratch_len(&self, rows: usize) -> usize {
        match self {
            AcousticModel::Template(_) => 0,
            AcousticModel::Mlp { mlp, .. } => mlp.block_scratch_len(rows),
        }
    }

    /// Scores a packed block of `rows` feature vectors into packed cost
    /// rows, each row bit-identical to [`AcousticModel::score_frame_into`]
    /// on that row alone.
    fn score_block_into(&self, feats: &[f32], rows: usize, out: &mut [f32], scratch: &mut [f32]) {
        match self {
            AcousticModel::Template(t) => {
                debug_assert!(
                    scratch.is_empty(),
                    "template block scoring takes no scratch"
                );
                t.score_block_into(feats, rows, out);
            }
            AcousticModel::Mlp { mlp, .. } => mlp.score_block_into(feats, rows, out, scratch),
        }
    }
}

/// A session's registration with the batched scoring service: the slot
/// index plus a generation counter, so a slot recycled after a
/// mid-batch `Session::Drop` can never receive (or steal) a stale row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BatchSlot {
    index: usize,
    gen: u64,
}

/// Per-session state inside the batched scoring service.
#[derive(Debug, Default)]
struct SlotState {
    gen: u64,
    live: bool,
    /// Rows this session has in the gather window, not yet flushed.
    in_flight: usize,
    /// Scored rows awaiting this session's next drain, FIFO, flattened
    /// at the service row length — the session's slice of the ALB.
    ready: VecDeque<f32>,
}

/// The mutable heart of the batched scoring service: the gather window
/// plus per-session slots, all preallocated at construction so the
/// steady-state submit → flush → scatter cycle never allocates.
///
/// One mutex guards the whole state, **held across the flush**: the
/// block forward pass runs under the lock. That serializes flushes and
/// makes per-session row order trivially FIFO (a session's rows cannot
/// leapfrog each other through overlapping flushes); submitting
/// sessions briefly queue on the mutex instead — they would otherwise
/// be queueing on the same matrix compute anyway.
#[derive(Debug)]
struct BatchState {
    slots: Vec<SlotState>,
    free: Vec<usize>,
    /// Registered (live) slots.
    live: usize,
    /// The gather window: `pending` packed feature rows.
    feats: Vec<f32>,
    /// Which slot each pending row belongs to.
    owners: Vec<BatchSlot>,
    pending: usize,
    /// The scatter buffer one flush scores into.
    out: Vec<f32>,
    /// Block activation scratch (empty for the template model).
    scratch: Vec<f32>,
}

/// The cross-session batched scoring service (see the module docs).
#[derive(Debug)]
struct BatchService {
    cfg: BatchScoringConfig,
    feat_dim: usize,
    row_len: usize,
    state: Mutex<BatchState>,
    batches: AtomicU64,
    batched_rows: AtomicU64,
    single_row_fallbacks: AtomicU64,
    widest_batch: AtomicUsize,
    widened_flushes: AtomicU64,
    idle_flushes: AtomicU64,
}

impl BatchService {
    fn new(cfg: BatchScoringConfig, model: &AcousticModel) -> Self {
        let feat_dim = model.feat_dim();
        let row_len = model.row_len();
        let max = cfg.max_rows;
        Self {
            cfg,
            feat_dim,
            row_len,
            state: Mutex::new(BatchState {
                slots: Vec::new(),
                free: Vec::new(),
                live: 0,
                feats: vec![0.0; max * feat_dim],
                owners: vec![BatchSlot { index: 0, gen: 0 }; max],
                pending: 0,
                out: vec![0.0; max * row_len],
                scratch: vec![0.0; model.block_scratch_len(max)],
            }),
            batches: AtomicU64::new(0),
            batched_rows: AtomicU64::new(0),
            single_row_fallbacks: AtomicU64::new(0),
            widest_batch: AtomicUsize::new(0),
            widened_flushes: AtomicU64::new(0),
            idle_flushes: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BatchState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn stats(&self) -> BatchScoringStats {
        let (live, pending) = {
            let st = self.lock();
            (st.live, st.pending)
        };
        BatchScoringStats {
            batches: self.batches.load(Ordering::Acquire),
            batched_rows: self.batched_rows.load(Ordering::Acquire),
            single_row_fallbacks: self.single_row_fallbacks.load(Ordering::Acquire),
            widest_batch: self.widest_batch.load(Ordering::Acquire),
            widened_flushes: self.widened_flushes.load(Ordering::Acquire),
            idle_flushes: self.idle_flushes.load(Ordering::Acquire),
            open_slots: live,
            pending_rows: pending,
        }
    }
}

/// What [`RuntimeInner::batch_submit`] asks the session to do with the
/// frame it just completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SubmitOutcome {
    /// The frame joined the gather window (and any due flush already
    /// ran); drain the ready queue.
    Queued,
    /// The session is alone on the service: score the row synchronously
    /// (bit-identical to the block path) — the lone-session fallback
    /// that keeps a single caller from ever waiting out a batch window.
    ScoreInline,
}

/// Construction-time configuration for an [`AsrRuntime`], as a builder.
///
/// ```
/// use asr_repro::runtime::{AsrRuntime, RuntimeConfig};
///
/// let runtime = AsrRuntime::demo_with(RuntimeConfig::new().lanes(2).beam(40.0))?;
/// assert_eq!(runtime.lanes(), 2);
/// # Ok::<(), asr_repro::PipelineError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    lanes: usize,
    options: DecodeOptions,
    frames_per_phone: usize,
    qos: Option<QosPolicy>,
    acoustic: AcousticSpec,
    batch: Option<BatchScoringConfig>,
    scores_route: ScoresRoute,
    scores_threshold: usize,
}

/// Which decode path [`AsrRuntime::recognize_scores`] takes, from
/// [`RuntimeConfig::scores_route`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScoresRoute {
    /// Decide by graph size: lease the shared-pool parallel batch
    /// decoder when the graph has more than
    /// [`RuntimeConfig::parallel_scores_threshold`] states (where its
    /// per-frame shard fan-out amortizes), the session path otherwise.
    /// Runtimes with a [`QosPolicy`] always take the session path —
    /// adaptive tiers only exist there.
    #[default]
    Auto,
    /// Always the session path.
    Session,
    /// Always the leased parallel decoder (inline on a one-lane
    /// runtime). Decodes at the runtime's base [`DecodeOptions`],
    /// bypassing any QoS tiers.
    Parallel,
}

/// Which acoustic backend [`RuntimeConfig`] builds the runtime with.
#[derive(Debug, Clone)]
enum AcousticSpec {
    Template,
    Mlp { hidden: Vec<usize>, seed: u64 },
}

impl Default for RuntimeConfig {
    /// Machine-sized executor, the demo beam, six frames per rendered
    /// phone, no QoS policy.
    fn default() -> Self {
        Self {
            lanes: WorkerPool::default_lanes(),
            options: DecodeOptions::with_beam(40.0),
            frames_per_phone: 6,
            qos: None,
            acoustic: AcousticSpec::Template,
            batch: None,
            scores_route: ScoresRoute::Auto,
            scores_threshold: DEFAULT_SCORES_THRESHOLD,
        }
    }
}

/// The default [`ScoresRoute::Auto`] graph-size threshold, in states.
/// Tuned by `bench_serving`'s large-graph sweep: below ~20k states the
/// per-frame shard fan-out costs more than it wins; at 50k states the
/// leased decoder runs ~1.1–1.2× faster than the session path.
const DEFAULT_SCORES_THRESHOLD: usize = 20_000;

impl RuntimeConfig {
    /// The default configuration (see [`RuntimeConfig::default`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the executor width: the number of lanes the runtime's shared
    /// [`WorkerPool`] has. `1` means no worker threads at all — every
    /// decode and every session runs inline.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn lanes(mut self, lanes: usize) -> Self {
        assert!(lanes > 0, "need at least one lane");
        self.lanes = lanes;
        self
    }

    /// Sets the beam width every decode uses.
    pub fn beam(mut self, beam: f32) -> Self {
        self.options.beam = beam;
        self
    }

    /// Replaces the full beam-search option set.
    pub fn decode_options(mut self, options: DecodeOptions) -> Self {
        self.options = options;
        self
    }

    /// Frames per phone for [`AsrRuntime::render_words`]' synthetic
    /// speech.
    ///
    /// # Panics
    ///
    /// Panics if `frames_per_phone == 0`.
    pub fn frames_per_phone(mut self, frames_per_phone: usize) -> Self {
        assert!(frames_per_phone > 0, "need at least one frame per phone");
        self.frames_per_phone = frames_per_phone;
        self
    }

    /// Installs a load-adaptive [`QosPolicy`]: tiered degradation plus
    /// admission control. Without a policy the runtime behaves exactly
    /// as before — no pressure tracking on the frame path, infallible
    /// admission, fixed search parameters.
    pub fn qos(mut self, policy: QosPolicy) -> Self {
        self.qos = Some(policy);
        self
    }

    /// Replaces the template prototype scorer with a seeded
    /// random-weight MLP over the default MFCC front-end — the
    /// realistic DNN compute shape for batching experiments (the
    /// template model's per-frame cost is too cheap for a block forward
    /// pass to amortize anything). `hidden` lists the hidden layer
    /// widths; the input width is the MFCC dimension and the output
    /// width the lexicon's phone count. Deterministic in `seed`.
    pub fn mlp_acoustic(mut self, hidden: &[usize], seed: u64) -> Self {
        self.acoustic = AcousticSpec::Mlp {
            hidden: hidden.to_vec(),
            seed,
        };
        self
    }

    /// Installs the cross-session batched scoring service: raw-audio
    /// sessions gather completed feature frames into a shared window
    /// and score them with one block forward pass (see the module
    /// docs). Transcripts are byte-identical with or without the
    /// service, for any window bound — pinned by the differential test
    /// layer.
    pub fn batch_scoring(mut self, cfg: BatchScoringConfig) -> Self {
        self.batch = Some(cfg);
        self
    }

    /// Overrides which path [`AsrRuntime::recognize_scores`] decodes on:
    /// [`ScoresRoute::Auto`] (the default) leases the shared-pool
    /// parallel decoder above the graph-size threshold,
    /// [`ScoresRoute::Session`]/[`ScoresRoute::Parallel`] force one path
    /// unconditionally. Every route is byte-identical — the parallel
    /// decoder's per-frame shard phases reduce in one fold order.
    pub fn scores_route(mut self, route: ScoresRoute) -> Self {
        self.scores_route = route;
        self
    }

    /// Sets the [`ScoresRoute::Auto`] graph-size threshold: pre-scored
    /// batch decodes lease the parallel decoder when the graph has more
    /// than `states` states.
    pub fn parallel_scores_threshold(mut self, states: usize) -> Self {
        self.scores_threshold = states;
        self
    }
}

/// Per-session options for [`AsrRuntime::open_session_with`], as a
/// builder.
#[derive(Debug, Clone, Default)]
pub struct SessionOptions {
    /// `None` = automatic: overlap scoring with the search whenever the
    /// runtime's executor has more than one lane.
    overlap: Option<bool>,
    /// `None` = depth 1: the classic single-row Section VI overlap.
    overlap_depth: Option<usize>,
    /// `None` = automatic: follow the runtime's [`QosPolicy`] tier
    /// whenever one is installed.
    qos: Option<bool>,
    /// Pin the session to one policy tier instead of following the
    /// pressure signal.
    pinned_tier: Option<usize>,
    /// `None` = automatic: join the runtime's batched scoring service
    /// whenever one is installed.
    batched: Option<bool>,
    /// Decode over a registered model instead of the runtime's default
    /// graph.
    model: Option<String>,
}

impl SessionOptions {
    /// The default options: overlap scoring and search automatically
    /// when the executor has lanes to steal from.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forces the Section VI scoring/search overlap on or off for this
    /// session. Results are byte-identical either way; `false` removes
    /// all executor traffic from the session's pushes, `true` requests
    /// overlap even where it cannot win (it still degrades to inline
    /// execution on a one-lane runtime).
    pub fn overlap_scoring(mut self, overlap: bool) -> Self {
        self.overlap = Some(overlap);
        self
    }

    /// Widens the scoring/search overlap to multi-row ALB batches: each
    /// push runs fork-joins that score up to `depth` future rows as
    /// independent executor tasks *while* the search relaxes every
    /// already-scored row — the paper's Acoustic Likelihood Buffer as a
    /// multi-frame batch buffer. `1` (the default) is the classic
    /// single-row overlap. Transcripts are byte-identical for any depth:
    /// row order and per-row arithmetic never change, only when rows are
    /// scored. [`Session::partial`] may lag the pushes by up to `depth`
    /// rows instead of one. Ignored when the session scores inline (a
    /// one-lane runtime or [`SessionOptions::overlap_scoring`]`(false)`)
    /// or joins the batched scoring service.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    pub fn overlap_depth(mut self, depth: usize) -> Self {
        assert!(depth > 0, "overlap_depth must be at least 1");
        self.overlap_depth = Some(depth);
        self
    }

    /// Opts this session out of (or explicitly into) the runtime's
    /// adaptive QoS. With `false` the session decodes at the runtime's
    /// base [`DecodeOptions`] for its whole life — byte-identical to a
    /// session on a runtime with no policy installed — though it still
    /// counts toward admission control.
    pub fn adaptive_qos(mut self, enabled: bool) -> Self {
        self.qos = Some(enabled);
        self
    }

    /// Pins the session to policy tier `tier` (0 = base options)
    /// instead of following the pressure signal: every frame decodes at
    /// that tier's beam/max-active, making the session byte-identical
    /// to a fixed-beam decode at those parameters. Implies QoS is
    /// enabled for the session.
    ///
    /// # Panics (at `open_session*`)
    ///
    /// Opening the session panics if the runtime has no policy, `tier`
    /// is out of range, or the session also set `adaptive_qos(false)`.
    pub fn pin_tier(mut self, tier: usize) -> Self {
        self.pinned_tier = Some(tier);
        self
    }

    /// Opts this raw-audio session out of (or explicitly into) the
    /// runtime's batched scoring service. With `false` the session
    /// scores every frame synchronously on its own — byte-identical to
    /// the batched path (that is the service's core contract), which
    /// makes `batched_scoring(false)` the differential baseline the
    /// test layer diffs the service against. Ignored on runtimes
    /// without [`RuntimeConfig::batch_scoring`] and for row-fed
    /// sessions (pre-scored rows never re-score).
    pub fn batched_scoring(mut self, batched: bool) -> Self {
        self.batched = Some(batched);
        self
    }

    /// Decodes this session over the registered model `name` instead of
    /// the runtime's default graph (see [`AsrRuntime::register_model`]).
    /// The session resolves the name once, at open: it keeps decoding
    /// over the graph it resolved even if the model is swapped or
    /// unregistered mid-utterance.
    ///
    /// [`AsrRuntime::try_open_session_with`] reports an unknown name as
    /// a typed [`PipelineError::UnknownModel`] (before admission is
    /// charged); the infallible [`AsrRuntime::open_session_with`]
    /// panics on one, like every other invalid-options misuse.
    pub fn model(mut self, name: impl Into<String>) -> Self {
        self.model = Some(name.into());
        self
    }
}

/// The per-session streaming front-end: an [`OnlineMfcc`] plus the
/// feature/row buffers one frame of scoring works over. Checked out of
/// (and restored to) the runtime's front-end pool.
#[derive(Debug)]
struct SessionFrontend {
    mfcc: OnlineMfcc,
    feat: Vec<f32>,
    row: Vec<f32>,
    /// MLP activation ping-pong buffers for the single-row scoring
    /// paths (unused by the template model; empty until first use,
    /// then warm).
    x: Vec<f32>,
    y: Vec<f32>,
    /// Gathered feature frames for one multi-row overlap batch (empty
    /// until a session uses `overlap_depth > 1`, then warm in the pool).
    batch_feats: Vec<Vec<f32>>,
    /// Per-task MLP activation scratch for the multi-row batch — one
    /// `(x, y)` pair per concurrently scored row.
    batch_scratch: Vec<(Vec<f32>, Vec<f32>)>,
}

/// Per-name session counters, shared between the registry entry and
/// every session opened on that name (so a swap does not reset them:
/// they follow the name, not the graph).
#[derive(Debug, Default)]
struct ModelCounters {
    active: AtomicUsize,
    opened: AtomicU64,
}

/// One registered model: its decoding graph plus bookkeeping.
#[derive(Debug)]
struct ModelEntry {
    graph: Arc<Wfst>,
    resident_bytes: usize,
    counters: Arc<ModelCounters>,
}

/// A graph swapped out or unregistered while sessions may still be
/// decoding over it. The registry keeps only a [`Weak`]; the sessions'
/// own strong references keep the graph (and any backing image buffer)
/// alive until the last one drops, at which point the sweep in
/// [`AsrRuntime::stats`] (and every registry mutation) forgets it.
#[derive(Debug)]
struct RetiredModel {
    graph: Weak<Wfst>,
}

/// The multi-model registry: named graphs sessions can select with
/// [`SessionOptions::model`], plus the retired list that tracks
/// swapped-out graphs until their in-flight sessions finish.
#[derive(Debug, Default)]
struct ModelRegistry {
    /// Registration order is preserved (it is the order
    /// [`RuntimeStats::models`] reports) and lookups are linear: the
    /// registry holds a handful of models, not a symbol table.
    entries: Vec<(String, ModelEntry)>,
    retired: Vec<RetiredModel>,
}

impl ModelRegistry {
    fn find(&self, name: &str) -> Option<&ModelEntry> {
        self.entries
            .iter()
            .find_map(|(n, e)| (n == name).then_some(e))
    }

    /// Drops retired records whose graphs no session holds anymore.
    fn sweep_retired(&mut self) {
        self.retired.retain(|r| r.graph.strong_count() > 0);
    }

    /// Moves a replaced graph to the retired list — unless nothing but
    /// the registry held it, in which case it frees right here.
    fn retire(&mut self, graph: Arc<Wfst>) {
        let weak = Arc::downgrade(&graph);
        drop(graph);
        if weak.strong_count() > 0 {
            self.retired.push(RetiredModel { graph: weak });
        }
        self.sweep_retired();
    }
}

/// Engine state shared by every clone of a runtime handle and every
/// session opened from it.
#[derive(Debug)]
struct RuntimeInner {
    lexicon: Lexicon,
    graph: Arc<Wfst>,
    model: AcousticModel,
    /// The cross-session batched scoring service, when one is
    /// configured.
    batch: Option<BatchService>,
    signal: SignalConfig,
    options: DecodeOptions,
    lanes: usize,
    scratch_pool: ScratchPool,
    /// Warmed streaming front-ends (online MFCC state + scoring
    /// buffers), pooled like decode scratches so raw-audio sessions are
    /// allocation-free per frame in the steady state.
    frontend_pool: Mutex<Vec<SessionFrontend>>,
    /// The shared work-stealing executor, spun up on first use (a
    /// one-lane runtime never spawns it).
    executor: OnceLock<Arc<WorkerPool>>,
    frames_per_phone: usize,
    /// The load-adaptive degradation policy, when one is installed.
    qos: Option<QosPolicy>,
    /// How [`AsrRuntime::recognize_scores`] picks its decode path.
    scores_route: ScoresRoute,
    /// The [`ScoresRoute::Auto`] graph-size threshold, in states.
    scores_threshold: usize,
    /// The leased parallel batch decoder behind the `recognize_scores`
    /// auto-route, built on first use and reused (its idle working sets
    /// pool like decode scratches).
    parallel: OnceLock<ParallelDecoder>,
    /// Pressure bookkeeping: session counts always, frame timing and
    /// tier selection only when `qos` is present.
    monitor: PressureMonitor,
    /// The multi-model registry (empty until a model is registered; the
    /// construction-time `graph` stays the unnamed default).
    models: Mutex<ModelRegistry>,
}

impl RuntimeInner {
    /// Pops a warmed streaming front-end, or builds the first one.
    fn checkout_frontend(&self) -> SessionFrontend {
        let pooled = self
            .frontend_pool
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop();
        match pooled {
            Some(mut fe) => {
                fe.mfcc.reset();
                fe
            }
            None => {
                let mfcc = OnlineMfcc::new(*self.model.mfcc_config());
                let dim = mfcc.dim();
                SessionFrontend {
                    mfcc,
                    feat: vec![0.0; dim],
                    row: vec![0.0; self.model.row_len()],
                    x: Vec::new(),
                    y: Vec::new(),
                    batch_feats: Vec::new(),
                    batch_scratch: Vec::new(),
                }
            }
        }
    }

    /// Returns a front-end to the pool for the next raw-audio session.
    fn restore_frontend(&self, frontend: SessionFrontend) {
        self.frontend_pool
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(frontend);
    }

    /// Unconditional admission: counts the session in and refreshes the
    /// pressure signal (the infallible [`AsrRuntime::open_session`]
    /// path).
    fn session_opened(&self) {
        let now = self.monitor.active_sessions.fetch_add(1, Ordering::AcqRel) + 1;
        self.monitor.peak_sessions.fetch_max(now, Ordering::AcqRel);
        self.refresh_pressure();
    }

    /// Counts a session out (from `Session`'s `Drop`, so finalize and
    /// abandonment both land here exactly once) and lets the pressure
    /// signal relax.
    fn session_closed(&self) {
        self.monitor.active_sessions.fetch_sub(1, Ordering::AcqRel);
        self.refresh_pressure();
    }

    /// Fallible admission: atomically admits the session iff the
    /// policy's limit leaves room, otherwise sheds it with a typed
    /// [`PipelineError::Overloaded`]. No limit (or no policy) admits
    /// unconditionally.
    fn try_admit(&self) -> Result<(), PipelineError> {
        let limit = self.qos.as_ref().map_or(0, QosPolicy::session_limit);
        if limit == 0 {
            self.session_opened();
            return Ok(());
        }
        let admitted = self.monitor.active_sessions.fetch_update(
            Ordering::AcqRel,
            Ordering::Acquire,
            |active| (active < limit).then_some(active + 1),
        );
        match admitted {
            Ok(previous) => {
                self.monitor
                    .peak_sessions
                    .fetch_max(previous + 1, Ordering::AcqRel);
                self.refresh_pressure();
                Ok(())
            }
            Err(active) => {
                self.monitor.shed_sessions.fetch_add(1, Ordering::AcqRel);
                Err(PipelineError::Overloaded { active, limit })
            }
        }
    }

    /// Feeds one frame's decode wall time into the RTF EWMA and
    /// re-selects the degradation tier. Called at most once per frame,
    /// and only when a policy is installed.
    fn observe_frame(&self, elapsed: Duration) {
        let Some(policy) = &self.qos else { return };
        self.monitor.frames_observed.fetch_add(1, Ordering::Relaxed);
        let rtf = elapsed.as_secs_f64() / FRAME_SECONDS;
        let alpha = policy.ewma_alpha;
        let _ =
            self.monitor
                .ewma_rtf_bits
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |bits| {
                    let next = if bits == 0 {
                        rtf
                    } else {
                        let prev = f64::from_bits(bits);
                        prev + alpha * (rtf - prev)
                    };
                    Some(next.to_bits())
                });
        self.refresh_pressure();
    }

    /// Recomputes the combined pressure signal — the maximum of session
    /// saturation, executor queue depth per lane, and the RTF EWMA —
    /// and the tier it selects. Deliberately reads `executor.get()` so
    /// observation never spawns the pool.
    fn refresh_pressure(&self) {
        let Some(policy) = &self.qos else { return };
        let mut pressure = f64::from_bits(self.monitor.ewma_rtf_bits.load(Ordering::Acquire));
        if policy.max_sessions > 0 {
            let active = self.monitor.active_sessions.load(Ordering::Acquire);
            pressure = pressure.max(active as f64 / policy.max_sessions as f64);
        }
        if let Some(pool) = self.executor.get() {
            pressure = pressure.max(pool.queue_depth() as f64 / self.lanes as f64);
        }
        self.monitor
            .pressure_bits
            .store(pressure.to_bits(), Ordering::Release);
        let tier = policy.select_tier(pressure);
        self.monitor.tier.store(tier, Ordering::Release);
        self.monitor.peak_tier.fetch_max(tier, Ordering::AcqRel);
    }

    /// Registers a session with the batched scoring service, handing it
    /// a generation-stamped slot; `None` when no service is configured.
    fn batch_register(&self) -> Option<BatchSlot> {
        let svc = self.batch.as_ref()?;
        let mut st = svc.lock();
        let index = match st.free.pop() {
            Some(index) => index,
            None => {
                st.slots.push(SlotState::default());
                st.slots.len() - 1
            }
        };
        let live = st.live + 1;
        st.live = live;
        let slot = &mut st.slots[index];
        slot.live = true;
        slot.in_flight = 0;
        slot.ready.clear();
        Some(BatchSlot {
            index,
            gen: slot.gen,
        })
    }

    /// Unregisters a session's slot: bumps the generation (so any stale
    /// handle is dead), drops its ready rows, and compacts its pending
    /// rows out of the gather window — a mid-batch `Session::Drop`
    /// leaves the service healthy for everyone else.
    fn batch_unregister(&self, handle: BatchSlot) {
        let Some(svc) = self.batch.as_ref() else {
            return;
        };
        let mut st = svc.lock();
        let st = &mut *st;
        let slot = &mut st.slots[handle.index];
        if !slot.live || slot.gen != handle.gen {
            return;
        }
        slot.live = false;
        slot.gen += 1;
        slot.in_flight = 0;
        slot.ready.clear();
        let fd = svc.feat_dim;
        let mut kept = 0;
        for r in 0..st.pending {
            let owner = st.owners[r];
            if owner == handle {
                continue;
            }
            if kept != r {
                st.owners[kept] = owner;
                st.feats.copy_within(r * fd..(r + 1) * fd, kept * fd);
            }
            kept += 1;
        }
        st.pending = kept;
        st.live -= 1;
        st.free.push(handle.index);
    }

    /// Submits one completed feature frame to the gather window,
    /// flushing it inline (under the service lock, on the submitting
    /// thread) when the window reaches its target or this session's
    /// wait budget is spent. Returns [`SubmitOutcome::ScoreInline`]
    /// instead when the session is alone on the service — the lone
    /// caller scores synchronously and never waits out a window.
    fn batch_submit(&self, handle: BatchSlot, feat: &[f32]) -> SubmitOutcome {
        let svc = self.batch.as_ref().expect("batch_submit without a service");
        let mut st = svc.lock();
        let state = &mut *st;
        let slot = &state.slots[handle.index];
        debug_assert!(slot.live && slot.gen == handle.gen, "stale batch slot");
        if state.live == 1 && slot.in_flight == 0 && slot.ready.is_empty() && state.pending == 0 {
            svc.single_row_fallbacks.fetch_add(1, Ordering::Relaxed);
            return SubmitOutcome::ScoreInline;
        }
        let fd = svc.feat_dim;
        debug_assert_eq!(feat.len(), fd, "feature width mismatch");
        let r = state.pending;
        state.feats[r * fd..(r + 1) * fd].copy_from_slice(feat);
        state.owners[r] = handle;
        state.pending += 1;
        state.slots[handle.index].in_flight += 1;
        let base = state.live.clamp(1, svc.cfg.max_rows);
        let target = self.batch_target(svc, base);
        if state.pending >= target {
            if target > base {
                svc.widened_flushes.fetch_add(1, Ordering::Relaxed);
            }
            self.flush_batch_locked(svc, state, true);
        } else if state.slots[handle.index].in_flight > svc.cfg.max_wait_frames {
            self.flush_batch_locked(svc, state, true);
        }
        SubmitOutcome::Queued
    }

    /// The gather target for the next flush: the number of live
    /// sessions (one row each per round-robin cycle), widened toward
    /// the window cap by the pressure signal. The widening saturates
    /// exactly where the first QoS tier engages, so under load the
    /// service deepens batches *before* any beam narrows — the PR 6
    /// pressure coupling.
    fn batch_target(&self, svc: &BatchService, base: usize) -> usize {
        let Some(policy) = &self.qos else {
            return base;
        };
        let Some(first) = policy.tiers().first().map(QosTier::min_pressure) else {
            return base;
        };
        if first <= 0.0 {
            return base;
        }
        let pressure = f64::from_bits(self.monitor.pressure_bits.load(Ordering::Acquire));
        let frac = (pressure / first).clamp(0.0, 1.0);
        let max = svc.cfg.max_rows;
        let widened = base as f64 + frac * max.saturating_sub(base) as f64;
        (widened as usize).clamp(base, max)
    }

    /// Scores the whole gather window with one block forward pass and
    /// scatters each row to its owner's ready queue. Runs with the
    /// service lock held (see [`BatchState`]); on a multi-lane runtime
    /// the block is sharded across pool lanes, which cannot change a
    /// single byte because every output row depends only on its own
    /// feature vector. `sharded: false` forces the inline block path —
    /// the idle-flush hook runs *on* a pool lane, so it must not
    /// fork-join back into the same pool.
    fn flush_batch_locked(&self, svc: &BatchService, st: &mut BatchState, sharded: bool) {
        let rows = st.pending;
        if rows == 0 {
            return;
        }
        let fd = svc.feat_dim;
        let rl = svc.row_len;
        {
            let feats = &st.feats[..rows * fd];
            let out = &mut st.out[..rows * rl];
            let scratch = &mut st.scratch[..self.model.block_scratch_len(rows)];
            let chunks = if sharded {
                self.executor.get().map_or(1, |p| p.lanes().min(rows))
            } else {
                1
            };
            if chunks > 1 {
                let pool = self.executor.get().expect("chunks > 1 implies a pool");
                let per = rows.div_ceil(chunks);
                let srl = self.model.block_scratch_len(1);
                let shards = BlockShards {
                    out: out.as_mut_ptr(),
                    scratch: scratch.as_mut_ptr(),
                };
                let model = &self.model;
                pool.fork_join(chunks, &|chunk| {
                    // Capture the shard struct whole (not its raw-pointer
                    // fields) so its `Sync` impl applies.
                    let shards = &shards;
                    let lo = chunk * per;
                    let hi = rows.min(lo + per);
                    if lo >= hi {
                        return;
                    }
                    let n = hi - lo;
                    // SAFETY: chunk ranges [lo, hi) are disjoint, so
                    // each lane writes a private row range of `out`; the
                    // base pointer outlives the fork_join (the buffer
                    // lives in the locked BatchState).
                    let out =
                        unsafe { std::slice::from_raw_parts_mut(shards.out.add(lo * rl), n * rl) };
                    // SAFETY: same disjointness and lifetime argument
                    // for each lane's private region of `scratch`.
                    let scratch = unsafe {
                        std::slice::from_raw_parts_mut(shards.scratch.add(lo * srl), n * srl)
                    };
                    model.score_block_into(&feats[lo * fd..hi * fd], n, out, scratch);
                });
            } else {
                self.model.score_block_into(feats, rows, out, scratch);
            }
        }
        // Scatter in window order: submits are serialized by the
        // service lock, so this preserves strict per-session FIFO.
        let BatchState {
            slots,
            owners,
            out,
            pending,
            ..
        } = st;
        for r in 0..rows {
            let owner = owners[r];
            let slot = &mut slots[owner.index];
            debug_assert!(
                slot.live && slot.gen == owner.gen,
                "scattering a row to a dead slot"
            );
            debug_assert!(slot.in_flight > 0, "scatter/in-flight bookkeeping drifted");
            slot.in_flight -= 1;
            slot.ready.extend(out[r * rl..(r + 1) * rl].iter().copied());
        }
        *pending = 0;
        svc.batches.fetch_add(1, Ordering::Relaxed);
        svc.batched_rows.fetch_add(rows as u64, Ordering::Relaxed);
        svc.widest_batch.fetch_max(rows, Ordering::Relaxed);
    }

    /// Pops the session's oldest scored row into `buf` (cleared and
    /// refilled; allocation-free once warm). `false` when no row is
    /// ready.
    fn batch_pop_into(&self, handle: BatchSlot, buf: &mut Vec<f32>) -> bool {
        let Some(svc) = self.batch.as_ref() else {
            return false;
        };
        let mut st = svc.lock();
        let slot = &mut st.slots[handle.index];
        debug_assert!(slot.live && slot.gen == handle.gen, "stale batch slot");
        if slot.ready.is_empty() {
            return false;
        }
        debug_assert!(slot.ready.len() >= svc.row_len, "partial row in the ALB");
        buf.clear();
        buf.extend(slot.ready.drain(..svc.row_len));
        true
    }

    /// Flushes the gather window if this session still has rows in it —
    /// the sync point behind [`Session::flush_scoring`] and finalize.
    fn batch_flush_for(&self, handle: BatchSlot) {
        let Some(svc) = self.batch.as_ref() else {
            return;
        };
        let mut st = svc.lock();
        let state = &mut *st;
        let slot = &state.slots[handle.index];
        debug_assert!(slot.live && slot.gen == handle.gen, "stale batch slot");
        if slot.in_flight > 0 {
            self.flush_batch_locked(svc, state, true);
        }
    }

    /// The executor's idle hook: a lane about to park drains a partially
    /// filled gather window instead of leaving those rows to wait on the
    /// next submitter (PR 7's "remaining headroom"). `try_lock` only — a
    /// parking lane must never contend with the submit hot path — and
    /// the block scores inline on the idle lane itself, because the hook
    /// runs *on* a pool lane and must not fork-join back into the same
    /// pool. Returns whether it flushed anything (the hook contract:
    /// `true` re-scans for work instead of parking).
    fn try_idle_flush(&self) -> bool {
        let Some(svc) = self.batch.as_ref() else {
            return false;
        };
        let Ok(mut st) = svc.state.try_lock() else {
            return false;
        };
        let state = &mut *st;
        if state.pending == 0 {
            return false;
        }
        self.flush_batch_locked(svc, state, false);
        svc.idle_flushes.fetch_add(1, Ordering::Relaxed);
        true
    }
}

/// Raw-pointer shards of one flush's output and scratch buffers,
/// letting pool lanes score disjoint row ranges of the block in place.
#[derive(Clone, Copy)]
struct BlockShards {
    out: *mut f32,
    scratch: *mut f32,
}

// SAFETY: lanes only ever dereference these through disjoint row ranges
// (see `flush_batch_locked`), so sharing the base pointers is sound.
unsafe impl Send for BlockShards {}
unsafe impl Sync for BlockShards {}

/// Raw-pointer shards of one multi-row overlap batch: scoring chunk
/// `i + 1` works its own `(feats[i], rows[i], scratch[i])` triple while
/// chunk 0 steps the search, so no two tasks touch the same element.
#[derive(Clone, Copy)]
struct RowShards {
    feats: *const Vec<f32>,
    rows: *mut Vec<f32>,
    scratch: *mut (Vec<f32>, Vec<f32>),
}

// SAFETY: each fork-join chunk dereferences exactly one index of each
// base pointer and the indices are disjoint across chunks (see
// `Session::drain_frontend_multi`), so sharing the pointers is sound.
unsafe impl Send for RowShards {}
unsafe impl Sync for RowShards {}

/// The shared serving runtime: engine state plus one global
/// work-stealing executor, handing out owned [`Session`]s.
///
/// Cloning the handle is an `Arc` bump — clone it freely into
/// per-connection threads; every clone shares the scratch pool, the
/// front-end pool, and the executor.
///
/// # Quick start
///
/// ```
/// use asr_repro::runtime::AsrRuntime;
///
/// let runtime = AsrRuntime::demo()?;
/// let audio = runtime.render_words(&["call", "mom"])?;
/// let transcript = runtime.recognize(&audio);
/// assert_eq!(transcript.words, vec!["call", "mom"]);
/// # Ok::<(), asr_repro::PipelineError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AsrRuntime {
    inner: Arc<RuntimeInner>,
}

impl AsrRuntime {
    /// Builds a runtime from a lexicon and grammar with the default
    /// [`RuntimeConfig`].
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Wfst`] if the decoding graph cannot be
    /// composed.
    pub fn new(lexicon: Lexicon, grammar: &Grammar) -> Result<Self, PipelineError> {
        Self::with_config(lexicon, grammar, RuntimeConfig::default())
    }

    /// Builds a runtime with an explicit configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Wfst`] if the decoding graph cannot be
    /// composed.
    pub fn with_config(
        lexicon: Lexicon,
        grammar: &Grammar,
        config: RuntimeConfig,
    ) -> Result<Self, PipelineError> {
        let graph = build_decoding_graph(&lexicon, grammar)?;
        Ok(Self::with_graph(graph, lexicon, config))
    }

    /// Builds a runtime directly over an existing decoding graph — the
    /// entry point for synthetic-scale serving experiments (the
    /// `bench_load` overload harness builds graphs far larger than any
    /// composed demo vocabulary) and for callers that compose or load
    /// graphs themselves.
    ///
    /// The lexicon provides word spellings for transcripts and the
    /// phone space for the *raw-audio* path; sessions fed pre-scored
    /// rows only need the rows to match the graph's phone labels.
    /// Unknown word IDs on decoded paths render as `"<?>"`.
    pub fn with_graph(graph: Wfst, lexicon: Lexicon, config: RuntimeConfig) -> Self {
        let graph = Arc::new(graph);
        let model = match &config.acoustic {
            AcousticSpec::Template => AcousticModel::Template(TemplateScorer::with_default_signal(
                lexicon.num_phones() as u32,
            )),
            AcousticSpec::Mlp { hidden, seed } => {
                let pipeline = MfccPipeline::new(MfccConfig::default());
                let mut dims = vec![pipeline.dim()];
                dims.extend_from_slice(hidden);
                dims.push(lexicon.num_phones());
                AcousticModel::Mlp {
                    mlp: Mlp::new(&dims, *seed),
                    pipeline,
                }
            }
        };
        let batch = config
            .batch
            .as_ref()
            .map(|cfg| BatchService::new(cfg.clone(), &model));
        let scratch_pool = ScratchPool::new(graph.num_states());
        Self {
            inner: Arc::new(RuntimeInner {
                lexicon,
                graph,
                model,
                batch,
                signal: SignalConfig::default(),
                options: config.options,
                lanes: config.lanes,
                scratch_pool,
                frontend_pool: Mutex::new(Vec::new()),
                executor: OnceLock::new(),
                frames_per_phone: config.frames_per_phone,
                qos: config.qos,
                scores_route: config.scores_route,
                scores_threshold: config.scores_threshold,
                parallel: OnceLock::new(),
                monitor: PressureMonitor::default(),
                models: Mutex::new(ModelRegistry::default()),
            }),
        }
    }

    /// The ready-made demo system: twelve command words, uniform
    /// grammar, default configuration.
    ///
    /// # Errors
    ///
    /// Propagates graph construction failures (none for the built-in
    /// data).
    pub fn demo() -> Result<Self, PipelineError> {
        Self::demo_with(RuntimeConfig::default())
    }

    /// The demo system with an explicit configuration.
    ///
    /// # Errors
    ///
    /// Propagates graph construction failures (none for the built-in
    /// data).
    pub fn demo_with(config: RuntimeConfig) -> Result<Self, PipelineError> {
        let lexicon = demo_lexicon();
        let words: Vec<WordId> = (1..=lexicon.num_words() as u32).map(WordId).collect();
        Self::with_config(lexicon, &Grammar::uniform(&words), config)
    }

    /// The decoding graph (for inspection and accelerator experiments).
    pub fn graph(&self) -> &Wfst {
        &self.inner.graph
    }

    /// The lexicon.
    pub fn lexicon(&self) -> &Lexicon {
        &self.inner.lexicon
    }

    /// The beam-search options every decode uses.
    pub fn options(&self) -> &DecodeOptions {
        &self.inner.options
    }

    /// The configured executor width.
    pub fn lanes(&self) -> usize {
        self.inner.lanes
    }

    /// The scratch pool backing the serving path (for observability:
    /// [`ScratchPool::stats`] splits cold checkouts from warm restores).
    pub fn scratch_pool(&self) -> &ScratchPool {
        &self.inner.scratch_pool
    }

    /// The installed QoS policy, when the runtime has one.
    pub fn qos_policy(&self) -> Option<&QosPolicy> {
        self.inner.qos.as_ref()
    }

    /// Checks a candidate graph against the runtime's acoustic model:
    /// every phone its emitting arcs reference must have a score
    /// column, or sessions on it could index past their rows. Both
    /// sides count label 0 (epsilon): `num_phones` is one past the
    /// largest input label, and a score row is phones + the epsilon
    /// column.
    fn check_model_compat(&self, name: &str, graph: &Wfst) -> Result<(), PipelineError> {
        let model_phones = self.inner.model.row_len() as u32;
        if graph.num_phones() > model_phones {
            return Err(PipelineError::IncompatibleModel {
                name: name.to_owned(),
                graph_phones: graph.num_phones(),
                model_phones,
            });
        }
        Ok(())
    }

    /// Registers `graph` under `name` in the runtime's model registry,
    /// so sessions can select it with [`SessionOptions::model`]. The
    /// graph's heap storage is counted as its resident bytes; to share
    /// a store image's buffer instead, use
    /// [`AsrRuntime::register_model_image`].
    ///
    /// # Errors
    ///
    /// [`PipelineError::DuplicateModel`] if `name` is already
    /// registered, [`PipelineError::IncompatibleModel`] if the graph
    /// references phones the runtime's acoustic model cannot score.
    pub fn register_model(&self, name: &str, graph: Wfst) -> Result<(), RuntimeError> {
        let resident = graph.storage_bytes();
        self.register_entry(name, Arc::new(graph), resident)
    }

    /// Registers the graph of a loaded zero-copy store image under
    /// `name`. The registry holds typed views over the image buffer —
    /// no record is copied — and the model's resident bytes are the
    /// image's bytes. The buffer lives exactly as long as some session
    /// or registry entry still views it.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AsrRuntime::register_model`].
    pub fn register_model_image(&self, name: &str, image: GraphImage) -> Result<(), RuntimeError> {
        let resident = image.resident_bytes();
        // Cloning an image-backed graph clones section views (pointer +
        // buffer handle), never the records.
        self.register_entry(name, Arc::new(image.wfst().clone()), resident)
    }

    /// Loads a v2 store image from `path` and registers its graph under
    /// `name` — the one-call deployment path for prebuilt models.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Wfst`] for unreadable or corrupt images (the
    /// registry is untouched on failure), plus the
    /// [`AsrRuntime::register_model`] conditions.
    pub fn load_model(&self, name: &str, path: &Path) -> Result<(), RuntimeError> {
        self.register_model_image(name, GraphImage::load(path)?)
    }

    fn register_entry(
        &self,
        name: &str,
        graph: Arc<Wfst>,
        resident_bytes: usize,
    ) -> Result<(), RuntimeError> {
        self.check_model_compat(name, &graph)?;
        let mut reg = self.registry();
        if reg.find(name).is_some() {
            return Err(PipelineError::DuplicateModel(name.to_owned()));
        }
        reg.entries.push((
            name.to_owned(),
            ModelEntry {
                graph,
                resident_bytes,
                counters: Arc::new(ModelCounters::default()),
            },
        ));
        reg.sweep_retired();
        Ok(())
    }

    /// Atomically replaces the graph behind a registered model:
    /// sessions opened after the swap decode over `graph`, while every
    /// in-flight session finishes on the graph it opened with (the old
    /// graph is retired and freed when its last session drops — watch
    /// [`RuntimeStats::retired_models`]). The model's session counters
    /// carry over: they follow the name.
    ///
    /// # Errors
    ///
    /// [`PipelineError::UnknownModel`] if `name` is not registered,
    /// [`PipelineError::IncompatibleModel`] as at registration.
    pub fn swap_model(&self, name: &str, graph: Wfst) -> Result<(), RuntimeError> {
        let resident = graph.storage_bytes();
        self.swap_entry(name, Arc::new(graph), resident)
    }

    /// [`AsrRuntime::swap_model`] for a loaded store image: the
    /// replacement graph views the image buffer zero-copy.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AsrRuntime::swap_model`].
    pub fn swap_model_image(&self, name: &str, image: GraphImage) -> Result<(), RuntimeError> {
        let resident = image.resident_bytes();
        self.swap_entry(name, Arc::new(image.wfst().clone()), resident)
    }

    fn swap_entry(
        &self,
        name: &str,
        graph: Arc<Wfst>,
        resident_bytes: usize,
    ) -> Result<(), RuntimeError> {
        self.check_model_compat(name, &graph)?;
        let mut reg = self.registry();
        let entry = reg
            .entries
            .iter_mut()
            .find_map(|(n, e)| (n.as_str() == name).then_some(e))
            .ok_or_else(|| PipelineError::UnknownModel(name.to_owned()))?;
        let old = std::mem::replace(&mut entry.graph, graph);
        entry.resident_bytes = resident_bytes;
        reg.retire(old);
        Ok(())
    }

    /// Removes a model from the registry. Sessions already decoding
    /// over it are unaffected — the graph is retired and its storage
    /// (image buffer included) freed when the last such session drops;
    /// new opens naming it fail with [`PipelineError::UnknownModel`].
    ///
    /// # Errors
    ///
    /// [`PipelineError::UnknownModel`] if `name` is not registered.
    pub fn unregister_model(&self, name: &str) -> Result<(), RuntimeError> {
        let mut reg = self.registry();
        let index = reg
            .entries
            .iter()
            .position(|(n, _)| n == name)
            .ok_or_else(|| PipelineError::UnknownModel(name.to_owned()))?;
        let (_, entry) = reg.entries.remove(index);
        reg.retire(entry.graph);
        Ok(())
    }

    /// The registered model names, in registration order.
    pub fn model_names(&self) -> Vec<String> {
        self.registry()
            .entries
            .iter()
            .map(|(n, _)| n.clone())
            .collect()
    }

    fn registry(&self) -> std::sync::MutexGuard<'_, ModelRegistry> {
        self.inner
            .models
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// A point-in-time snapshot of the serving state: session counts,
    /// shed counts, pressure and tier, scratch-pool counters, and the
    /// executor's scheduling counters. Reading stats never spawns the
    /// executor — `executor` is `None` until some decode first needs
    /// the pool (and always on one-lane runtimes).
    pub fn stats(&self) -> RuntimeStats {
        let m = &self.inner.monitor;
        let executor = self.inner.executor.get();
        let (models, resident_model_bytes, retired_models) = {
            let mut reg = self.registry();
            reg.sweep_retired();
            let models: Vec<ModelStats> = reg
                .entries
                .iter()
                .map(|(name, e)| ModelStats {
                    name: name.clone(),
                    active_sessions: e.counters.active.load(Ordering::Acquire),
                    opened_sessions: e.counters.opened.load(Ordering::Acquire),
                    resident_bytes: e.resident_bytes,
                    image_backed: e.graph.is_image_backed(),
                })
                .collect();
            let resident = models.iter().map(|m| m.resident_bytes).sum();
            (models, resident, reg.retired.len())
        };
        RuntimeStats {
            models,
            resident_model_bytes,
            retired_models,
            active_sessions: m.active_sessions.load(Ordering::Acquire),
            peak_sessions: m.peak_sessions.load(Ordering::Acquire),
            shed_sessions: m.shed_sessions.load(Ordering::Acquire),
            frames_observed: m.frames_observed.load(Ordering::Acquire),
            ewma_rtf: f64::from_bits(m.ewma_rtf_bits.load(Ordering::Acquire)),
            pressure: f64::from_bits(m.pressure_bits.load(Ordering::Acquire)),
            tier: m.tier.load(Ordering::Acquire),
            peak_tier: m.peak_tier.load(Ordering::Acquire),
            scratch: self.inner.scratch_pool.stats(),
            executor: executor.map(|p| p.stats()),
            executor_queue_depth: executor.map_or(0, |p| p.queue_depth()),
            batch: self.inner.batch.as_ref().map(BatchService::stats),
        }
    }

    /// The shared work-stealing executor, or `None` on a one-lane
    /// runtime (which never spawns worker threads). Spun up lazily on
    /// first call; every session and leased decoder shares it.
    pub fn executor(&self) -> Option<&Arc<WorkerPool>> {
        if self.inner.lanes <= 1 {
            return None;
        }
        Some(self.inner.executor.get_or_init(|| {
            let pool = Arc::new(WorkerPool::new(self.inner.lanes));
            if self.inner.batch.is_some() {
                // Weak, so the hook (owned by the pool, owned by the
                // runtime) never keeps the runtime alive.
                let inner = Arc::downgrade(&self.inner);
                pool.set_idle_hook(Box::new(move || {
                    inner.upgrade().is_some_and(|rt| rt.try_idle_flush())
                }));
            }
            pool
        }))
    }

    /// Leases a parallel batch decoder on the runtime's shared executor
    /// (the accelerator-deployment shape for bulk pre-scored decodes):
    /// its per-frame shard phases interleave with every other lease and
    /// session in the same injector, so concurrent batch decodes share
    /// all lanes. On a one-lane runtime the decoder runs fully inline.
    pub fn lease_decoder(&self) -> ParallelDecoder {
        match self.executor() {
            Some(pool) => ParallelDecoder::on_pool(
                self.inner.options.clone(),
                self.inner.lanes,
                Arc::clone(pool),
            ),
            None => ParallelDecoder::new(self.inner.options.clone(), 1),
        }
    }

    /// Renders a synthetic utterance speaking `words`.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::UnknownWord`] for out-of-vocabulary
    /// words.
    pub fn render_words(&self, words: &[&str]) -> Result<Utterance, PipelineError> {
        let mut phones: Vec<PhoneId> = Vec::new();
        for word in words {
            let id = self
                .inner
                .lexicon
                .word_id(word)
                .ok_or_else(|| PipelineError::UnknownWord((*word).to_owned()))?;
            let pron = self
                .inner
                .lexicon
                .pronunciations()
                .iter()
                .find(|(w, _)| *w == id)
                .expect("lexicon invariant: every word has a pronunciation");
            phones.extend_from_slice(&pron.1);
        }
        Ok(Utterance::render(
            &phones,
            self.inner.frames_per_phone,
            &self.inner.signal,
        ))
    }

    /// Scores a waveform into the per-frame acoustic cost table the
    /// search consumes — the scoring stage of the paper's pipeline,
    /// exposed so callers can split scoring from search.
    pub fn score(&self, utterance: &Utterance) -> AcousticTable {
        self.inner.model.score_waveform(&utterance.samples)
    }

    /// Recognizes a waveform: a one-shot [`Session`] fed the raw
    /// samples. Byte-identical to batch-scoring the waveform and
    /// decoding the table (both halves of that contract are pinned by
    /// tests), allocation-free per frame once the pools are warm.
    pub fn recognize(&self, utterance: &Utterance) -> Transcript {
        let mut session = self.open_session();
        session.push_samples(&utterance.samples);
        session.finalize()
    }

    /// Recognizes a pre-scored utterance (the accelerator-style
    /// deployment, where the acoustic model runs elsewhere). On small
    /// graphs (or with [`ScoresRoute::Session`]) this is a one-shot
    /// [`Session`] fed the score rows, riding a warmed scratch from the
    /// shared pool; above the [`ScoresRoute::Auto`] graph-size threshold
    /// it leases the parallel batch decoder instead, sharding every
    /// frame across the executor's lanes. Both paths are byte-identical
    /// (the parallel decoder reduces its shard phases in one fold
    /// order), so the route is purely a throughput decision.
    pub fn recognize_scores(&self, scores: &AcousticTable) -> Transcript {
        if self.route_scores_parallel() {
            return self.recognize_scores_leased(scores);
        }
        let mut session = self.open_session();
        session.push_frames(scores);
        session.finalize()
    }

    /// Whether [`AsrRuntime::recognize_scores`] should lease the
    /// parallel decoder for this runtime's graph.
    fn route_scores_parallel(&self) -> bool {
        match self.inner.scores_route {
            ScoresRoute::Session => false,
            ScoresRoute::Parallel => true,
            ScoresRoute::Auto => {
                // QoS tiers and admission only exist on the session
                // path, so a policy pins the auto-route there.
                self.inner.qos.is_none()
                    && self.inner.lanes > 1
                    && self.inner.graph.num_states() > self.inner.scores_threshold
            }
        }
    }

    /// The leased-decoder half of [`AsrRuntime::recognize_scores`]:
    /// decodes on the runtime's cached [`ParallelDecoder`], counting the
    /// decode as a session so pressure accounting stays truthful.
    fn recognize_scores_leased(&self, scores: &AcousticTable) -> Transcript {
        self.inner.session_opened();
        let decoder = self
            .inner
            .parallel
            .get_or_init(|| self.lease_decoder())
            .decode(&self.inner.graph, scores);
        let transcript = Transcript {
            words: self.inner.lexicon.transcript(&decoder.words),
            cost: decoder.cost,
            reached_final: decoder.reached_final,
        };
        self.inner.session_closed();
        transcript
    }

    /// Opens an owned streaming session with default [`SessionOptions`].
    ///
    /// The session is `Send + 'static`: it holds the engine through the
    /// runtime's `Arc`, not a borrow, so it can be driven from any
    /// thread and handed between threads mid-utterance. Push score rows
    /// or raw audio, read [`Session::partial`] hypotheses, then
    /// [`Session::finalize`].
    ///
    /// # Example
    ///
    /// ```
    /// use asr_repro::runtime::AsrRuntime;
    ///
    /// let runtime = AsrRuntime::demo()?;
    /// let audio = runtime.render_words(&["play", "music"])?;
    ///
    /// let mut session = runtime.open_session();
    /// session.push_samples(&audio.samples);
    /// // Owned and Send: finish the utterance on another thread.
    /// let transcript = std::thread::spawn(move || session.finalize())
    ///     .join()
    ///     .expect("session thread");
    /// assert_eq!(transcript.words, vec!["play", "music"]);
    /// # Ok::<(), asr_repro::PipelineError>(())
    /// ```
    pub fn open_session(&self) -> Session {
        self.open_session_with(SessionOptions::default())
    }

    /// Opens an owned streaming session with explicit options.
    ///
    /// Admission is unconditional: this path never sheds, even past the
    /// policy's session limit (use [`AsrRuntime::try_open_session_with`]
    /// for load-shedding admission).
    pub fn open_session_with(&self, options: SessionOptions) -> Session {
        let resolved = self
            .resolve_model(&options)
            .unwrap_or_else(|e| panic!("open_session_with: {e}"));
        self.inner.session_opened();
        self.build_session(options, resolved)
    }

    /// Opens a session with default options under admission control:
    /// sheds with [`PipelineError::Overloaded`] once the runtime's
    /// [`QosPolicy`] session limit is reached. Without a policy (or
    /// with a limit of `0`) admission is unlimited and this never
    /// fails.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Overloaded`] at the admission limit.
    /// Shedding is a typed error, never a panic, and leaves every
    /// in-flight session untouched.
    ///
    /// # Example
    ///
    /// ```
    /// use asr_repro::runtime::{AsrRuntime, PipelineError, QosPolicy, RuntimeConfig};
    ///
    /// let runtime = AsrRuntime::demo_with(
    ///     RuntimeConfig::new().qos(QosPolicy::new().max_sessions(1)),
    /// )?;
    /// let admitted = runtime.try_open_session()?;
    /// match runtime.try_open_session() {
    ///     Err(PipelineError::Overloaded { active, limit }) => {
    ///         assert_eq!((active, limit), (1, 1));
    ///     }
    ///     _ => unreachable!("second session must shed"),
    /// }
    /// drop(admitted); // in-flight work finishing reopens admission
    /// assert!(runtime.try_open_session().is_ok());
    /// # Ok::<(), asr_repro::PipelineError>(())
    /// ```
    pub fn try_open_session(&self) -> Result<Session, RuntimeError> {
        self.try_open_session_with(SessionOptions::default())
    }

    /// Opens a session with explicit options under admission control
    /// (see [`AsrRuntime::try_open_session`]).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Overloaded`] at the admission limit.
    pub fn try_open_session_with(&self, options: SessionOptions) -> Result<Session, RuntimeError> {
        // Resolve the model first: an unknown name is the caller's
        // error, reported without charging admission or shed counters.
        let resolved = self.resolve_model(&options)?;
        self.inner.try_admit()?;
        Ok(self.build_session(options, resolved))
    }

    /// Resolves the graph a session will decode over, and the per-model
    /// counters it charges (`None` for the default graph). Runs before
    /// admission, and holds the registry lock only for the lookup — the
    /// session keeps the resolved `Arc` through swaps and unregisters.
    fn resolve_model(
        &self,
        options: &SessionOptions,
    ) -> Result<(Arc<Wfst>, Option<Arc<ModelCounters>>), PipelineError> {
        match &options.model {
            None => Ok((Arc::clone(&self.inner.graph), None)),
            Some(name) => {
                let reg = self.registry();
                let entry = reg
                    .find(name)
                    .ok_or_else(|| PipelineError::UnknownModel(name.clone()))?;
                Ok((Arc::clone(&entry.graph), Some(Arc::clone(&entry.counters))))
            }
        }
    }

    /// Constructs the session once admission has been decided.
    fn build_session(
        &self,
        options: SessionOptions,
        (graph, model_counters): (Arc<Wfst>, Option<Arc<ModelCounters>>),
    ) -> Session {
        let qos_enabled = match &self.inner.qos {
            Some(policy) => {
                let enabled = options.qos.unwrap_or(true);
                if let Some(tier) = options.pinned_tier {
                    assert!(
                        enabled,
                        "SessionOptions::pin_tier contradicts adaptive_qos(false)"
                    );
                    assert!(
                        tier < policy.num_tiers(),
                        "pinned tier {tier} out of range: the policy has {} tiers",
                        policy.num_tiers()
                    );
                }
                enabled
            }
            None => {
                assert!(
                    options.pinned_tier.is_none(),
                    "SessionOptions::pin_tier on a runtime without a QosPolicy"
                );
                false
            }
        };
        if let Some(counters) = &model_counters {
            counters.opened.fetch_add(1, Ordering::AcqRel);
            counters.active.fetch_add(1, Ordering::AcqRel);
        }
        let scratch = self.inner.scratch_pool.checkout();
        let overlap = options.overlap.unwrap_or(true);
        let executor = if overlap {
            self.executor().cloned()
        } else {
            None
        };
        Session {
            runtime: Arc::clone(&self.inner),
            decode: Some(StreamingDecode::new(
                graph,
                self.inner.options.clone(),
                scratch,
            )),
            frontend: None,
            executor,
            alb: AlbHandoff::new(),
            overlap_depth: options.overlap_depth.unwrap_or(1),
            alb_queue: AlbQueue::new(),
            batch_rows: Vec::new(),
            frames_pushed: 0,
            qos_enabled,
            pinned_tier: options.pinned_tier,
            batch_enabled: options.batched.unwrap_or(true) && self.inner.batch.is_some(),
            batch_slot: None,
            model_counters,
        }
    }

    /// Recognizes a waveform on the simulated accelerator, returning the
    /// transcript together with the full hardware result (cycles,
    /// traffic, cache statistics).
    ///
    /// # Errors
    ///
    /// Propagates WFST re-layout failures for state-optimized designs.
    pub fn recognize_on_accelerator(
        &self,
        utterance: &Utterance,
        cfg: AcceleratorConfig,
    ) -> Result<(Transcript, SimResult), PipelineError> {
        let prepared = self.prepare_accelerator(&cfg)?;
        self.recognize_on_prepared(utterance, cfg, &prepared)
    }

    /// Prepares the runtime's decoding graph for an accelerator design
    /// point: the original layout for the base design, the
    /// degree-sorted layout (plus direct-index registers) for
    /// state-optimized designs. Preparing once and decoding many
    /// utterances with [`AsrRuntime::recognize_on_prepared`] amortizes
    /// the re-layout.
    ///
    /// # Errors
    ///
    /// Propagates WFST re-layout validation failures as
    /// [`PipelineError::Wfst`].
    pub fn prepare_accelerator(
        &self,
        cfg: &AcceleratorConfig,
    ) -> Result<PreparedWfst, PipelineError> {
        Ok(PreparedWfst::new(&self.inner.graph, cfg)?)
    }

    /// Recognizes a waveform on the simulated accelerator over an
    /// already-prepared graph layout.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Wfst`] when the simulator refuses the
    /// prepared layout — e.g. [`WfstError::LayoutMismatch`] when the
    /// direct-index registers disagree with the sorted graph. The
    /// failure is a typed error, never a panic, and leaves the runtime
    /// fully serviceable: live sessions, pools, and future accelerator
    /// decodes are untouched.
    pub fn recognize_on_prepared(
        &self,
        utterance: &Utterance,
        cfg: AcceleratorConfig,
        prepared: &PreparedWfst,
    ) -> Result<(Transcript, SimResult), PipelineError> {
        let scores = self.inner.model.score_waveform(&utterance.samples);
        let mut cfg = cfg;
        cfg.beam = self.inner.options.beam;
        let result = Simulator::new(cfg).decode(prepared, &scores)?;
        let transcript = Transcript {
            words: self.inner.lexicon.transcript(&result.words),
            cost: result.cost,
            reached_final: result.reached_final,
        };
        Ok((transcript, result))
    }

    /// Word error rate of a hypothesis against a reference word
    /// sequence.
    pub fn wer(&self, reference: &[&str], transcript: &Transcript) -> f64 {
        let to_ids = |words: &[String]| -> Vec<WordId> {
            words
                .iter()
                .map(|w| self.inner.lexicon.word_id(w).unwrap_or(WordId(u32::MAX)))
                .collect()
        };
        let ref_owned: Vec<String> = reference.iter().map(|s| (*s).to_owned()).collect();
        wer::wer(&to_ids(&ref_owned), &to_ids(&transcript.words))
    }
}

/// An owned, in-flight streaming recognition: `Send + 'static`.
///
/// Created by [`AsrRuntime::open_session`]. The session holds the engine
/// through the runtime's `Arc` — no borrowed lifetime — so it can be
/// moved freely between threads, including mid-utterance. Push acoustic
/// score rows with [`Session::push_row`]/[`Session::push_frames`] or raw
/// 16 kHz audio with [`Session::push_samples`], read the evolving best
/// hypothesis with [`Session::partial`], and end with
/// [`Session::finalize`]. Dropping a session without finalizing returns
/// its warmed scratch and front-end to the runtime's pools.
///
/// Sessions are independent: any number may be open concurrently, from
/// any threads, against one runtime. When the runtime's executor has
/// more than one lane, a raw-audio session overlaps the scoring of each
/// new frame with the search of the previous one (the paper's Section VI
/// pipelining) — byte-identical to the inline path.
#[derive(Debug)]
pub struct Session {
    runtime: Arc<RuntimeInner>,
    decode: Option<StreamingDecode<Arc<Wfst>>>,
    /// The pooled streaming front-end, checked out lazily by the first
    /// [`Session::push_samples`]. `None` for row-fed sessions.
    frontend: Option<SessionFrontend>,
    /// The shared executor, when this session overlaps scoring with the
    /// search; `None` scores inline.
    executor: Option<Arc<WorkerPool>>,
    /// The double-buffered score handoff: incoming rows stage behind
    /// the search, which consumes the held-back front row (last-frame
    /// semantics live in [`AlbHandoff`]).
    alb: AlbHandoff,
    /// How many future rows one overlap fork-join may score (1 = the
    /// classic single-row overlap through `alb`).
    overlap_depth: usize,
    /// The multi-row ready FIFO; empty (and untouched) at depth 1.
    alb_queue: AlbQueue,
    /// Landing buffers the scoring tasks of one multi-row batch write
    /// into, recycled through `alb_queue`'s free list.
    batch_rows: Vec<Vec<f32>>,
    frames_pushed: usize,
    /// Whether this session follows the runtime's QoS policy (always
    /// `false` without a policy).
    qos_enabled: bool,
    /// A fixed tier overriding the pressure signal, when pinned.
    pinned_tier: Option<usize>,
    /// Whether this session joins the batched scoring service (always
    /// `false` without one).
    batch_enabled: bool,
    /// The session's registration with the service, made lazily by the
    /// first [`Session::push_samples`].
    batch_slot: Option<BatchSlot>,
    /// Counters of the registered model this session decodes over;
    /// `None` on the runtime's default graph.
    model_counters: Option<Arc<ModelCounters>>,
}

impl Session {
    /// Pushes raw 16 kHz audio samples, in any chunking — the
    /// microphone-style entry point. The pooled online front-end turns
    /// them into MFCC frames and acoustic cost rows (bit-identical to
    /// batch scoring) and stages each row behind the search; pushes are
    /// allocation-free per frame once the session is warm.
    ///
    /// With a multi-lane runtime, each completed frame's scoring runs as
    /// a stolen task on the shared executor *while* the search relaxes
    /// the previously staged row — the paper's Section VI overlap — with
    /// byte-identical results to inline scoring.
    ///
    /// The Δ/ΔΔ recurrence looks two frames ahead, so the search lags
    /// the newest audio by up to three frames (two in the front-end, one
    /// in the session's held-back row) until [`Session::finalize`]
    /// flushes the tail. Feed a session *either* samples *or* pre-scored
    /// rows: rows pushed while the front-end still holds lookahead
    /// frames would be searched ahead of them, reordering the utterance.
    pub fn push_samples(&mut self, samples: &[f32]) {
        if self.batch_enabled && self.batch_slot.is_none() {
            self.batch_slot = self.runtime.batch_register();
        }
        let mut frontend = self
            .frontend
            .take()
            .unwrap_or_else(|| self.runtime.checkout_frontend());
        frontend.mfcc.push_samples(samples);
        self.drain_frontend(&mut frontend);
        self.frontend = Some(frontend);
    }

    /// Scores every completed front-end frame and stages its cost row —
    /// through the batched service when the session is registered,
    /// otherwise overlapping scoring with the search when an executor
    /// is attached.
    fn drain_frontend(&mut self, frontend: &mut SessionFrontend) {
        if self.overlap_depth > 1 && self.batch_slot.is_none() && self.executor.is_some() {
            self.drain_frontend_multi(frontend);
            return;
        }
        while frontend.mfcc.pop_frame_into(&mut frontend.feat) {
            if self.batch_slot.is_some() {
                self.score_batched(frontend);
            } else {
                self.score_and_stage(frontend);
            }
        }
    }

    /// The multi-row drain: gather up to [`SessionOptions::overlap_depth`]
    /// completed feature frames, then run ONE fork-join in which chunk 0
    /// relaxes every already-scored ready row through the search while
    /// chunks `1..=n` score the gathered features into fresh rows — the
    /// paper's ALB as a multi-frame batch buffer, feeding the lock-free
    /// executor `n` independent tasks per frame batch instead of one.
    ///
    /// Stepping *all* ready rows is safe: a batch only launches when at
    /// least one new feature frame was gathered, so every currently
    /// ready row is strictly older than a row still to come — none can
    /// be the utterance's final row, which [`Session::finalize`] must
    /// hand to `finish` instead.
    ///
    /// Determinism: the search relaxes rows in FIFO frame order, and each
    /// row's scores come from the same per-row arithmetic as the inline
    /// path — the fork-join changes *when* rows are scored, never their
    /// order or values, for any lane count or steal schedule. QoS
    /// retunes land once per batch, still at a frame boundary.
    fn drain_frontend_multi(&mut self, frontend: &mut SessionFrontend) {
        // A row held back by the single-row handoff (e.g. a push_row
        // before the first push_samples) migrates into the queue so the
        // search still consumes every row in push order.
        let mut migrated = self.alb_queue.checkout(0);
        if self.alb.take_front_into(&mut migrated) {
            self.alb_queue.push_ready(migrated);
        } else {
            self.alb_queue.recycle(migrated);
        }
        let dim = frontend.mfcc.dim();
        let row_len = self.runtime.model.row_len();
        loop {
            // Gather up to `depth` completed frames into warm buffers.
            let mut gathered = 0;
            while gathered < self.overlap_depth {
                if frontend.batch_feats.len() == gathered {
                    frontend.batch_feats.push(vec![0.0; dim]);
                }
                frontend.batch_feats[gathered].resize(dim, 0.0);
                if !frontend
                    .mfcc
                    .pop_frame_into(&mut frontend.batch_feats[gathered])
                {
                    break;
                }
                gathered += 1;
            }
            if gathered == 0 {
                return;
            }
            while frontend.batch_scratch.len() < gathered {
                frontend.batch_scratch.push((Vec::new(), Vec::new()));
            }
            while self.batch_rows.len() < gathered {
                let row = self.alb_queue.checkout(row_len);
                self.batch_rows.push(row);
            }
            for row in &mut self.batch_rows[..gathered] {
                row.resize(row_len, 0.0);
            }

            self.apply_qos();
            let timer = self.frame_timer();
            let stepped = self.alb_queue.ready_len();
            {
                let model = &self.runtime.model;
                let pool = self
                    .executor
                    .as_ref()
                    .expect("multi-row drain has an executor");
                let decode_slot = Mutex::new(self.decode.as_mut().expect("session not finalized"));
                let queue = &self.alb_queue;
                let shards = RowShards {
                    feats: frontend.batch_feats.as_ptr(),
                    rows: self.batch_rows.as_mut_ptr(),
                    scratch: frontend.batch_scratch.as_mut_ptr(),
                };
                pool.fork_join(1 + gathered, &|chunk| {
                    if chunk == 0 {
                        let mut decode = decode_slot.lock().unwrap_or_else(PoisonError::into_inner);
                        for row in queue.ready_rows() {
                            decode.step(row);
                        }
                    } else {
                        // Capture the shard struct whole, not its raw
                        // pointer fields, so the closure stays `Sync`.
                        let shards = &shards;
                        let i = chunk - 1;
                        // SAFETY: chunk `i + 1` is the only task touching
                        // index `i`, and `gathered` never exceeds the
                        // buffers' lengths (sized above).
                        let feat = unsafe { &*shards.feats.add(i) };
                        let row = unsafe { &mut *shards.rows.add(i) };
                        let (x, y) = unsafe { &mut *shards.scratch.add(i) };
                        model.score_frame_into(feat, row, x, y);
                    }
                });
            }
            self.alb_queue.retire(stepped);
            for i in 0..gathered {
                let replacement = self.alb_queue.checkout(0);
                let scored = std::mem::replace(&mut self.batch_rows[i], replacement);
                self.alb_queue.push_ready(scored);
            }
            self.frames_pushed += gathered;
            self.observe_frame_batch(timer, gathered);
        }
    }

    /// One frame of the batched front-end: submit the completed feature
    /// vector to the gather window (which may flush it, scoring every
    /// pending row of every session in one block forward pass), then
    /// step the search over whatever rows of *this* session have come
    /// back. A lone session short-circuits to synchronous scoring —
    /// bit-identical, since every path computes a row with the same
    /// per-row arithmetic.
    fn score_batched(&mut self, frontend: &mut SessionFrontend) {
        let slot = self.batch_slot.expect("registered before scoring");
        let timer = self.frame_timer();
        match self.runtime.batch_submit(slot, &frontend.feat) {
            SubmitOutcome::Queued => self.drain_batched_rows(),
            SubmitOutcome::ScoreInline => {
                self.apply_qos();
                self.runtime.model.score_frame_into(
                    &frontend.feat,
                    &mut frontend.row,
                    &mut frontend.x,
                    &mut frontend.y,
                );
                self.step_front();
                self.alb.stage(&frontend.row);
                self.commit_row();
            }
        }
        self.observe_frame(timer);
    }

    /// Steps the search over every scored row the service has ready for
    /// this session, in submission order.
    fn drain_batched_rows(&mut self) {
        let slot = self.batch_slot.expect("registered before draining");
        while self.runtime.batch_pop_into(slot, self.alb.staging_mut()) {
            self.apply_qos();
            self.step_front();
            self.commit_row();
        }
    }

    /// Forces the session's scoring pipeline to a sync point: any of its
    /// frames still sitting in the gather window are flushed (batching
    /// the other sessions' pending rows along with them) and their rows
    /// consumed by the search. Afterwards the session has searched
    /// exactly the frames its front-end has completed — the same state
    /// an unbatched session is in after every push — so partials
    /// compared here are byte-identical across batching modes. A no-op
    /// for unbatched sessions.
    pub fn flush_scoring(&mut self) {
        if let Some(slot) = self.batch_slot {
            self.runtime.batch_flush_for(slot);
            self.drain_batched_rows();
        }
    }

    /// One frame of the pipelined front-end: score `frontend.feat` into
    /// `frontend.row` while the search consumes the held-back front row,
    /// then swap the fresh row in — the ALB handoff with the paper's
    /// Section VI overlap on top.
    ///
    /// Determinism: the two overlapped halves share no mutable state
    /// (the scorer writes `frontend.row`, the search reads `self.front`
    /// and mutates only the decode), and the row order into the search
    /// is unchanged, so the transcript is byte-identical to the inline
    /// path for any executor width and steal schedule.
    fn score_and_stage(&mut self, frontend: &mut SessionFrontend) {
        self.apply_qos();
        let timer = self.frame_timer();
        let model = &self.runtime.model;
        let overlap = self.alb.has_front() && self.decode.is_some();
        match (&self.executor, overlap) {
            (Some(pool), true) => {
                let decode_slot = Mutex::new(self.decode.as_mut().expect("overlap checked"));
                let row_slot = Mutex::new((&mut frontend.row, &mut frontend.x, &mut frontend.y));
                let front: &[f32] = self.alb.front().expect("overlap checked");
                let feat: &[f32] = &frontend.feat;
                pool.fork_join(2, &|chunk| {
                    if chunk == 0 {
                        let mut decode = decode_slot.lock().unwrap_or_else(PoisonError::into_inner);
                        decode.step(front);
                    } else {
                        let mut slot = row_slot.lock().unwrap_or_else(PoisonError::into_inner);
                        let (row, x, y) = &mut *slot;
                        model.score_frame_into(feat, row, x, y);
                    }
                });
            }
            _ => {
                model.score_frame_into(
                    &frontend.feat,
                    &mut frontend.row,
                    &mut frontend.x,
                    &mut frontend.y,
                );
                self.step_front();
            }
        }
        self.alb.stage(&frontend.row);
        self.commit_row();
        self.observe_frame(timer);
    }

    /// Advances the search over the held-back front row, if there is
    /// one — the search half of the ALB handoff, shared by the row-fed
    /// and audio-fed paths.
    fn step_front(&mut self) {
        if let Some(front) = self.alb.front() {
            if let Some(decode) = self.decode.as_mut() {
                decode.step(front);
            }
        }
    }

    /// Completes the ALB handoff — the staged row becomes the next
    /// held-back front row — and counts the frame.
    fn commit_row(&mut self) {
        self.alb.commit();
        self.frames_pushed += 1;
    }

    /// Pushes one frame's acoustic score row (`row[p]` = cost of phone
    /// `p`; use [`AcousticTable::frame_row`] or a scorer's output).
    ///
    /// The row is staged in the back half of the session's score buffer
    /// while the search consumes the previously staged row — the
    /// double-buffered handoff of the paper's Acoustic Likelihood
    /// Buffer. After the first few rows the push itself is
    /// allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if the session has been fed raw audio via
    /// [`Session::push_samples`]: the front-end's lookahead frames would
    /// be searched after this row, reordering the utterance.
    pub fn push_row(&mut self, row: &[f32]) {
        assert!(
            self.frontend.is_none(),
            "push_row after push_samples: the online front-end still holds \
             lookahead frames, so this row would be searched out of order"
        );
        self.alb.stage(row);
        self.apply_qos();
        // Only time rows that actually drive a search step: the first
        // row is merely staged, and a zero-cost sample would drag the
        // RTF EWMA toward zero for free.
        let timer = if self.alb.has_front() {
            self.frame_timer()
        } else {
            None
        };
        self.step_front();
        self.commit_row();
        self.observe_frame(timer);
    }

    /// Pushes every frame of a scored batch, in order — the per-batch
    /// handoff a pipelined scorer would perform.
    pub fn push_frames(&mut self, scores: &AcousticTable) {
        for frame in 0..scores.num_frames() {
            self.push_row(scores.frame_row(frame));
        }
    }

    /// Frames pushed into the session so far.
    pub fn frames_pushed(&self) -> usize {
        self.frames_pushed
    }

    /// The degradation tier the *next* frame will decode at: the pinned
    /// tier if set, otherwise the runtime's current pressure tier.
    /// Always `0` when QoS is off for this session.
    pub fn tier(&self) -> usize {
        if !self.qos_enabled {
            return 0;
        }
        self.pinned_tier
            .unwrap_or_else(|| self.runtime.monitor.tier.load(Ordering::Acquire))
    }

    /// Pins the session to policy tier `tier` from the next frame on —
    /// the mid-utterance form of [`SessionOptions::pin_tier`], for
    /// scripted tier traces. Tier changes only ever land at frame
    /// boundaries, so the decode stays deterministic given the trace.
    /// Implies QoS is enabled for the session from here on.
    ///
    /// # Panics
    ///
    /// Panics if the runtime has no [`QosPolicy`] or `tier` is out of
    /// range.
    pub fn pin_tier(&mut self, tier: usize) {
        let policy = self
            .runtime
            .qos
            .as_ref()
            .expect("Session::pin_tier on a runtime without a QosPolicy");
        assert!(
            tier < policy.num_tiers(),
            "pinned tier {tier} out of range: the policy has {} tiers",
            policy.num_tiers()
        );
        self.qos_enabled = true;
        self.pinned_tier = Some(tier);
    }

    /// Retunes the search to the session's current tier — called at
    /// every frame boundary (and before the final frame), so parameter
    /// changes never land mid-frame.
    fn apply_qos(&mut self) {
        if !self.qos_enabled {
            return;
        }
        let Some(policy) = &self.runtime.qos else {
            return;
        };
        let tier = self
            .pinned_tier
            .unwrap_or_else(|| self.runtime.monitor.tier.load(Ordering::Acquire));
        let (beam, max_active) = policy.params(tier, &self.runtime.options);
        if let Some(decode) = self.decode.as_mut() {
            decode.set_search_params(beam, max_active);
        }
    }

    /// Starts the per-frame decode timer, only when the runtime's
    /// pressure monitor will consume the sample.
    fn frame_timer(&self) -> Option<Instant> {
        (self.qos_enabled && self.runtime.qos.is_some()).then(Instant::now)
    }

    /// Feeds a finished frame's wall time to the pressure monitor.
    fn observe_frame(&self, timer: Option<Instant>) {
        if let Some(started) = timer {
            self.runtime.observe_frame(started.elapsed());
        }
    }

    /// Feeds one multi-row batch's wall time to the pressure monitor as
    /// `rows` equal per-frame samples, keeping the RTF EWMA comparable
    /// to the single-row path.
    fn observe_frame_batch(&self, timer: Option<Instant>, rows: usize) {
        if let Some(started) = timer {
            let per_frame = started.elapsed() / rows as u32;
            for _ in 0..rows {
                self.runtime.observe_frame(per_frame);
            }
        }
    }

    /// The current best hypothesis (empty words before any audio: the
    /// start state's closure), or `None` after the beam pruned every
    /// path or the session was finalized. The search runs one row behind
    /// the pushes, so `frames_decoded` lags [`Session::frames_pushed`]
    /// by one.
    pub fn partial(&self) -> Option<Hypothesis> {
        let decode = self.decode.as_ref()?;
        decode.partial().map(|p| Hypothesis {
            words: self.runtime.lexicon.transcript(&p.words),
            cost: p.cost,
            frames_decoded: p.frames,
        })
    }

    /// Ends the utterance: the front-end's delta lookahead (for
    /// raw-audio sessions) is flushed with the batch edge clamping, the
    /// held-back final row gets the batch decoder's end-of-utterance
    /// treatment, final states are selected, and the warmed scratch and
    /// front-end return to the runtime's pools.
    ///
    /// The transcript is byte-identical to
    /// [`AsrRuntime::recognize_scores`] over the same rows — and, for
    /// sessions fed raw samples, to batch-scoring the same waveform and
    /// decoding the table.
    pub fn finalize(mut self) -> Transcript {
        if let Some(mut frontend) = self.frontend.take() {
            frontend.mfcc.finish();
            self.drain_frontend(&mut frontend);
            self.runtime.restore_frontend(frontend);
        }
        self.flush_scoring();
        // Multi-row sessions: the ready FIFO still holds rows the search
        // has not consumed. Step all but the newest; the newest becomes
        // the handoff front so the end-of-utterance treatment below
        // applies to it unchanged.
        while self.alb_queue.ready_len() > 1 {
            let row = self.alb_queue.pop_ready().expect("length checked");
            self.apply_qos();
            if let Some(decode) = self.decode.as_mut() {
                decode.step(&row);
            }
            self.alb_queue.recycle(row);
        }
        if let Some(last) = self.alb_queue.pop_ready() {
            debug_assert!(
                !self.alb.has_front(),
                "multi-row sessions route every row through the queue"
            );
            self.alb.stage(&last);
            self.alb.commit();
            self.alb_queue.recycle(last);
        }
        self.apply_qos();
        let decode = self.decode.take().expect("session not yet finalized");
        let (result, scratch) = decode.finish(self.alb.front());
        self.runtime.scratch_pool.restore(scratch);
        Transcript {
            words: self.runtime.lexicon.transcript(&result.words),
            cost: result.cost,
            reached_final: result.reached_final,
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        if let Some(slot) = self.batch_slot.take() {
            // Mid-batch drops are fine: unregistering compacts this
            // session's pending rows out of the gather window and kills
            // the slot's generation, so nothing is misrouted.
            self.runtime.batch_unregister(slot);
        }
        if let Some(frontend) = self.frontend.take() {
            self.runtime.restore_frontend(frontend);
        }
        if let Some(decode) = self.decode.take() {
            self.runtime.scratch_pool.restore(decode.into_scratch());
        }
        if let Some(counters) = self.model_counters.take() {
            counters.active.fetch_sub(1, Ordering::AcqRel);
        }
        // Finalized and abandoned sessions both come off the books here
        // (finalize consumes `self`, so this runs exactly once either
        // way); admission reopens as soon as in-flight work retires.
        self.runtime.session_closed();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send_static<T: Send + 'static>() {}

    #[test]
    fn session_and_runtime_are_send_and_static() {
        assert_send_static::<Session>();
        assert_send_static::<AsrRuntime>();
    }

    #[test]
    fn runtime_clones_share_the_pools() {
        let a = AsrRuntime::demo().unwrap();
        let b = a.clone();
        let audio = a.render_words(&["go"]).unwrap();
        let t = a.recognize(&audio);
        assert_eq!(t.words, vec!["go"]);
        assert_eq!(
            b.scratch_pool().stats().cold_checkouts,
            1,
            "clone observes the same scratch pool"
        );
        let t2 = b.recognize(&audio);
        assert_eq!(t2, t);
        assert_eq!(
            b.scratch_pool().stats().cold_checkouts,
            1,
            "second recognize rode the warmed scratch"
        );
    }

    #[test]
    fn one_lane_runtime_has_no_executor() {
        let runtime = AsrRuntime::demo_with(RuntimeConfig::new().lanes(1)).unwrap();
        assert!(runtime.executor().is_none());
        let audio = runtime.render_words(&["stop"]).unwrap();
        assert_eq!(runtime.recognize(&audio).words, vec!["stop"]);
    }

    #[test]
    fn overlapped_and_inline_scoring_are_byte_identical() {
        let runtime = AsrRuntime::demo_with(RuntimeConfig::new().lanes(2)).unwrap();
        assert!(runtime.executor().is_some());
        let audio = runtime.render_words(&["lights", "on"]).unwrap();
        let run = |overlap: bool| {
            let mut session =
                runtime.open_session_with(SessionOptions::new().overlap_scoring(overlap));
            for packet in audio.samples.chunks(160) {
                session.push_samples(packet);
            }
            session.finalize()
        };
        let overlapped = run(true);
        let inline = run(false);
        assert_eq!(overlapped.words, inline.words);
        assert_eq!(overlapped.cost.to_bits(), inline.cost.to_bits());
        assert_eq!(overlapped.reached_final, inline.reached_final);
        // ... and both match the batch path.
        let batch = runtime.recognize_scores(&runtime.score(&audio));
        assert_eq!(overlapped.words, batch.words);
        assert_eq!(overlapped.cost.to_bits(), batch.cost.to_bits());
    }

    #[test]
    fn multi_row_overlap_is_byte_identical_to_inline_for_every_depth() {
        let runtime = AsrRuntime::demo_with(RuntimeConfig::new().lanes(2)).unwrap();
        let audio = runtime.render_words(&["play", "music"]).unwrap();
        let inline = {
            let mut session =
                runtime.open_session_with(SessionOptions::new().overlap_scoring(false));
            for packet in audio.samples.chunks(160) {
                session.push_samples(packet);
            }
            session.finalize()
        };
        for depth in [2usize, 3, 5] {
            for chunk in [160usize, 517] {
                let mut session =
                    runtime.open_session_with(SessionOptions::new().overlap_depth(depth));
                for packet in audio.samples.chunks(chunk) {
                    session.push_samples(packet);
                }
                let deep = session.finalize();
                assert_eq!(deep.words, inline.words, "depth {depth} chunk {chunk}");
                assert_eq!(
                    deep.cost.to_bits(),
                    inline.cost.to_bits(),
                    "depth {depth} chunk {chunk}"
                );
                assert_eq!(deep.reached_final, inline.reached_final);
            }
        }
    }

    #[test]
    fn idle_lane_flushes_a_partial_gather_window() {
        let runtime = AsrRuntime::demo_with(
            RuntimeConfig::new()
                .lanes(2)
                .batch_scoring(BatchScoringConfig::new(16).max_wait_frames(8)),
        )
        .unwrap();
        let audio = runtime.render_words(&["go"]).unwrap();
        // Three registered sessions set the gather target to 3 rows, so
        // single frames can sit in the window without tripping a submit
        // flush. Registration happens on the first push; 100 samples
        // complete no frame, so nothing pends yet.
        let mut a = runtime.open_session();
        let mut b = runtime.open_session();
        let mut c = runtime.open_session();
        a.push_samples(&audio.samples[..100]);
        b.push_samples(&audio.samples[..100]);
        c.push_samples(&audio.samples[..100]);
        // Feed `a` in sub-frame chunks until the window holds a partial
        // batch (pending > 0 and below the 3-row target).
        let mut fed = 100;
        while runtime
            .stats()
            .batch
            .expect("service installed")
            .pending_rows
            == 0
        {
            assert!(
                fed < audio.samples.len(),
                "audio exhausted before a row pended"
            );
            let next = (fed + 170).min(audio.samples.len());
            a.push_samples(&audio.samples[fed..next]);
            fed = next;
        }
        // No submitter will touch the window now; waking the lanes runs
        // the idle hook on their way back to parking, which must drain
        // the partial window inline.
        let pool = Arc::clone(runtime.executor().expect("two lanes"));
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let batch = runtime.stats().batch.expect("service installed");
            if batch.idle_flushes > 0 && batch.pending_rows == 0 {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "idle lanes never flushed the gather window"
            );
            pool.fork_join(2, &|_| {});
            std::thread::yield_now();
        }
        // The drained rows are real scores: the sessions still finalize
        // to the exact batch-path transcripts.
        a.push_samples(&audio.samples[fed..]);
        assert_eq!(a.finalize().words, vec!["go"]);
        drop((b, c));
    }

    #[test]
    fn multi_row_session_migrates_a_pushed_row_into_the_queue() {
        // A row pushed through the single-row handoff before the first
        // audio push must still be searched first, in order, when the
        // session then widens to multi-row batches.
        let runtime = AsrRuntime::demo_with(RuntimeConfig::new().lanes(2)).unwrap();
        let audio = runtime.render_words(&["go"]).unwrap();
        let scores = runtime.score(&audio);
        let run = |options: SessionOptions| {
            let mut session = runtime.open_session_with(options);
            session.push_row(scores.frame_row(0));
            for packet in audio.samples.chunks(160) {
                session.push_samples(packet);
            }
            session.finalize()
        };
        let inline = run(SessionOptions::new().overlap_scoring(false));
        let deep = run(SessionOptions::new().overlap_depth(3));
        assert_eq!(deep.words, inline.words);
        assert_eq!(deep.cost.to_bits(), inline.cost.to_bits());
        assert_eq!(deep.reached_final, inline.reached_final);
    }

    #[test]
    fn scores_route_override_forces_each_path_and_stays_identical() {
        let demo = |route| {
            AsrRuntime::demo_with(RuntimeConfig::new().lanes(2).scores_route(route)).unwrap()
        };
        let sessioned = demo(ScoresRoute::Session);
        let audio = sessioned.render_words(&["call", "mom"]).unwrap();
        let scores = sessioned.score(&audio);
        let base = sessioned.recognize_scores(&scores);
        assert_eq!(base.words, vec!["call", "mom"]);

        let leased = demo(ScoresRoute::Parallel);
        let routed = leased.recognize_scores(&scores);
        assert_eq!(routed.words, base.words);
        assert_eq!(routed.cost.to_bits(), base.cost.to_bits());
        assert_eq!(routed.reached_final, base.reached_final);
        let stats = leased.stats();
        let executor = stats.executor.expect("the leased decode forks on the pool");
        assert!(executor.jobs_submitted > 0, "frames sharded across lanes");
        assert_eq!(stats.active_sessions, 0);
        assert_eq!(
            stats.peak_sessions, 1,
            "the leased decode counted as a session"
        );
    }

    #[test]
    fn auto_route_engages_above_the_graph_threshold() {
        // The demo graph is far below the default threshold: auto takes
        // the session path even with lanes to lease.
        let auto = AsrRuntime::demo_with(RuntimeConfig::new().lanes(2)).unwrap();
        assert!(!auto.route_scores_parallel());
        // Dropping the threshold below the graph size flips the route...
        let routed =
            AsrRuntime::demo_with(RuntimeConfig::new().lanes(2).parallel_scores_threshold(0))
                .unwrap();
        assert!(routed.route_scores_parallel());
        // ...without changing a byte.
        let audio = auto.render_words(&["lights", "on"]).unwrap();
        let scores = auto.score(&audio);
        let a = auto.recognize_scores(&scores);
        let b = routed.recognize_scores(&scores);
        assert_eq!(a.words, b.words);
        assert_eq!(a.cost.to_bits(), b.cost.to_bits());
        // A QoS policy pins the auto-route to the session path, where
        // the tiers live.
        let qos = AsrRuntime::demo_with(
            RuntimeConfig::new()
                .lanes(2)
                .parallel_scores_threshold(0)
                .qos(QosPolicy::new()),
        )
        .unwrap();
        assert!(!qos.route_scores_parallel());
        // One-lane runtimes have nothing to lease.
        let one = AsrRuntime::demo_with(RuntimeConfig::new().lanes(1).parallel_scores_threshold(0))
            .unwrap();
        assert!(!one.route_scores_parallel());
    }

    #[test]
    fn leased_decoder_matches_the_session_path() {
        let runtime = AsrRuntime::demo_with(RuntimeConfig::new().lanes(2)).unwrap();
        let audio = runtime.render_words(&["call", "mom"]).unwrap();
        let scores = runtime.score(&audio);
        let sessioned = runtime.recognize_scores(&scores);
        let decoder = runtime.lease_decoder();
        let leased = decoder.decode(runtime.graph(), &scores);
        assert_eq!(runtime.lexicon().transcript(&leased.words), sessioned.words);
        assert_eq!(leased.cost.to_bits(), sessioned.cost.to_bits());
    }

    #[test]
    fn qos_policy_tiers_floors_and_selection() {
        let policy = QosPolicy::new()
            .tier(0.5, 30.0, None)
            .tier(0.75, 20.0, Some(2048))
            .tier(0.95, 6.0, Some(64))
            .floors(10.0, 256);
        assert_eq!(policy.num_tiers(), 4);
        assert_eq!(policy.select_tier(0.0), 0);
        assert_eq!(policy.select_tier(0.5), 1);
        assert_eq!(policy.select_tier(0.94), 2);
        assert_eq!(policy.select_tier(7.0), 3);
        let base = DecodeOptions::with_beam(40.0);
        assert_eq!(policy.params(0, &base), (40.0, None));
        assert_eq!(policy.params(1, &base), (30.0, None));
        assert_eq!(policy.params(2, &base), (20.0, Some(2048)));
        // The floors bite on the last rung...
        assert_eq!(policy.params(3, &base), (10.0, Some(256)));
        // ...and out-of-range tiers saturate there.
        assert_eq!(policy.params(9, &base), (10.0, Some(256)));
    }

    #[test]
    fn try_open_session_sheds_at_the_limit_and_recovers() {
        let runtime = AsrRuntime::demo_with(
            RuntimeConfig::new()
                .lanes(1)
                .qos(QosPolicy::new().max_sessions(2)),
        )
        .unwrap();
        let first = runtime.try_open_session().unwrap();
        let second = runtime.try_open_session().unwrap();
        match runtime.try_open_session() {
            Err(PipelineError::Overloaded { active, limit }) => {
                assert_eq!((active, limit), (2, 2));
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        let stats = runtime.stats();
        assert_eq!(stats.active_sessions, 2);
        assert_eq!(stats.peak_sessions, 2);
        assert_eq!(stats.shed_sessions, 1);
        assert!(
            stats.pressure >= 1.0,
            "saturated admission shows full pressure, got {}",
            stats.pressure
        );
        // Retiring an in-flight session reopens admission.
        drop(first);
        let third = runtime.try_open_session().unwrap();
        drop(third);
        drop(second);
        let after = runtime.stats();
        assert_eq!(after.active_sessions, 0);
        assert_eq!(after.peak_sessions, 2);
        assert_eq!(after.shed_sessions, 1);
    }

    #[test]
    fn open_session_never_sheds_even_at_the_limit() {
        let runtime = AsrRuntime::demo_with(
            RuntimeConfig::new()
                .lanes(1)
                .qos(QosPolicy::new().max_sessions(1)),
        )
        .unwrap();
        let _admitted = runtime.try_open_session().unwrap();
        // The infallible path keeps working past the limit...
        let audio = runtime.render_words(&["go"]).unwrap();
        assert_eq!(runtime.recognize(&audio).words, vec!["go"]);
        // ...while the fallible path sheds.
        assert!(matches!(
            runtime.try_open_session(),
            Err(PipelineError::Overloaded { .. })
        ));
    }

    #[test]
    fn pressure_monitor_times_frames_under_a_policy() {
        let policy = QosPolicy::new().tier(1e9, 5.0, None); // unreachable rung
        let runtime = AsrRuntime::demo_with(RuntimeConfig::new().lanes(1).qos(policy)).unwrap();
        let audio = runtime.render_words(&["go"]).unwrap();
        assert_eq!(runtime.recognize(&audio).words, vec!["go"]);
        let stats = runtime.stats();
        assert!(stats.frames_observed > 0, "frames get timed under a policy");
        assert!(stats.ewma_rtf > 0.0);
        assert_eq!(stats.tier, 0, "unreachable threshold never engages");
        assert_eq!(stats.peak_tier, 0);

        // Without a policy, the frame path is never timed.
        let plain = AsrRuntime::demo_with(RuntimeConfig::new().lanes(1)).unwrap();
        assert_eq!(plain.recognize(&audio).words, vec!["go"]);
        assert_eq!(plain.stats().frames_observed, 0);
        assert_eq!(plain.stats().ewma_rtf, 0.0);
    }

    #[test]
    fn sessions_follow_pins_and_report_tiers() {
        let policy = QosPolicy::new().tier(0.5, 20.0, Some(512)).max_sessions(4);
        let runtime = AsrRuntime::demo_with(RuntimeConfig::new().lanes(1).qos(policy)).unwrap();
        let mut session = runtime.open_session_with(SessionOptions::new().pin_tier(1));
        assert_eq!(session.tier(), 1);
        session.pin_tier(0);
        assert_eq!(session.tier(), 0);
        drop(session);

        let opted_out = runtime.open_session_with(SessionOptions::new().adaptive_qos(false));
        assert_eq!(opted_out.tier(), 0, "QoS-off sessions sit at base");
        drop(opted_out);
    }

    #[test]
    fn config_builder_is_applied() {
        let runtime =
            AsrRuntime::demo_with(RuntimeConfig::new().lanes(3).beam(12.0).frames_per_phone(4))
                .unwrap();
        assert_eq!(runtime.lanes(), 3);
        assert_eq!(runtime.options().beam, 12.0);
        let audio = runtime.render_words(&["go"]).unwrap();
        let t = runtime.recognize(&audio);
        assert_eq!(t.words, vec!["go"]);
    }

    #[test]
    fn lone_batched_session_scores_synchronously() {
        let runtime = AsrRuntime::demo_with(
            RuntimeConfig::new()
                .lanes(1)
                .batch_scoring(BatchScoringConfig::new(8)),
        )
        .unwrap();
        let audio = runtime.render_words(&["play", "music"]).unwrap();
        let t = runtime.recognize(&audio);
        assert_eq!(t.words, vec!["play", "music"]);
        let stats = runtime.stats().batch.expect("service configured");
        assert_eq!(stats.batches, 0, "a lone session never waits out a window");
        assert!(stats.single_row_fallbacks > 0);
        assert_eq!(stats.open_slots, 0, "finalize released the slot");
    }

    #[test]
    fn interleaved_batched_sessions_match_unbatched_byte_for_byte() {
        let runtime = AsrRuntime::demo_with(
            RuntimeConfig::new()
                .lanes(1)
                .batch_scoring(BatchScoringConfig::new(4)),
        )
        .unwrap();
        let a = runtime.render_words(&["call", "mom"]).unwrap();
        let b = runtime.render_words(&["lights", "off"]).unwrap();
        let run = |batched: bool| {
            let opts = SessionOptions::new().batched_scoring(batched);
            let mut sa = runtime.open_session_with(opts.clone());
            let mut sb = runtime.open_session_with(opts);
            let mut ia = a.samples.chunks(160);
            let mut ib = b.samples.chunks(160);
            loop {
                let pa = ia.next();
                let pb = ib.next();
                if pa.is_none() && pb.is_none() {
                    break;
                }
                if let Some(p) = pa {
                    sa.push_samples(p);
                }
                if let Some(p) = pb {
                    sb.push_samples(p);
                }
            }
            (sa.finalize(), sb.finalize())
        };
        let (ba, bb) = run(true);
        let (ua, ub) = run(false);
        assert_eq!(ba.words, ua.words);
        assert_eq!(ba.cost.to_bits(), ua.cost.to_bits());
        assert_eq!(bb.words, ub.words);
        assert_eq!(bb.cost.to_bits(), ub.cost.to_bits());
        assert_eq!(ba.words, vec!["call", "mom"]);
        assert_eq!(bb.words, vec!["lights", "off"]);
        let stats = runtime.stats().batch.expect("service configured");
        assert!(stats.batches > 0, "two interleaved sessions must batch");
        assert!(stats.widest_batch >= 2);
        assert_eq!(stats.open_slots, 0);
    }

    #[test]
    fn mlp_acoustic_runtime_batches_identically() {
        let config = || {
            RuntimeConfig::new()
                .lanes(1)
                .beam(1.0e9)
                .mlp_acoustic(&[32], 7)
        };
        let batched_rt =
            AsrRuntime::demo_with(config().batch_scoring(BatchScoringConfig::new(8))).unwrap();
        let plain_rt = AsrRuntime::demo_with(config()).unwrap();
        let a = batched_rt.render_words(&["go"]).unwrap();
        let b = batched_rt.render_words(&["stop"]).unwrap();
        let drive = |rt: &AsrRuntime| {
            let mut sa = rt.open_session();
            let mut sb = rt.open_session();
            for (pa, pb) in a.samples.chunks(160).zip(b.samples.chunks(160)) {
                sa.push_samples(pa);
                sb.push_samples(pb);
            }
            let ta = sa.finalize();
            let tb = sb.finalize();
            (ta, tb)
        };
        let (ba, bb) = drive(&batched_rt);
        let (ua, ub) = drive(&plain_rt);
        assert_eq!(ba.cost.to_bits(), ua.cost.to_bits());
        assert_eq!(bb.cost.to_bits(), ub.cost.to_bits());
        assert_eq!(ba.words, ua.words);
        assert_eq!(bb.words, ub.words);
        assert!(batched_rt.stats().batch.unwrap().batches > 0);
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn zero_row_batch_window_is_rejected() {
        let _ = BatchScoringConfig::new(0);
    }

    #[test]
    fn dropping_a_batched_session_mid_window_leaves_the_service_healthy() {
        let runtime = AsrRuntime::demo_with(
            RuntimeConfig::new()
                .lanes(1)
                .batch_scoring(BatchScoringConfig::new(16).max_wait_frames(4)),
        )
        .unwrap();
        let keep_audio = runtime.render_words(&["call", "mom"]).unwrap();
        let drop_audio = runtime.render_words(&["stop"]).unwrap();
        let mut keep = runtime.open_session();
        let mut doomed = runtime.open_session();
        // Interleave a few packets so both sessions have rows pending in
        // the shared window, then drop one mid-batch.
        for (pk, pd) in keep_audio
            .samples
            .chunks(160)
            .zip(drop_audio.samples.chunks(160))
            .take(20)
        {
            keep.push_samples(pk);
            doomed.push_samples(pd);
        }
        drop(doomed);
        for pk in keep_audio.samples.chunks(160).skip(20) {
            keep.push_samples(pk);
        }
        let survivor = keep.finalize();
        assert_eq!(survivor.words, vec!["call", "mom"]);
        // The reference: the same audio on an unbatched session.
        let mut unbatched = runtime.open_session_with(SessionOptions::new().batched_scoring(false));
        unbatched.push_samples(&keep_audio.samples);
        let reference = unbatched.finalize();
        assert_eq!(survivor.cost.to_bits(), reference.cost.to_bits());
        assert_eq!(runtime.stats().batch.unwrap().open_slots, 0);
    }
}
