//! Raw-audio streaming sessions: the facade acceptance contract.
//!
//! A session fed raw 16 kHz samples through
//! [`StreamingSession::push_samples`] must produce a transcript
//! byte-identical to the batch path (score the whole waveform, decode the
//! table) for every chunking of the stream — the facade end of the
//! online/batch equivalence pinned per-stage in
//! `crates/acoustic/tests/online_equivalence.rs`.
//!
//! [`StreamingSession::push_samples`]: asr_repro::pipeline::StreamingSession::push_samples

use asr_repro::pipeline::AsrPipeline;

#[test]
fn push_samples_transcripts_match_batch_recognize() {
    let pipeline = AsrPipeline::demo().unwrap();
    for words in [vec!["go"], vec!["lights", "on"], vec!["play", "music"]] {
        let audio = pipeline.render_words(&words).unwrap();
        let batch = pipeline.recognize_scores(&pipeline.score(&audio));
        for chunk in [1usize, 160, 163, audio.samples.len()] {
            let mut session = pipeline.open_session();
            for piece in audio.samples.chunks(chunk) {
                session.push_samples(piece);
            }
            let streamed = session.finalize();
            assert_eq!(streamed.words, batch.words, "{words:?} chunk {chunk}");
            assert_eq!(
                streamed.cost.to_bits(),
                batch.cost.to_bits(),
                "{words:?} chunk {chunk}"
            );
            assert_eq!(streamed.reached_final, batch.reached_final);
        }
    }
}

#[test]
fn recognize_runs_the_online_front_end() {
    // `recognize` is rebuilt on the online path; it must still match the
    // explicit batch pipeline bit-for-bit, and repeated calls must reuse
    // the pooled front-end rather than growing the pool.
    let pipeline = AsrPipeline::demo().unwrap();
    let audio = pipeline.render_words(&["call", "mom"]).unwrap();
    let batch = pipeline.recognize_scores(&pipeline.score(&audio));
    for _ in 0..3 {
        let online = pipeline.recognize(&audio);
        assert_eq!(online.words, batch.words);
        assert_eq!(online.cost.to_bits(), batch.cost.to_bits());
    }
    assert_eq!(
        pipeline.scratch_pool().idle(),
        1,
        "sequential recognizes share one decode scratch"
    );
}

#[test]
fn audio_session_partials_evolve_and_lag_by_the_lookahead() {
    let pipeline = AsrPipeline::demo().unwrap();
    let audio = pipeline.render_words(&["play", "music"]).unwrap();
    let total_frames = audio.samples.len() / 160;
    let mut session = pipeline.open_session();
    let mut partials = 0;
    for piece in audio.samples.chunks(160) {
        session.push_samples(piece);
        if let Some(p) = session.partial() {
            // One row held back in the session, two frames in the delta
            // lookahead: the search trails the pushed audio by <= 3.
            assert!(p.frames_decoded + 3 >= session.frames_pushed());
            partials += 1;
        }
    }
    assert!(partials > 0, "partials surfaced mid-utterance");
    assert!(
        session.frames_pushed() + 2 >= total_frames,
        "front-end delivered all but the lookahead frames"
    );
    let t = session.finalize();
    assert_eq!(t.words, vec!["play", "music"]);
}

#[test]
fn concurrent_audio_sessions_stay_independent() {
    let pipeline = AsrPipeline::demo().unwrap();
    let commands: Vec<Vec<&str>> = vec![
        vec!["go"],
        vec!["stop"],
        vec!["lights", "off"],
        vec!["call", "mom"],
    ];
    let expected: Vec<_> = commands
        .iter()
        .map(|w| {
            let audio = pipeline.render_words(w).unwrap();
            pipeline.recognize_scores(&pipeline.score(&audio))
        })
        .collect();
    std::thread::scope(|scope| {
        for worker in 0..4usize {
            let pipeline = &pipeline;
            let commands = &commands;
            let expected = &expected;
            scope.spawn(move || {
                for round in 0..commands.len() {
                    let i = (round + worker) % commands.len();
                    let audio = pipeline.render_words(&commands[i]).unwrap();
                    let mut session = pipeline.open_session();
                    for piece in audio.samples.chunks(331) {
                        session.push_samples(piece);
                    }
                    let t = session.finalize();
                    assert_eq!(t.words, expected[i].words, "utterance {i}");
                    assert_eq!(t.cost.to_bits(), expected[i].cost.to_bits());
                }
            });
        }
    });
}

#[test]
fn dropped_audio_session_returns_its_frontend() {
    let pipeline = AsrPipeline::demo().unwrap();
    let audio = pipeline.render_words(&["stop"]).unwrap();
    {
        let mut session = pipeline.open_session();
        session.push_samples(&audio.samples[..800]);
        // Dropped mid-utterance: scratch and front-end both come home.
    }
    assert_eq!(pipeline.scratch_pool().idle(), 1);
    // The recovered front-end serves the next request correctly (reset
    // clears the abandoned utterance's carried state).
    let t = pipeline.recognize(&audio);
    assert_eq!(t.words, vec!["stop"]);
}
