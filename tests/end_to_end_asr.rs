//! End-to-end ASR: synthetic speech through MFCC, template acoustic
//! scoring and Viterbi search must recover the words that produced the
//! audio — on the software decoder and on every accelerator design point.

use asr_repro::accel::config::{AcceleratorConfig, DesignPoint};
use asr_repro::pipeline::AsrPipeline;

#[test]
fn every_vocabulary_word_is_recognized() {
    let p = AsrPipeline::demo().unwrap();
    let vocab = [
        "low", "less", "call", "mom", "play", "music", "stop", "go", "home", "lights", "on", "off",
    ];
    for word in vocab {
        let audio = p.render_words(&[word]).unwrap();
        let t = p.recognize(&audio);
        assert_eq!(t.words, vec![word], "misrecognized {word:?}");
        assert!(t.reached_final, "{word:?} did not reach a final state");
    }
}

#[test]
fn multi_word_commands_have_zero_wer() {
    let p = AsrPipeline::demo().unwrap();
    let commands: Vec<Vec<&str>> = vec![
        vec!["call", "mom"],
        vec!["play", "music"],
        vec!["lights", "on"],
        vec!["go", "home"],
        vec!["stop", "music"],
        vec!["call", "mom", "stop"],
    ];
    for cmd in commands {
        let audio = p.render_words(&cmd).unwrap();
        let t = p.recognize(&audio);
        assert_eq!(
            p.wer(&cmd, &t),
            0.0,
            "WER > 0 on {cmd:?}: got {:?}",
            t.words
        );
    }
}

#[test]
fn accelerator_design_points_agree_end_to_end() {
    let p = AsrPipeline::demo().unwrap();
    let audio = p.render_words(&["lights", "off"]).unwrap();
    let sw = p.recognize(&audio);
    assert_eq!(sw.words, vec!["lights", "off"]);
    for design in DesignPoint::ALL {
        let (hw, result) = p
            .recognize_on_accelerator(&audio, AcceleratorConfig::for_design(design))
            .unwrap();
        assert_eq!(hw.words, sw.words, "{design:?}");
        assert_eq!(hw.cost, sw.cost, "{design:?}");
        assert!(result.stats.cycles > 0);
        assert!(result.stats.arcs_processed > 0);
    }
}

#[test]
fn longer_utterances_remain_stable() {
    let p = AsrPipeline::demo().unwrap();
    let cmd = vec!["go", "home", "lights", "on", "play", "music", "stop"];
    let audio = p.render_words(&cmd).unwrap();
    let t = p.recognize(&audio);
    assert_eq!(
        p.wer(&cmd, &t),
        0.0,
        "long utterance degraded: {:?}",
        t.words
    );
}

#[test]
fn hardware_stats_reflect_utterance_length() {
    let p = AsrPipeline::demo().unwrap();
    let short = p.render_words(&["go"]).unwrap();
    let long = p.render_words(&["go", "home", "lights", "on"]).unwrap();
    let cfg = AcceleratorConfig::for_design(DesignPoint::StateAndArc);
    let (_, short_r) = p.recognize_on_accelerator(&short, cfg.clone()).unwrap();
    let (_, long_r) = p.recognize_on_accelerator(&long, cfg).unwrap();
    assert!(long_r.stats.frames > short_r.stats.frames);
    assert!(long_r.stats.cycles > short_r.stats.cycles);
    assert!(long_r.stats.tokens_created > short_r.stats.tokens_created);
}

#[test]
fn gmm_acoustic_model_decodes_like_the_template_scorer() {
    // The accelerator/decoder are agnostic to the acoustic model; a GMM
    // fitted on the synthetic phones must drive the same pipeline.
    use asr_repro::acoustic::gmm::GmmModel;
    use asr_repro::acoustic::signal::{render_phones, SignalConfig};
    use asr_repro::decoder::search::{DecodeOptions, ViterbiDecoder};
    use asr_repro::wfst::compose::build_decoding_graph;
    use asr_repro::wfst::grammar::Grammar;
    use asr_repro::wfst::lexicon::demo_lexicon;
    use asr_repro::wfst::WordId;

    let lex = demo_lexicon();
    let words: Vec<WordId> = (1..=lex.num_words() as u32).map(WordId).collect();
    let graph = build_decoding_graph(&lex, &Grammar::uniform(&words)).unwrap();
    let cfg = SignalConfig::default();
    let model = GmmModel::fit_from_synthetic(lex.num_phones() as u32, &cfg);

    let mut phones = Vec::new();
    for w in ["go", "home"] {
        let id = lex.word_id(w).unwrap();
        let pron = lex.pronunciations().iter().find(|(x, _)| *x == id).unwrap();
        phones.extend_from_slice(&pron.1);
    }
    let wave = render_phones(&phones, 6, &cfg);
    let scores = model.score_waveform(&wave);
    let result = ViterbiDecoder::new(DecodeOptions::with_beam(60.0)).decode(&graph, &scores);
    assert_eq!(lex.transcript(&result.words), vec!["go", "home"]);
}
