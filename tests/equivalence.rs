//! Cross-crate integration: the cycle-accurate simulator must be
//! functionally identical to the reference software decoder on every
//! design point, workload shape, and idealization — the property that
//! makes the timing numbers trustworthy.

use asr_accel::config::{AcceleratorConfig, DesignPoint};
use asr_accel::sim::Simulator;
use asr_acoustic::scores::AcousticTable;
use asr_decoder::parallel::ParallelDecoder;
use asr_decoder::search::{DecodeOptions, ViterbiDecoder};
use asr_wfst::synth::{SynthConfig, SynthWfst};
use asr_wfst::Wfst;

fn workload(states: usize, frames: usize, seed: u64) -> (Wfst, AcousticTable) {
    let wfst = SynthWfst::generate(&SynthConfig::with_states(states).with_seed(seed)).unwrap();
    let scores = AcousticTable::random(
        frames,
        wfst.num_phones() as usize,
        (0.5, 4.0),
        seed.wrapping_mul(31),
    );
    (wfst, scores)
}

#[test]
fn simulator_matches_decoder_across_seeds_and_designs() {
    for seed in [1u64, 2, 3, 4, 5] {
        let (wfst, scores) = workload(4_000, 15, seed);
        let reference = ViterbiDecoder::new(DecodeOptions::with_beam(6.0)).decode(&wfst, &scores);
        for design in DesignPoint::ALL {
            let cfg = AcceleratorConfig::for_design(design).with_beam(6.0);
            let sim = Simulator::new(cfg).decode_wfst(&wfst, &scores).unwrap();
            assert_eq!(sim.cost, reference.cost, "seed {seed}, {design:?}");
            assert_eq!(sim.words, reference.words, "seed {seed}, {design:?}");
            assert_eq!(
                sim.best_state, reference.best_state,
                "seed {seed}, {design:?}"
            );
            assert_eq!(sim.reached_final, reference.reached_final);
        }
    }
}

#[test]
fn idealizations_never_change_function() {
    let (wfst, scores) = workload(5_000, 12, 77);
    let reference = ViterbiDecoder::new(DecodeOptions::with_beam(6.0)).decode(&wfst, &scores);
    let cfgs = [
        AcceleratorConfig::default()
            .with_beam(6.0)
            .with_perfect_caches(),
        AcceleratorConfig::default()
            .with_beam(6.0)
            .with_ideal_hash(),
        AcceleratorConfig::final_design()
            .with_beam(6.0)
            .with_perfect_caches()
            .with_ideal_hash(),
    ];
    for cfg in cfgs {
        let sim = Simulator::new(cfg).decode_wfst(&wfst, &scores).unwrap();
        assert_eq!(sim.cost, reference.cost);
        assert_eq!(sim.words, reference.words);
    }
}

#[test]
fn parallel_decoder_matches_sequential_on_all_thread_counts() {
    let (wfst, scores) = workload(4_000, 12, 11);
    let opts = DecodeOptions::with_beam(6.0);
    let seq = ViterbiDecoder::new(opts.clone()).decode(&wfst, &scores);
    for threads in [1usize, 2, 3, 8] {
        let par = ParallelDecoder::new(opts.clone(), threads).decode(&wfst, &scores);
        assert_eq!(par.cost, seq.cost, "{threads} threads");
        assert_eq!(par.words, seq.words, "{threads} threads");
    }
}

#[test]
fn beam_width_changes_work_not_result_validity() {
    // Wider beams may change the result (less pruning) but every beam
    // must keep simulator and decoder in lockstep.
    let (wfst, scores) = workload(3_000, 10, 13);
    for beam in [2.0f32, 4.0, 8.0, 16.0] {
        let reference = ViterbiDecoder::new(DecodeOptions::with_beam(beam)).decode(&wfst, &scores);
        let cfg = AcceleratorConfig::final_design().with_beam(beam);
        let sim = Simulator::new(cfg).decode_wfst(&wfst, &scores).unwrap();
        assert_eq!(sim.cost, reference.cost, "beam {beam}");
        assert_eq!(sim.words, reference.words, "beam {beam}");
    }
}

#[test]
fn sorted_layout_preserves_the_language() {
    // Decoding on the degree-sorted WFST directly (reference decoder on
    // the rewritten graph) gives the same costs as the original layout.
    let (wfst, scores) = workload(3_000, 10, 17);
    let sorted = asr_wfst::sorted::SortedWfst::new(&wfst).unwrap();
    let opts = DecodeOptions::with_beam(6.0);
    let original = ViterbiDecoder::new(opts.clone()).decode(&wfst, &scores);
    let rewritten = ViterbiDecoder::new(opts).decode(sorted.wfst(), &scores);
    assert_eq!(original.cost, rewritten.cost);
    assert_eq!(original.words, rewritten.words);
    assert_eq!(
        sorted.unmap_state(rewritten.best_state),
        original.best_state
    );
}

#[test]
fn epsilon_removal_preserves_best_paths() {
    // Decoding an epsilon-free rewrite of the graph must find the same
    // best cost and words (synthetic epsilon arcs carry no output labels,
    // so removal is exact).
    for seed in [1u64, 7, 23] {
        let (wfst, scores) = workload(2_000, 12, seed);
        let eps_free = asr_wfst::rmeps::remove_epsilons(&wfst).unwrap();
        assert_eq!(eps_free.epsilon_fraction(), 0.0);
        let opts = DecodeOptions::with_beam(8.0);
        let original = ViterbiDecoder::new(opts.clone()).decode(&wfst, &scores);
        let rewritten = ViterbiDecoder::new(opts).decode(&eps_free, &scores);
        assert!(
            (original.cost - rewritten.cost).abs() < 1e-3,
            "seed {seed}: {} vs {}",
            original.cost,
            rewritten.cost
        );
        assert_eq!(original.words, rewritten.words, "seed {seed}");
    }
}
