//! Allocation accounting for the pooled facade serving path.
//!
//! The claim under test: once the pipeline's [`ScratchPool`] is warm, a
//! decode through the facade — batch `recognize_scores` or a streaming
//! session — performs **zero steady-state heap allocations per frame**.
//! Two pins:
//!
//! 1. Identical warmed decodes allocate identically (no drift from pool
//!    churn).
//! 2. A 4x-longer utterance costs at most a logarithmic number of extra
//!    allocations (lattice/stat-vector doubling), never a per-frame one.
//!
//! Same methodology as the decoder crate's `tests/alloc_free.rs`, one
//! layer up: here the pool checkout/restore, the session's double-buffered
//! row handoff, and the transcript assembly are all inside the counted
//! region. The facade wraps `AsrRuntime`, so these pins cover owned
//! runtime `Session`s too; the dedicated runtime test additionally pins
//! the *overlapped* (shared-executor) push path.

use asr_repro::acoustic::scores::AcousticTable;
use asr_repro::pipeline::AsrPipeline;
use asr_repro::runtime::{AsrRuntime, BatchScoringConfig, RuntimeConfig, SessionOptions};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

/// The counter is process-global, so tests in this binary must not run
/// their allocating phases concurrently; each test body holds this lock.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn serialized() -> std::sync::MutexGuard<'static, ()> {
    SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

struct CountingAllocator;

// SAFETY: defers to the system allocator; the counter is metadata only.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn count_allocs(f: impl FnOnce()) -> u64 {
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    f();
    ALLOC_CALLS.load(Ordering::Relaxed) - before
}

/// Streams `scores` through a session and returns the word count (so the
/// decode cannot be optimized away).
fn run_session(pipeline: &AsrPipeline, scores: &AcousticTable) -> usize {
    let mut session = pipeline.open_session();
    session.push_frames(scores);
    session.finalize().words.len()
}

#[test]
fn warmed_facade_decodes_allocate_identically() {
    let _guard = serialized();
    let pipeline = AsrPipeline::demo().unwrap();
    let audio = pipeline.render_words(&["play", "music"]).unwrap();
    let scores = pipeline.score(&audio);

    // Warm the pool and every watermark.
    pipeline.recognize_scores(&scores);
    let first = count_allocs(|| {
        pipeline.recognize_scores(&scores);
    });
    let second = count_allocs(|| {
        pipeline.recognize_scores(&scores);
    });
    assert_eq!(
        first, second,
        "identical decodes through the warmed pool must allocate identically"
    );
}

#[test]
fn facade_frame_loop_is_allocation_free() {
    let _guard = serialized();
    let pipeline = AsrPipeline::demo().unwrap();
    // Same two words repeated: the long utterance has ~4x the frames but
    // recognizes a word sequence only 4x longer, so any per-frame
    // allocation dominates the delta.
    let short_words = ["lights", "on"];
    let long_words = [
        "lights", "on", "lights", "on", "lights", "on", "lights", "on",
    ];
    let short_scores = pipeline.score(&pipeline.render_words(&short_words).unwrap());
    let long_scores = pipeline.score(&pipeline.render_words(&long_words).unwrap());
    assert!(
        long_scores.num_frames() >= 3 * short_scores.num_frames(),
        "long workload must dwarf the short one"
    );

    // Warm every watermark with the longest workload.
    assert_eq!(run_session(&pipeline, &long_scores), long_words.len());

    let mut short_len = 0;
    let short_allocs = count_allocs(|| {
        short_len = run_session(&pipeline, &short_scores);
    });
    let mut long_len = 0;
    let long_allocs = count_allocs(|| {
        long_len = run_session(&pipeline, &long_scores);
    });
    assert_eq!(short_len, short_words.len());
    assert_eq!(long_len, long_words.len());

    // The long decode emits 6 extra words (6 `String`s + amortized
    // `Vec` growth) and may double the lattice/stat vectors a few more
    // times; a slack of 24 absorbs all of that, while a single
    // per-frame allocation would add ~100+.
    let frame_delta = (long_scores.num_frames() - short_scores.num_frames()) as u64;
    assert!(
        long_allocs <= short_allocs + 24,
        "{frame_delta} extra frames cost {long_allocs} allocations vs {short_allocs}: \
         the pooled facade path is allocating per frame"
    );
}

#[test]
fn audio_session_pushes_are_allocation_free_after_warmup() {
    let _guard = serialized();
    let pipeline = AsrPipeline::demo().unwrap();
    let words = [
        "play", "music", "play", "music", "play", "music", "play", "music", "play", "music",
    ];
    let audio = pipeline.render_words(&words).unwrap();
    // Warm the pools: decode scratch, session row buffers, and the online
    // front-end (ring, FFT scratch, delta windows, ready queue).
    {
        let mut session = pipeline.open_session();
        session.push_samples(&audio.samples);
        session.finalize();
    }

    let mut session = pipeline.open_session();
    let chunks: Vec<&[f32]> = audio.samples.chunks(160).collect();
    let tail_start = chunks.len() * 2 / 3;
    for piece in &chunks[..tail_start] {
        session.push_samples(piece);
    }
    let steady = count_allocs(|| {
        for piece in &chunks[tail_start..] {
            session.push_samples(piece);
        }
    });
    let frames = (chunks.len() - tail_start) as u64;
    assert!(
        frames >= 40,
        "workload too small to separate per-frame allocation from noise"
    );
    assert!(
        steady <= 8,
        "{frames} steady-state raw-audio pushes performed {steady} allocations: \
         the online front-end is allocating per frame"
    );
    drop(session);
}

#[test]
fn runtime_session_pushes_are_allocation_free_after_warmup() {
    let _guard = serialized();
    // Two executor lanes with overlap forced on: the counted region is
    // the *pipelined* push path — fork-join submission, steal-back, and
    // the worker-side scoring all inside the allocation count.
    let runtime = AsrRuntime::demo_with(RuntimeConfig::new().lanes(2)).unwrap();
    let words = [
        "play", "music", "play", "music", "play", "music", "play", "music", "play", "music",
    ];
    let audio = runtime.render_words(&words).unwrap();
    // Warm every pool and queue: decode scratch, session row buffers,
    // the online front-end, the executor's injector/deque capacities,
    // and the worker thread's lazy initialization.
    {
        let mut session = runtime.open_session_with(SessionOptions::new().overlap_scoring(true));
        session.push_samples(&audio.samples);
        session.finalize();
    }

    let mut session = runtime.open_session_with(SessionOptions::new().overlap_scoring(true));
    let chunks: Vec<&[f32]> = audio.samples.chunks(160).collect();
    let tail_start = chunks.len() * 2 / 3;
    for piece in &chunks[..tail_start] {
        session.push_samples(piece);
    }
    let steady = count_allocs(|| {
        for piece in &chunks[tail_start..] {
            session.push_samples(piece);
        }
    });
    let frames = (chunks.len() - tail_start) as u64;
    assert!(
        frames >= 40,
        "workload too small to separate per-frame allocation from noise"
    );
    assert!(
        steady <= 8,
        "{frames} steady-state overlapped pushes performed {steady} allocations: \
         the shared-executor session path is allocating per frame"
    );
    drop(session);
}

#[test]
fn multi_row_session_pushes_are_allocation_free_after_warmup() {
    let _guard = serialized();
    // Depth-3 ALB batches on two lanes: the counted region covers the
    // frame gather, the (1 + n)-chunk fork-join, the ready-FIFO
    // retire/recycle cycle, and the executor handoff. The queue's free
    // list recycles every row buffer, so the steady state must not
    // allocate per frame — or per batch.
    let runtime = AsrRuntime::demo_with(RuntimeConfig::new().lanes(2)).unwrap();
    let words = [
        "play", "music", "play", "music", "play", "music", "play", "music", "play", "music",
    ];
    let audio = runtime.render_words(&words).unwrap();
    // Warm the shared pools (front-end, scratch, executor) once.
    {
        let mut session = runtime.open_session_with(SessionOptions::new().overlap_depth(3));
        session.push_samples(&audio.samples);
        session.finalize();
    }

    let mut session = runtime.open_session_with(SessionOptions::new().overlap_depth(3));
    let chunks: Vec<&[f32]> = audio.samples.chunks(160).collect();
    // The session-local row queue and batch buffers warm during the
    // first two thirds; the tail must ride them.
    let tail_start = chunks.len() * 2 / 3;
    for piece in &chunks[..tail_start] {
        session.push_samples(piece);
    }
    let steady = count_allocs(|| {
        for piece in &chunks[tail_start..] {
            session.push_samples(piece);
        }
    });
    let frames = (chunks.len() - tail_start) as u64;
    assert!(
        frames >= 40,
        "workload too small to separate per-frame allocation from noise"
    );
    assert!(
        steady <= 8,
        "{frames} steady-state multi-row pushes performed {steady} allocations: \
         the ALB batch path is allocating per frame"
    );
    drop(session);
}

#[test]
fn batched_session_pushes_are_allocation_free_after_warmup() {
    let _guard = serialized();
    // Two sessions sharing the gather window: the counted region is the
    // full batched frame path — submit into the window, the inline
    // block flush (scoring both sessions' rows), scatter into the
    // per-slot ready queues, and the drain back through each session's
    // ALB handoff. The window, its scatter buffers, the ready queues,
    // and the pooled front-ends are all preallocated or warmed, so the
    // steady state must not allocate per frame.
    let runtime = AsrRuntime::demo_with(
        RuntimeConfig::new()
            .lanes(1)
            .batch_scoring(BatchScoringConfig::new(4)),
    )
    .unwrap();
    let words = [
        "play", "music", "play", "music", "play", "music", "play", "music", "play", "music",
    ];
    let audio = runtime.render_words(&words).unwrap();
    let chunks: Vec<&[f32]> = audio.samples.chunks(160).collect();
    // Warm everything once: slots, ready-queue capacities, front-ends,
    // decode scratches, and both sessions' row buffers.
    {
        let mut a = runtime.open_session();
        let mut b = runtime.open_session();
        for piece in &chunks {
            a.push_samples(piece);
            b.push_samples(piece);
        }
        a.finalize();
        b.finalize();
    }

    let mut a = runtime.open_session();
    let mut b = runtime.open_session();
    let tail_start = chunks.len() * 2 / 3;
    for piece in &chunks[..tail_start] {
        a.push_samples(piece);
        b.push_samples(piece);
    }
    let steady = count_allocs(|| {
        for piece in &chunks[tail_start..] {
            a.push_samples(piece);
            b.push_samples(piece);
        }
    });
    let frames = 2 * (chunks.len() - tail_start) as u64;
    assert!(
        frames >= 80,
        "workload too small to separate per-frame allocation from noise"
    );
    assert!(
        steady <= 16,
        "{frames} steady-state batched pushes performed {steady} allocations: \
         the gather/scatter path is allocating per frame"
    );
    assert!(
        runtime.stats().batch.expect("service configured").batches > 0,
        "the counted region must actually ride the batched path"
    );
    drop(a);
    drop(b);
}

#[test]
fn session_pushes_are_allocation_free_after_warmup() {
    let _guard = serialized();
    let pipeline = AsrPipeline::demo().unwrap();
    let words = [
        "call", "mom", "call", "mom", "call", "mom", "call", "mom", "call", "mom",
    ];
    let scores = pipeline.score(&pipeline.render_words(&words).unwrap());
    run_session(&pipeline, &scores); // warm the pool

    let mut session = pipeline.open_session();
    // The early pushes size the double-buffered row pair and grow the
    // per-session lattice through its doubling schedule; by the last
    // third, storage is warm and pushes ride it.
    let tail_start = scores.num_frames() * 2 / 3;
    for frame in 0..tail_start {
        session.push_row(scores.frame_row(frame));
    }
    let steady = count_allocs(|| {
        for frame in tail_start..scores.num_frames() {
            session.push_row(scores.frame_row(frame));
        }
    });
    let frames = (scores.num_frames() - tail_start) as u64;
    assert!(
        frames >= 40,
        "workload too small to separate per-frame allocation from noise"
    );
    assert!(
        steady <= 8,
        "{frames} steady-state pushes performed {steady} allocations"
    );
    drop(session);
}
