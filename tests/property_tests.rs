//! Property-based tests over the core data structures and invariants.

use asr_decoder::lattice::{Lattice, TraceId};
use asr_decoder::wer::align;
use asr_wfst::builder::WfstBuilder;
use asr_wfst::layout::{pack_arc, pack_state, unpack_arc, unpack_state};
use asr_wfst::sorted::SortedWfst;
use asr_wfst::synth::{SynthConfig, SynthWfst};
use asr_wfst::{Arc, ArcId, PhoneId, StateEntry, StateId, WordId};
use proptest::prelude::*;

proptest! {
    #[test]
    fn state_record_packing_roundtrips(first in 0u32..u32::MAX, ne in 0u16..=u16::MAX, eps in 0u16..=u16::MAX) {
        let entry = StateEntry {
            first_arc: ArcId(first),
            num_emitting: ne,
            num_epsilon: eps,
        };
        prop_assert_eq!(unpack_state(pack_state(entry)), entry);
    }

    #[test]
    fn arc_record_packing_roundtrips(dest in 0u32..u32::MAX, bits in any::<u32>(), il in 0u32..1_000_000, ol in 0u32..1_000_000) {
        let arc = Arc {
            dest: StateId(dest),
            weight: f32::from_bits(bits),
            ilabel: PhoneId(il),
            olabel: WordId(ol),
        };
        let back = unpack_arc(pack_arc(arc));
        prop_assert_eq!(back.dest, arc.dest);
        prop_assert_eq!(back.weight.to_bits(), arc.weight.to_bits());
        prop_assert_eq!(back.ilabel, arc.ilabel);
        prop_assert_eq!(back.olabel, arc.olabel);
    }

    #[test]
    fn wfst_io_roundtrips_arbitrary_graphs(
        num_states in 2usize..40,
        arcs in prop::collection::vec((0usize..40, 0usize..40, 1u32..10, 0u32..5, 0.0f32..5.0), 1..120),
        final_state in 0usize..40,
    ) {
        let mut b = WfstBuilder::new();
        let first = b.add_states(num_states);
        b.set_start(first);
        b.set_final(StateId((final_state % num_states) as u32), 0.5);
        for (src, dst, il, ol, w) in arcs {
            let src = StateId((src % num_states) as u32);
            let dst = StateId((dst % num_states) as u32);
            // il >= 1 keeps these emitting; throw in epsilons via ol == 0.
            let ilabel = if ol == 0 { PhoneId::EPSILON } else { PhoneId(il) };
            let olabel = if ilabel.is_epsilon() { WordId::NONE } else { WordId(ol) };
            b.add_arc(src, dst, ilabel, olabel, w);
        }
        let wfst = b.build().unwrap();
        let bytes = asr_wfst::io::to_bytes(&wfst);
        let back = asr_wfst::io::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back.num_states(), wfst.num_states());
        prop_assert_eq!(back.num_arcs(), wfst.num_arcs());
        prop_assert_eq!(back.start(), wfst.start());
        prop_assert_eq!(back.state_entries(), wfst.state_entries());
    }

    #[test]
    fn sorted_layout_direct_index_is_always_correct(seed in 0u64..500) {
        let wfst = SynthWfst::generate(
            &SynthConfig { num_states: 300, ..SynthConfig::default() }.with_seed(seed),
        ).unwrap();
        let sorted = SortedWfst::new(&wfst).unwrap();
        for idx in 0..sorted.wfst().num_states() {
            let sid = StateId(idx as u32);
            let entry = sorted.wfst().state(sid);
            match sorted.unit().direct_arc_index(sid) {
                Some((arc, degree)) => {
                    prop_assert_eq!(arc, entry.first_arc);
                    prop_assert_eq!(degree as usize, entry.num_arcs());
                }
                None => {
                    prop_assert!(entry.num_arcs() == 0 || entry.num_arcs() > 16);
                }
            }
        }
    }

    #[test]
    fn sorted_layout_is_a_permutation(seed in 0u64..200) {
        let wfst = SynthWfst::generate(
            &SynthConfig { num_states: 200, ..SynthConfig::default() }.with_seed(seed),
        ).unwrap();
        let sorted = SortedWfst::new(&wfst).unwrap();
        let mut seen = vec![false; wfst.num_states()];
        for idx in 0..wfst.num_states() {
            let new = sorted.map_state(StateId(idx as u32));
            prop_assert_eq!(sorted.unmap_state(new), StateId(idx as u32));
            prop_assert!(!seen[new.index()]);
            seen[new.index()] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
        prop_assert_eq!(sorted.wfst().num_arcs(), wfst.num_arcs());
    }

    #[test]
    fn lattice_backtrack_returns_pushed_words_in_order(words in prop::collection::vec(0u32..50, 0..30)) {
        let mut lattice = Lattice::new();
        let mut cur = TraceId::ROOT;
        for &w in &words {
            cur = lattice.push(cur, WordId(w));
        }
        let expected: Vec<WordId> = words.iter().filter(|&&w| w != 0).map(|&w| WordId(w)).collect();
        let got = if cur.is_root() { Vec::new() } else { lattice.backtrack(cur) };
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn wer_is_a_metric_like_quantity(
        a in prop::collection::vec(1u32..6, 0..12),
        b in prop::collection::vec(1u32..6, 0..12),
    ) {
        let to_ids = |v: &[u32]| -> Vec<WordId> { v.iter().map(|&x| WordId(x)).collect() };
        let (ia, ib) = (to_ids(&a), to_ids(&b));
        let ab = align(&ia, &ib);
        let ba = align(&ib, &ia);
        // Identity of indiscernibles and symmetry of the edit distance.
        if a == b {
            prop_assert_eq!(ab.errors(), 0);
        }
        prop_assert_eq!(ab.errors(), ba.errors());
        // Distance bounded by the longer sequence.
        prop_assert!(ab.errors() <= a.len().max(b.len()));
        // Alignment counts are self-consistent.
        prop_assert_eq!(ab.correct + ab.substitutions + ab.deletions, a.len());
        prop_assert_eq!(ab.correct + ab.substitutions + ab.insertions, b.len());
    }

    #[test]
    fn synthetic_wfst_statistics_hold_for_any_seed(seed in 0u64..100) {
        let wfst = SynthWfst::generate(
            &SynthConfig { num_states: 2_000, ..SynthConfig::default() }.with_seed(seed),
        ).unwrap();
        // Every state has at least one emitting arc.
        prop_assert!(wfst.state_entries().iter().all(|s| s.num_emitting >= 1));
        // Epsilon fraction in a loose band around the 11.5% target.
        let eps = wfst.epsilon_fraction();
        prop_assert!(eps < 0.25, "epsilon fraction {eps}");
        // At least one final state; start in range.
        prop_assert!(wfst.final_states().count() >= 1);
        prop_assert!(wfst.start().index() < wfst.num_states());
    }
}
