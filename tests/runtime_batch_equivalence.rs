//! The differential test layer pinning cross-session batched scoring.
//!
//! The claim under test: a [`Session`] whose acoustic scoring runs
//! through the runtime's shared gather window produces transcripts,
//! cost bits, and partial hypotheses **byte-identical** to
//!
//! 1. the same session with batching disabled
//!    ([`SessionOptions::batched_scoring`]`(false)` — the synchronous
//!    per-session scorer), and
//! 2. a fresh sequential [`ViterbiDecoder`] over the batch-scored
//!    table,
//!
//! regardless of gather-window size, how many sessions share the
//! window, how their lifetimes stagger, and which batches their frames
//! happen to land in. Batch composition must be *numerically
//! invisible*: every cost row is a pure function of its own feature
//! vector, computed with one fold order on every path.
//!
//! A proptest sweep additionally drives random interleavings of
//! open/push/flush/finish/drop against the service and checks that no
//! scored row is ever dropped, duplicated, or routed to the wrong
//! session — any such slip corrupts a transcript the properties compare
//! against its unbatched reference.
//!
//! [`Session`]: asr_repro::runtime::Session
//! [`SessionOptions::batched_scoring`]: asr_repro::runtime::SessionOptions::batched_scoring
//! [`ViterbiDecoder`]: asr_repro::decoder::search::ViterbiDecoder

use asr_repro::acoustic::signal::Utterance;
use asr_repro::decoder::search::ViterbiDecoder;
use asr_repro::runtime::{
    AsrRuntime, BatchScoringConfig, QosPolicy, RuntimeConfig, Session, SessionOptions, Transcript,
};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Microphone-style packet size used throughout: 10 ms at 16 kHz.
const PACKET: usize = 160;

/// Utterances of deliberately different lengths, so staggered sessions
/// also *finish* at different times (sessions leave the window while
/// others are mid-utterance).
const SCRIPTS: [&[&str]; 6] = [
    &["go"],
    &["stop"],
    &["lights", "on"],
    &["lights", "off", "stop"],
    &["play", "music"],
    &["call", "mom", "go"],
];

/// The per-utterance ground truth: a fresh sequential decoder over the
/// batch-scored table (no pools, no window, no service).
fn sequential_reference(runtime: &AsrRuntime, audio: &Utterance) -> (Vec<String>, u32) {
    let scores = runtime.score(audio);
    let result = ViterbiDecoder::new(runtime.options().clone()).decode(runtime.graph(), &scores);
    (
        runtime.lexicon().transcript(&result.words),
        result.cost.to_bits(),
    )
}

/// Drives one session per utterance round-robin on a single thread,
/// session `i` joining `i * stagger` rounds late, each finishing as its
/// own audio runs out. This is the deterministic worst case for the
/// gather window: membership changes constantly, both by arrival and by
/// departure.
fn drive_staggered(
    runtime: &AsrRuntime,
    audios: &[Utterance],
    options: &SessionOptions,
    stagger: usize,
) -> Vec<Transcript> {
    let mut sessions: Vec<Option<Session>> = (0..audios.len()).map(|_| None).collect();
    let mut cursors = vec![0usize; audios.len()];
    let mut done: Vec<Option<Transcript>> = (0..audios.len()).map(|_| None).collect();
    let mut remaining = audios.len();
    let mut round = 0usize;
    while remaining > 0 {
        for i in 0..audios.len() {
            if done[i].is_some() || round < i * stagger {
                continue;
            }
            let session =
                sessions[i].get_or_insert_with(|| runtime.open_session_with(options.clone()));
            let samples = &audios[i].samples;
            let lo = cursors[i];
            if lo >= samples.len() {
                let finished = sessions[i].take().expect("session opened above");
                done[i] = Some(finished.finalize());
                remaining -= 1;
            } else {
                let hi = samples.len().min(lo + PACKET);
                session.push_samples(&samples[lo..hi]);
                cursors[i] = hi;
            }
        }
        round += 1;
    }
    done.into_iter().map(Option::unwrap).collect()
}

fn assert_all_match(got: &[Transcript], expected: &[(Vec<String>, u32)], label: &str) {
    for (i, (t, e)) in got.iter().zip(expected).enumerate() {
        assert_eq!(t.words, e.0, "{label}: utterance {i} words");
        assert_eq!(t.cost.to_bits(), e.1, "{label}: utterance {i} cost bits");
    }
}

#[test]
fn staggered_sessions_are_byte_identical_across_window_sizes() {
    // {1, 2, 8, max}: window 1 degenerates to per-frame flushes, 64 is
    // far past what six sessions ever fill (the self-sizing target
    // flushes at the live-session count, so frames never stall).
    for window in [1usize, 2, 8, 64] {
        let runtime = AsrRuntime::demo_with(
            RuntimeConfig::new()
                .lanes(1)
                .batch_scoring(BatchScoringConfig::new(window)),
        )
        .unwrap();
        let audios: Vec<Utterance> = SCRIPTS
            .iter()
            .map(|w| runtime.render_words(w).unwrap())
            .collect();
        let expected: Vec<(Vec<String>, u32)> = audios
            .iter()
            .map(|a| sequential_reference(&runtime, a))
            .collect();

        let batched = drive_staggered(
            &runtime,
            &audios,
            &SessionOptions::new().batched_scoring(true),
            5,
        );
        let unbatched = drive_staggered(
            &runtime,
            &audios,
            &SessionOptions::new().batched_scoring(false),
            5,
        );
        assert_all_match(&batched, &expected, &format!("window {window} batched"));
        assert_all_match(&unbatched, &expected, &format!("window {window} unbatched"));

        let stats = runtime.stats().batch.expect("service configured");
        assert_eq!(stats.open_slots, 0, "window {window}: slots all released");
        assert!(
            stats.batches > 0,
            "window {window}: staggered sessions never batched"
        );
        assert!(
            stats.widest_batch <= window,
            "window {window}: batch of {} overflowed the cap",
            stats.widest_batch
        );
    }
}

#[test]
fn sixteen_sessions_share_one_window_byte_identically() {
    let runtime = AsrRuntime::demo_with(
        RuntimeConfig::new()
            .lanes(1)
            .batch_scoring(BatchScoringConfig::new(8).max_wait_frames(3)),
    )
    .unwrap();
    // Sixteen sessions over the six scripts: several sessions speak the
    // *same* words, so a row routed to the wrong same-script session is
    // only caught by the cost bits — which the references pin.
    let audios: Vec<Utterance> = (0..16)
        .map(|i| runtime.render_words(SCRIPTS[i % SCRIPTS.len()]).unwrap())
        .collect();
    let expected: Vec<(Vec<String>, u32)> = audios
        .iter()
        .map(|a| sequential_reference(&runtime, a))
        .collect();
    let batched = drive_staggered(
        &runtime,
        &audios,
        &SessionOptions::new().batched_scoring(true),
        2,
    );
    assert_all_match(&batched, &expected, "16 sessions");
    let stats = runtime.stats().batch.expect("service configured");
    assert!(stats.widest_batch >= 4, "16 live sessions must batch wide");
    assert_eq!(stats.open_slots, 0);
}

#[test]
fn mlp_runtime_batches_byte_identically_across_windows() {
    // The realistic DNN compute shape: same differential, real matrix
    // math, where any cross-row reassociation in the block forward pass
    // would flip low-order bits immediately.
    for window in [2usize, 8] {
        let runtime = AsrRuntime::demo_with(
            RuntimeConfig::new()
                .lanes(1)
                .beam(1.0e9)
                .mlp_acoustic(&[48], 11)
                .batch_scoring(BatchScoringConfig::new(window)),
        )
        .unwrap();
        let audios: Vec<Utterance> = SCRIPTS[..4]
            .iter()
            .map(|w| runtime.render_words(w).unwrap())
            .collect();
        let expected: Vec<(Vec<String>, u32)> = audios
            .iter()
            .map(|a| sequential_reference(&runtime, a))
            .collect();
        let batched = drive_staggered(
            &runtime,
            &audios,
            &SessionOptions::new().batched_scoring(true),
            3,
        );
        let unbatched = drive_staggered(
            &runtime,
            &audios,
            &SessionOptions::new().batched_scoring(false),
            3,
        );
        assert_all_match(&batched, &expected, &format!("mlp window {window}"));
        assert_all_match(&unbatched, &expected, &format!("mlp unbatched {window}"));
        assert!(runtime.stats().batch.unwrap().batches > 0);
    }
}

#[test]
fn concurrent_batched_sessions_from_threads_are_byte_identical() {
    // Multi-lane runtime, one OS thread per session: batch composition
    // is now racy and different every run — the transcripts must not be.
    let runtime = AsrRuntime::demo_with(
        RuntimeConfig::new()
            .lanes(2)
            .batch_scoring(BatchScoringConfig::new(8)),
    )
    .unwrap();
    let audios: Vec<Utterance> = SCRIPTS
        .iter()
        .map(|w| runtime.render_words(w).unwrap())
        .collect();
    let expected: Vec<(Vec<String>, u32)> = audios
        .iter()
        .map(|a| sequential_reference(&runtime, a))
        .collect();
    for _ in 0..3 {
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (i, audio) in audios.iter().enumerate() {
                let runtime = &runtime;
                let expected = &expected[i];
                handles.push(scope.spawn(move || {
                    let mut session = runtime.open_session();
                    for packet in audio.samples.chunks(PACKET) {
                        session.push_samples(packet);
                    }
                    let t = session.finalize();
                    assert_eq!(t.words, expected.0, "threaded utterance {i}");
                    assert_eq!(t.cost.to_bits(), expected.1, "threaded utterance {i}");
                }));
            }
            for handle in handles {
                handle.join().expect("batched session thread");
            }
        });
    }
    assert_eq!(runtime.stats().batch.unwrap().open_slots, 0);
}

#[test]
fn partials_agree_with_unbatched_at_flush_sync_points() {
    let runtime = AsrRuntime::demo_with(
        RuntimeConfig::new()
            .lanes(1)
            .batch_scoring(BatchScoringConfig::new(8).max_wait_frames(4)),
    )
    .unwrap();
    let a = runtime.render_words(&["play", "music"]).unwrap();
    let b = runtime.render_words(&["call", "mom"]).unwrap();

    // Two batched sessions sharing the window vs. two unbatched twins,
    // compared packet by packet. `flush_scoring` is the sync point: it
    // forces the batched pair to consume exactly the frames their
    // front-ends have completed — the state the unbatched pair is in
    // after every push — so the partials must agree bit for bit.
    let mut ba = runtime.open_session_with(SessionOptions::new().batched_scoring(true));
    let mut bb = runtime.open_session_with(SessionOptions::new().batched_scoring(true));
    let mut ua = runtime.open_session_with(SessionOptions::new().batched_scoring(false));
    let mut ub = runtime.open_session_with(SessionOptions::new().batched_scoring(false));
    let mut ia = a.samples.chunks(PACKET);
    let mut ib = b.samples.chunks(PACKET);
    let mut compared = 0usize;
    loop {
        let pa = ia.next();
        let pb = ib.next();
        if pa.is_none() && pb.is_none() {
            break;
        }
        if let Some(p) = pa {
            ba.push_samples(p);
            ua.push_samples(p);
        }
        if let Some(p) = pb {
            bb.push_samples(p);
            ub.push_samples(p);
        }
        ba.flush_scoring();
        bb.flush_scoring();
        for (batched, unbatched) in [(&ba, &ua), (&bb, &ub)] {
            match (batched.partial(), unbatched.partial()) {
                (Some(x), Some(y)) => {
                    assert_eq!(x.words, y.words, "partial words at a sync point");
                    assert_eq!(x.cost.to_bits(), y.cost.to_bits(), "partial cost bits");
                    assert_eq!(x.frames_decoded, y.frames_decoded, "frames decoded");
                    compared += 1;
                }
                (x, y) => assert_eq!(x.is_none(), y.is_none(), "liveness diverged"),
            }
        }
    }
    assert!(compared > 20, "sync points barely exercised: {compared}");
    let ta = ba.finalize();
    let tb = bb.finalize();
    assert_eq!(ta.cost.to_bits(), ua.finalize().cost.to_bits());
    assert_eq!(tb.cost.to_bits(), ub.finalize().cost.to_bits());
    assert_eq!(ta.words, vec!["play", "music"]);
    assert_eq!(tb.words, vec!["call", "mom"]);
}

#[test]
fn scripted_tier_trace_is_byte_identical_with_batching_on_and_off() {
    // QoS interaction: tier changes land only at frame boundaries, and
    // `flush_scoring` pins both modes to the same consumption state
    // before each change, so one scripted trace must decode to the same
    // bytes whether scoring is batched or not.
    let policy = QosPolicy::new()
        .tier(0.5, 20.0, Some(512))
        .tier(0.9, 6.0, Some(64))
        .floors(8.0, 32);
    let runtime = AsrRuntime::demo_with(
        RuntimeConfig::new()
            .lanes(1)
            .qos(policy)
            .batch_scoring(BatchScoringConfig::new(8).max_wait_frames(4)),
    )
    .unwrap();
    let a = runtime.render_words(&["lights", "on", "go"]).unwrap();
    let b = runtime.render_words(&["stop", "call", "mom"]).unwrap();
    let tier_for_epoch = |epoch: usize| match epoch % 4 {
        0 => 0,
        1 => 2,
        2 => 1,
        _ => 0,
    };
    let run = |batched: bool| {
        let opts = SessionOptions::new().batched_scoring(batched).pin_tier(0);
        let mut sa = runtime.open_session_with(opts.clone());
        let mut sb = runtime.open_session_with(opts);
        let mut ia = a.samples.chunks(PACKET);
        let mut ib = b.samples.chunks(PACKET);
        let mut epoch = 0usize;
        loop {
            let mut pushed = false;
            // One epoch = four packets per session at one pinned tier.
            sa.pin_tier(tier_for_epoch(epoch));
            sb.pin_tier(tier_for_epoch(epoch));
            for _ in 0..4 {
                if let Some(p) = ia.next() {
                    sa.push_samples(p);
                    pushed = true;
                }
                if let Some(p) = ib.next() {
                    sb.push_samples(p);
                    pushed = true;
                }
            }
            // Sync point: both modes have now searched exactly the same
            // rows, so the *next* epoch's tier lands on the same frame.
            sa.flush_scoring();
            sb.flush_scoring();
            if !pushed {
                break;
            }
            epoch += 1;
        }
        (sa.finalize(), sb.finalize())
    };
    let (ba, bb) = run(true);
    let (ua, ub) = run(false);
    assert_eq!(ba.words, ua.words);
    assert_eq!(ba.cost.to_bits(), ua.cost.to_bits());
    assert_eq!(bb.words, ub.words);
    assert_eq!(bb.cost.to_bits(), ub.cost.to_bits());
    assert!(
        runtime.stats().batch.unwrap().batches > 0,
        "the QoS trace must actually exercise the batched path"
    );
}

/// Shared fixture for the property sweep: one runtime (window 4, so the
/// interleavings constantly fill and flush it) plus per-lane audio and
/// unbatched references. Lane audios are all *distinct* word sequences:
/// a row misrouted between lanes always lands in a different utterance
/// and corrupts its transcript or cost bits.
struct PropFixture {
    runtime: AsrRuntime,
    audios: Vec<Utterance>,
    expected: Vec<(Vec<String>, u32)>,
}

fn prop_fixture() -> &'static PropFixture {
    static FIXTURE: OnceLock<PropFixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let runtime = AsrRuntime::demo_with(
            RuntimeConfig::new()
                .lanes(1)
                .batch_scoring(BatchScoringConfig::new(4).max_wait_frames(2)),
        )
        .unwrap();
        let scripts: [&[&str]; 4] = [
            &["go", "stop"],
            &["lights", "on"],
            &["play", "music"],
            &["call", "mom"],
        ];
        let audios: Vec<Utterance> = scripts
            .iter()
            .map(|w| runtime.render_words(w).unwrap())
            .collect();
        let expected = audios
            .iter()
            .map(|a| sequential_reference(&runtime, a))
            .collect();
        PropFixture {
            runtime,
            audios,
            expected,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Random interleavings of open/push/flush/finish/drop across four
    // lanes never drop, duplicate, or misroute a scored row, and a
    // mid-batch drop leaves the service healthy for everyone else.
    #[test]
    fn random_interleavings_never_misroute_rows(
        ops in prop::collection::vec((0usize..4, 0u8..10), 1..70),
    ) {
        let fx = prop_fixture();
        let mut sessions: Vec<Option<Session>> = (0..4).map(|_| None).collect();
        let mut cursors = vec![0usize; 4];
        let mut drops = 0u32;
        let mut finishes = 0u32;

        let finish = |lane: usize,
                      sessions: &mut Vec<Option<Session>>,
                      cursors: &mut Vec<usize>|
         -> Transcript {
            let mut session = sessions[lane].take().expect("caller checked");
            let samples = &fx.audios[lane].samples;
            if cursors[lane] < samples.len() {
                session.push_samples(&samples[cursors[lane]..]);
            }
            cursors[lane] = 0;
            session.finalize()
        };

        for (lane, op) in ops {
            match op {
                // Weighted toward pushes: the window only misbehaves
                // while rows are moving through it.
                0..=6 => {
                    let samples = &fx.audios[lane].samples;
                    if sessions[lane].is_none() {
                        cursors[lane] = 0;
                    }
                    let session = sessions[lane]
                        .get_or_insert_with(|| fx.runtime.open_session());
                    let lo = cursors[lane];
                    if lo >= samples.len() {
                        // Out of audio: finish instead.
                        let t = finish(lane, &mut sessions, &mut cursors);
                        prop_assert_eq!(&t.words, &fx.expected[lane].0);
                        prop_assert_eq!(t.cost.to_bits(), fx.expected[lane].1);
                        finishes += 1;
                        continue;
                    }
                    let hi = samples.len().min(lo + PACKET);
                    session.push_samples(&samples[lo..hi]);
                    cursors[lane] = hi;
                }
                7 => {
                    if let Some(session) = sessions[lane].as_mut() {
                        session.flush_scoring();
                    }
                }
                8 => {
                    if sessions[lane].is_some() {
                        let t = finish(lane, &mut sessions, &mut cursors);
                        prop_assert_eq!(&t.words, &fx.expected[lane].0);
                        prop_assert_eq!(t.cost.to_bits(), fx.expected[lane].1);
                        finishes += 1;
                    }
                }
                _ => {
                    // Drop mid-utterance — possibly with rows of this
                    // session still pending in the gather window.
                    if sessions[lane].take().is_some() {
                        drops += 1;
                        cursors[lane] = 0;
                    }
                }
            }
        }
        // Land every survivor: each must still decode its own words.
        for lane in 0..4 {
            if sessions[lane].is_some() {
                let t = finish(lane, &mut sessions, &mut cursors);
                prop_assert_eq!(&t.words, &fx.expected[lane].0);
                prop_assert_eq!(t.cost.to_bits(), fx.expected[lane].1);
                finishes += 1;
            }
        }
        let _ = (drops, finishes);
        // The service is healthy after the storm: every slot freed, and
        // a fresh session scores correctly through the same window.
        let stats = fx.runtime.stats().batch.expect("service configured");
        prop_assert_eq!(stats.open_slots, 0);
        let mut probe = fx.runtime.open_session();
        probe.push_samples(&fx.audios[0].samples);
        let t = probe.finalize();
        prop_assert_eq!(&t.words, &fx.expected[0].0);
        prop_assert_eq!(t.cost.to_bits(), fx.expected[0].1);
    }
}
