//! Shared-runtime concurrency tests: the acceptance surface of the
//! `AsrRuntime` redesign.
//!
//! The claims under test:
//!
//! 1. [`Session`] is owned, `Send + 'static` — it can be spawned into
//!    plain (non-scoped) threads and migrate between threads
//!    mid-utterance.
//! 2. Eight — and sixteen, and thirty-two — concurrent sessions on
//!    **one** runtime — one scratch pool, one lock-free work-stealing
//!    executor — produce transcripts byte-identical to a fresh
//!    sequential [`ViterbiDecoder`] on the same inputs, across
//!    raw-audio, pre-scored, single-row overlapped, and multi-row
//!    overlapped sessions, for any lane count and steal schedule.
//! 3. The shared pools stay bounded: the scratch pool's high-water mark
//!    tracks peak concurrency, and once warm the cold-checkout counter
//!    stops moving.
//!
//! [`Session`]: asr_repro::runtime::Session
//! [`ViterbiDecoder`]: asr_repro::decoder::search::ViterbiDecoder

use asr_repro::decoder::search::{DecodeOptions, ViterbiDecoder};
use asr_repro::runtime::{AsrRuntime, QosPolicy, RuntimeConfig, Session, SessionOptions};

fn assert_send_static<T: Send + 'static>() {}

/// The per-utterance ground truth, computed with a fresh sequential
/// decoder (no pool, no scratch reuse, no executor).
fn sequential_reference(runtime: &AsrRuntime, words: &[&str]) -> (Vec<String>, u32) {
    let audio = runtime.render_words(words).unwrap();
    let scores = runtime.score(&audio);
    let result = ViterbiDecoder::new(runtime.options().clone()).decode(runtime.graph(), &scores);
    (
        runtime.lexicon().transcript(&result.words),
        result.cost.to_bits(),
    )
}

#[test]
fn session_is_send_and_static() {
    assert_send_static::<Session>();
    assert_send_static::<AsrRuntime>();
}

#[test]
fn eight_concurrent_sessions_on_one_pool_are_byte_identical() {
    // Three executor lanes so the shared pool is real even on a 1-core
    // machine; eight session threads all lease from it.
    let runtime = AsrRuntime::demo_with(RuntimeConfig::new().lanes(3)).unwrap();
    let utterances: Vec<Vec<&str>> = vec![
        vec!["go"],
        vec!["stop"],
        vec!["lights", "on"],
        vec!["lights", "off"],
        vec!["play", "music"],
        vec!["call", "mom"],
    ];
    let expected: Vec<(Vec<String>, u32)> = utterances
        .iter()
        .map(|w| sequential_reference(&runtime, w))
        .collect();

    let mut handles = Vec::new();
    for worker in 0..8usize {
        // Plain `thread::spawn`, not scoped: the runtime handle and the
        // sessions it opens are owned and 'static.
        let runtime = runtime.clone();
        let utterances = utterances.clone();
        let expected = expected.clone();
        handles.push(std::thread::spawn(move || {
            for round in 0..utterances.len() {
                let i = (round + worker) % utterances.len();
                let audio = runtime.render_words(&utterances[i]).unwrap();
                let transcript = if worker % 2 == 0 {
                    // Raw-audio session (overlapped scoring on the
                    // shared executor), mic-style packets.
                    let mut session = runtime.open_session();
                    for packet in audio.samples.chunks(160) {
                        session.push_samples(packet);
                    }
                    session.finalize()
                } else {
                    // Pre-scored rows through the same pool.
                    let scores = runtime.score(&audio);
                    let mut session = runtime.open_session();
                    session.push_frames(&scores);
                    session.finalize()
                };
                assert_eq!(transcript.words, expected[i].0, "utterance {i}");
                assert_eq!(transcript.cost.to_bits(), expected[i].1, "utterance {i}");
            }
        }));
    }
    for handle in handles {
        handle.join().expect("session worker");
    }

    // Every checked-out scratch came home; the pool's high-water mark is
    // bounded by the peak concurrency, not the request count.
    let idle = runtime.scratch_pool().idle();
    assert!(
        (1..=8).contains(&idle),
        "pool holds {idle} scratches after 8 workers x 6 requests"
    );
    let stats = runtime.scratch_pool().stats();
    assert_eq!(stats.restores, 8 * 6, "every session restored its scratch");
    assert!(
        stats.cold_checkouts <= 8,
        "cold checkouts ({}) bounded by peak concurrency",
        stats.cold_checkouts
    );
    assert_eq!(stats.checkouts(), 8 * 6);
}

#[test]
fn sixteen_and_thirty_two_concurrent_sessions_are_byte_identical() {
    let runtime = AsrRuntime::demo_with(RuntimeConfig::new().lanes(3)).unwrap();
    let utterances: Vec<Vec<&str>> = vec![
        vec!["go"],
        vec!["stop"],
        vec!["lights", "on"],
        vec!["call", "mom"],
    ];
    let expected: Vec<(Vec<String>, u32)> = utterances
        .iter()
        .map(|w| sequential_reference(&runtime, w))
        .collect();
    let audio: Vec<_> = utterances
        .iter()
        .map(|w| runtime.render_words(w).unwrap())
        .collect();
    let scored: Vec<_> = audio.iter().map(|a| runtime.score(a)).collect();

    let mut total = 0;
    for sessions in [16usize, 32] {
        total += sessions;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for worker in 0..sessions {
                let runtime = &runtime;
                let audio = &audio;
                let scored = &scored;
                let expected = &expected;
                handles.push(scope.spawn(move || {
                    let i = worker % audio.len();
                    let transcript = match worker % 3 {
                        0 => {
                            // Multi-row ALB batches, varied depth and
                            // packet size per worker.
                            let depth = 2 + worker % 3;
                            let mut session = runtime
                                .open_session_with(SessionOptions::new().overlap_depth(depth));
                            for packet in audio[i].samples.chunks(160 + 37 * (worker % 5)) {
                                session.push_samples(packet);
                            }
                            session.finalize()
                        }
                        1 => {
                            // Classic single-row overlap.
                            let mut session = runtime.open_session();
                            session.push_samples(&audio[i].samples);
                            session.finalize()
                        }
                        _ => {
                            // Pre-scored rows through the same pool.
                            let mut session = runtime.open_session();
                            session.push_frames(&scored[i]);
                            session.finalize()
                        }
                    };
                    assert_eq!(transcript.words, expected[i].0, "worker {worker}");
                    assert_eq!(transcript.cost.to_bits(), expected[i].1, "worker {worker}");
                }));
            }
            for handle in handles {
                handle.join().expect("session worker");
            }
        });
    }
    let stats = runtime.scratch_pool().stats();
    assert_eq!(
        stats.checkouts(),
        stats.restores,
        "every scratch came home across {total} sessions"
    );
}

#[test]
fn seeded_lane_depth_matrix_pins_determinism_of_the_lock_free_deques() {
    // A seeded LCG drives a (lanes × overlap_depth × chunking) matrix —
    // proptest-style coverage of arbitrary steal schedules without a new
    // dependency. Any failure reproduces exactly from the fixed seed.
    let mut state = 0x0005_DEEC_E66D_u64;
    let mut next = move |bound: usize| {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        ((state >> 33) as usize) % bound
    };
    for lanes in [2usize, 3] {
        let runtime = AsrRuntime::demo_with(RuntimeConfig::new().lanes(lanes)).unwrap();
        let words = ["play", "music"];
        let expected = sequential_reference(&runtime, &words);
        let audio = runtime.render_words(&words).unwrap();
        for _ in 0..4 {
            let depth = 1 + next(6);
            let chunk = 120 + next(600);
            let mut session = runtime.open_session_with(SessionOptions::new().overlap_depth(depth));
            for packet in audio.samples.chunks(chunk) {
                session.push_samples(packet);
            }
            let t = session.finalize();
            assert_eq!(
                t.words, expected.0,
                "lanes {lanes} depth {depth} chunk {chunk}"
            );
            assert_eq!(
                t.cost.to_bits(),
                expected.1,
                "lanes {lanes} depth {depth} chunk {chunk}"
            );
        }
    }
}

#[test]
fn sessions_migrate_between_threads_mid_utterance() {
    let runtime = AsrRuntime::demo_with(RuntimeConfig::new().lanes(2)).unwrap();
    let words = ["play", "music"];
    let expected = sequential_reference(&runtime, &words);
    let audio = runtime.render_words(&words).unwrap();

    // Open and start the session here...
    let mut session = runtime.open_session();
    let (head, tail) = audio.samples.split_at(audio.samples.len() / 2);
    session.push_samples(head);
    let partial_before = session.partial().expect("live mid-utterance");

    // ...then hand the owned session to a fresh thread to finish.
    let tail = tail.to_vec();
    let transcript = std::thread::spawn(move || {
        session.push_samples(&tail);
        session.finalize()
    })
    .join()
    .expect("migrated session thread");

    assert!(partial_before.frames_decoded > 0);
    assert_eq!(transcript.words, expected.0);
    assert_eq!(transcript.cost.to_bits(), expected.1);
}

#[test]
fn overlapped_sessions_match_inline_sessions_under_concurrency() {
    let runtime = AsrRuntime::demo_with(RuntimeConfig::new().lanes(4)).unwrap();
    let words = ["call", "mom"];
    let expected = sequential_reference(&runtime, &words);
    let audio = runtime.render_words(&words).unwrap();

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for overlap in [true, false, true, false, true, false] {
            let runtime = &runtime;
            let audio = &audio;
            let expected = &expected;
            handles.push(scope.spawn(move || {
                for _ in 0..3 {
                    let mut session =
                        runtime.open_session_with(SessionOptions::new().overlap_scoring(overlap));
                    for packet in audio.samples.chunks(160) {
                        session.push_samples(packet);
                    }
                    let t = session.finalize();
                    assert_eq!(t.words, expected.0, "overlap={overlap}");
                    assert_eq!(t.cost.to_bits(), expected.1, "overlap={overlap}");
                }
            }));
        }
        for handle in handles {
            handle.join().expect("overlap worker");
        }
    });
}

#[test]
fn leased_batch_decoders_share_the_executor_byte_identically() {
    let runtime = AsrRuntime::demo_with(RuntimeConfig::new().lanes(3)).unwrap();
    let utterances: Vec<Vec<&str>> = vec![vec!["go"], vec!["play", "music"], vec!["lights", "on"]];
    let expected: Vec<(Vec<String>, u32)> = utterances
        .iter()
        .map(|w| sequential_reference(&runtime, w))
        .collect();
    let scored: Vec<_> = utterances
        .iter()
        .map(|w| runtime.score(&runtime.render_words(w).unwrap()))
        .collect();

    // Two leased decoders plus live sessions, all stealing from the one
    // executor at once.
    let decoders = [runtime.lease_decoder(), runtime.lease_decoder()];
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (d, decoder) in decoders.iter().enumerate() {
            let runtime = &runtime;
            let scored = &scored;
            let expected = &expected;
            handles.push(scope.spawn(move || {
                for (i, scores) in scored.iter().enumerate() {
                    let result = decoder.decode(runtime.graph(), scores);
                    assert_eq!(
                        runtime.lexicon().transcript(&result.words),
                        expected[i].0,
                        "decoder {d}, utterance {i}"
                    );
                    assert_eq!(result.cost.to_bits(), expected[i].1);
                }
            }));
        }
        let runtime_sessions = &runtime;
        let expected = &expected;
        handles.push(scope.spawn(move || {
            for (i, words) in utterances.iter().enumerate() {
                let audio = runtime_sessions.render_words(words).unwrap();
                let mut session = runtime_sessions.open_session();
                session.push_samples(&audio.samples);
                let t = session.finalize();
                assert_eq!(t.words, expected[i].0, "session utterance {i}");
            }
        }));
        for handle in handles {
            handle.join().expect("executor worker");
        }
    });
}

/// The degradation policy the QoS determinism pins run against: two
/// rungs below the 40.0 demo beam, with floors that bite on the last.
fn pinned_test_policy() -> QosPolicy {
    QosPolicy::new()
        .tier(0.5, 20.0, Some(512))
        .tier(0.9, 6.0, Some(16))
        .floors(8.0, 64)
}

#[test]
fn qos_pinned_at_a_tier_matches_the_fixed_beam_decoder() {
    let runtime =
        AsrRuntime::demo_with(RuntimeConfig::new().lanes(2).qos(pinned_test_policy())).unwrap();
    let audio = runtime.render_words(&["lights", "off"]).unwrap();
    let scores = runtime.score(&audio);
    let policy = runtime.qos_policy().unwrap().clone();

    for tier in 0..policy.num_tiers() {
        // A plain sequential decoder at exactly this tier's parameters
        // (floors included) is the ground truth...
        let (beam, max_active) = policy.params(tier, runtime.options());
        let mut reference_options = DecodeOptions::with_beam(beam);
        reference_options.max_active = max_active;
        let reference = ViterbiDecoder::new(reference_options).decode(runtime.graph(), &scores);

        // ...and a session pinned at the tier must match it byte for
        // byte, whatever the pressure signal does around it.
        let mut session = runtime.open_session_with(SessionOptions::new().pin_tier(tier));
        session.push_frames(&scores);
        let transcript = session.finalize();
        assert_eq!(
            transcript.words,
            runtime.lexicon().transcript(&reference.words),
            "tier {tier}"
        );
        assert_eq!(
            transcript.cost.to_bits(),
            reference.cost.to_bits(),
            "tier {tier}"
        );
    }
}

#[test]
fn qos_disabled_is_byte_identical_to_a_runtime_without_a_policy() {
    let plain = AsrRuntime::demo_with(RuntimeConfig::new().lanes(2)).unwrap();
    let with_policy = AsrRuntime::demo_with(
        RuntimeConfig::new()
            .lanes(2)
            .qos(pinned_test_policy().max_sessions(8)),
    )
    .unwrap();
    for words in [vec!["go"], vec!["play", "music"], vec!["call", "mom"]] {
        let audio = plain.render_words(&words).unwrap();
        let scores = plain.score(&audio);

        let mut baseline = plain.open_session();
        baseline.push_frames(&scores);
        let baseline = baseline.finalize();

        // QoS opted out on a policy-bearing runtime: same bytes as a
        // runtime that never heard of QoS, over both entry points.
        let mut opted_out =
            with_policy.open_session_with(SessionOptions::new().adaptive_qos(false));
        opted_out.push_frames(&scores);
        let opted_out = opted_out.finalize();
        assert_eq!(opted_out.words, baseline.words);
        assert_eq!(opted_out.cost.to_bits(), baseline.cost.to_bits());

        let mut sampled = with_policy
            .try_open_session_with(SessionOptions::new().adaptive_qos(false))
            .expect("below the admission limit");
        for packet in audio.samples.chunks(160) {
            sampled.push_samples(packet);
        }
        let sampled = sampled.finalize();
        assert_eq!(sampled.words, baseline.words);
        assert_eq!(sampled.cost.to_bits(), baseline.cost.to_bits());
    }
}

#[test]
fn scripted_tier_trace_is_deterministic_and_frame_aligned() {
    let runtime =
        AsrRuntime::demo_with(RuntimeConfig::new().lanes(2).qos(pinned_test_policy())).unwrap();
    let audio = runtime.render_words(&["play", "music"]).unwrap();
    let scores = runtime.score(&audio);

    // Tier changes only land at frame boundaries, so replaying the same
    // pin trace must reproduce the decode byte for byte.
    let tier_for_frame = |frame: usize| match frame {
        0..=9 => 0,
        10..=19 => 2,
        _ => 1,
    };
    let run = || {
        let mut session = runtime.open_session_with(SessionOptions::new().pin_tier(0));
        for frame in 0..scores.num_frames() {
            session.pin_tier(tier_for_frame(frame));
            assert_eq!(session.tier(), tier_for_frame(frame));
            session.push_row(scores.frame_row(frame));
        }
        session.finalize()
    };
    let first = run();
    let second = run();
    assert_eq!(first.words, second.words);
    assert_eq!(first.cost.to_bits(), second.cost.to_bits());
    assert_eq!(first.reached_final, second.reached_final);
}

#[test]
fn warm_runtime_stops_paying_cold_checkouts() {
    let runtime = AsrRuntime::demo().unwrap();
    let audio = runtime.render_words(&["go"]).unwrap();
    for _ in 0..3 {
        runtime.recognize(&audio);
    }
    let warm_point = runtime.scratch_pool().stats();
    for _ in 0..5 {
        runtime.recognize(&audio);
    }
    let after = runtime.scratch_pool().stats();
    assert_eq!(
        after.cold_checkouts, warm_point.cold_checkouts,
        "a warmed serving loop allocates no new scratches"
    );
    assert_eq!(after.warm_checkouts, warm_point.warm_checkouts + 5);
    assert_eq!(after.restores, warm_point.restores + 5);
}
