//! Overload and fault-injection robustness: the runtime past its
//! comfort zone.
//!
//! The claims under test:
//!
//! 1. Admission control is typed, atomic, and recoverable:
//!    [`AsrRuntime::try_open_session`] sheds with
//!    [`PipelineError::Overloaded`] — never a panic — the concurrent
//!    session count never exceeds the policy limit, every admitted
//!    session finishes with a correct transcript, and retiring
//!    in-flight work reopens admission.
//! 2. A corrupted graph layout (direct-index registers shifted out
//!    from under a prepared accelerator decode) surfaces as a typed
//!    [`WfstError::LayoutMismatch`] while live sessions keep decoding,
//!    and afterwards the scratch pool shows a full restore — nothing
//!    poisoned, nothing leaked.
//! 3. [`AsrRuntime::stats`] surfaces the whole signal chain: session
//!    counts, shed counts, scratch-pool counters, and the executor's
//!    scheduling counters.
//! 4. Registering a corrupt store image is a typed refusal that leaves
//!    the registry, the admission books, and every live session
//!    untouched — fault injection on the model-loading path.
//!
//! [`AsrRuntime::try_open_session`]: asr_repro::runtime::AsrRuntime::try_open_session
//! [`AsrRuntime::stats`]: asr_repro::runtime::AsrRuntime::stats
//! [`PipelineError::Overloaded`]: asr_repro::runtime::PipelineError::Overloaded
//! [`WfstError::LayoutMismatch`]: asr_repro::wfst::WfstError::LayoutMismatch

use asr_repro::accel::config::{AcceleratorConfig, DesignPoint};
use asr_repro::accel::sim::PreparedWfst;
use asr_repro::runtime::{AsrRuntime, PipelineError, QosPolicy, RuntimeConfig, SessionOptions};
use asr_repro::wfst::sorted::{DirectIndexUnit, SortedWfst};
use asr_repro::wfst::store::{self, GraphImage};
use asr_repro::wfst::WfstError;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[test]
fn admission_sheds_typed_at_the_limit_and_in_flight_sessions_finish() {
    let runtime = AsrRuntime::demo_with(
        RuntimeConfig::new()
            .lanes(2)
            .qos(QosPolicy::new().max_sessions(3)),
    )
    .unwrap();
    let words = [vec!["go"], vec!["lights", "on"], vec!["play", "music"]];
    let audio: Vec<_> = words
        .iter()
        .map(|w| runtime.render_words(w).unwrap())
        .collect();

    // Fill the runtime to its limit with mid-utterance sessions.
    let mut in_flight = Vec::new();
    for a in &audio {
        let mut session = runtime.try_open_session().unwrap();
        session.push_samples(&a.samples[..a.samples.len() / 2]);
        in_flight.push(session);
    }

    // The fourth session sheds with a typed error, not a panic.
    match runtime.try_open_session() {
        Err(PipelineError::Overloaded { active, limit }) => {
            assert_eq!((active, limit), (3, 3));
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    assert_eq!(runtime.stats().shed_sessions, 1);

    // Every admitted session runs to completion, correctly, while the
    // runtime is saturated.
    for ((session, a), w) in in_flight.into_iter().zip(&audio).zip(&words) {
        let mut session = session;
        session.push_samples(&a.samples[a.samples.len() / 2..]);
        let transcript = session.finalize();
        assert_eq!(&transcript.words, w, "in-flight session under overload");
    }

    // Retired work reopened admission.
    let reopened = runtime.try_open_session();
    assert!(reopened.is_ok(), "admission recovers after drain");
    drop(reopened);
    let stats = runtime.stats();
    assert_eq!(stats.active_sessions, 0);
    assert_eq!(stats.peak_sessions, 3);
    assert_eq!(stats.shed_sessions, 1);
}

#[test]
fn concurrent_admission_never_exceeds_the_limit() {
    const LIMIT: usize = 2;
    const THREADS: usize = 6;
    const ATTEMPTS: usize = 8;
    let runtime = AsrRuntime::demo_with(
        RuntimeConfig::new()
            .lanes(1)
            .qos(QosPolicy::new().max_sessions(LIMIT)),
    )
    .unwrap();
    let audio = runtime.render_words(&["stop"]).unwrap();
    let scores = runtime.score(&audio);
    let admitted = Arc::new(AtomicUsize::new(0));
    let shed = Arc::new(AtomicUsize::new(0));

    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let runtime = runtime.clone();
            let scores = &scores;
            let admitted = Arc::clone(&admitted);
            let shed = Arc::clone(&shed);
            scope.spawn(move || {
                for _ in 0..ATTEMPTS {
                    match runtime.try_open_session() {
                        Ok(mut session) => {
                            admitted.fetch_add(1, Ordering::Relaxed);
                            session.push_frames(scores);
                            let t = session.finalize();
                            assert_eq!(t.words, vec!["stop"]);
                        }
                        Err(PipelineError::Overloaded { active, limit }) => {
                            shed.fetch_add(1, Ordering::Relaxed);
                            assert_eq!(limit, LIMIT);
                            assert!(active <= LIMIT);
                        }
                        Err(other) => panic!("unexpected error: {other}"),
                    }
                }
            });
        }
    });

    let stats = runtime.stats();
    assert_eq!(
        admitted.load(Ordering::Relaxed) + shed.load(Ordering::Relaxed),
        THREADS * ATTEMPTS,
        "every attempt either admitted or shed — nothing lost or panicked"
    );
    assert!(
        stats.peak_sessions <= LIMIT,
        "admission is atomic: peak {} never exceeds the limit {LIMIT}",
        stats.peak_sessions
    );
    assert_eq!(stats.shed_sessions as usize, shed.load(Ordering::Relaxed));
    assert_eq!(stats.active_sessions, 0, "everything drained");
    // Every admitted session restored its scratch.
    assert_eq!(stats.scratch.checkouts(), stats.scratch.restores);
}

/// Shifts every direct-index offset register by one arc: each direct
/// computation now points past the real range start, which the
/// simulator's layout validation must refuse.
fn corrupt_layout(prepared: PreparedWfst) -> PreparedWfst {
    let PreparedWfst::Sorted(mut sorted) = prepared else {
        panic!("state-optimized designs prepare a sorted layout");
    };
    let unit = sorted.unit();
    let offsets: Vec<i64> = (0..unit.threshold() as u32)
        .map(|g| unit.group_offset(g as usize) + 1)
        .collect();
    let boundaries = (1..=unit.threshold())
        .map(|d| unit.group_boundary(d - 1))
        .collect();
    sorted.replace_unit(DirectIndexUnit::from_registers(boundaries, offsets));
    PreparedWfst::Sorted(sorted)
}

#[test]
fn corrupted_layout_is_a_typed_error_under_live_sessions() {
    let runtime = AsrRuntime::demo_with(RuntimeConfig::new().lanes(2)).unwrap();
    let cfg = AcceleratorConfig::for_design(DesignPoint::StateOpt);
    let audio = runtime.render_words(&["call", "mom"]).unwrap();

    // A healthy prepared layout decodes fine; then corrupt its
    // direct-index registers out from under the runtime.
    let healthy = runtime.prepare_accelerator(&cfg).unwrap();
    let (transcript, _) = runtime
        .recognize_on_prepared(&audio, cfg.clone(), &healthy)
        .unwrap();
    assert_eq!(transcript.words, vec!["call", "mom"]);
    let corrupted = corrupt_layout(healthy);

    std::thread::scope(|scope| {
        // Live sessions keep decoding while the accelerator path fails
        // repeatedly next to them.
        let mut handles = Vec::new();
        for _ in 0..3 {
            let runtime = runtime.clone();
            let audio = audio.clone();
            handles.push(scope.spawn(move || {
                for _ in 0..4 {
                    let mut session = runtime.open_session();
                    for packet in audio.samples.chunks(160) {
                        session.push_samples(packet);
                    }
                    let t = session.finalize();
                    assert_eq!(t.words, vec!["call", "mom"], "session beside faults");
                }
            }));
        }

        for _ in 0..6 {
            match runtime.recognize_on_prepared(&audio, cfg.clone(), &corrupted) {
                Err(PipelineError::Wfst(WfstError::LayoutMismatch { .. })) => {}
                Ok(_) => panic!("corrupted layout must be refused"),
                Err(other) => panic!("expected LayoutMismatch, got {other}"),
            }
        }

        for handle in handles {
            handle.join().expect("live session thread");
        }
    });

    // Nothing poisoned: every scratch came home, the runtime still
    // serves, and a freshly prepared layout decodes again.
    let stats = runtime.stats();
    assert_eq!(
        stats.scratch.checkouts(),
        stats.scratch.restores,
        "scratch pool fully restored after the fault storm"
    );
    assert_eq!(stats.active_sessions, 0);
    assert_eq!(runtime.recognize(&audio).words, vec!["call", "mom"]);
    let reprepared = runtime.prepare_accelerator(&cfg).unwrap();
    let (again, _) = runtime
        .recognize_on_prepared(&audio, cfg, &reprepared)
        .unwrap();
    assert_eq!(again.words, vec!["call", "mom"]);
}

#[test]
fn corrupt_model_images_are_refused_while_live_sessions_decode() {
    let runtime = AsrRuntime::demo_with(RuntimeConfig::new().lanes(2)).unwrap();
    let audio = runtime.render_words(&["play", "music"]).unwrap();

    // A valid image of the runtime's own graph, then a stable of
    // corruptions of it: truncation, bad magic, an out-of-range arc
    // target.
    let sorted = SortedWfst::new(runtime.graph()).unwrap();
    let good = store::to_bytes(&sorted);
    let wild_arc = {
        // Section table entry 1 (the arc section) holds its offset at
        // byte 48 + 1*24 + 8; the first record's dest field leads it.
        let off = u64::from_le_bytes(good[48 + 24 + 8..48 + 24 + 16].try_into().unwrap()) as usize;
        let mut b = good.clone();
        b[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        b
    };
    let bad_magic = {
        let mut b = good.clone();
        b[0] = b'!';
        b
    };
    let corruptions: Vec<Vec<u8>> = vec![good[..good.len() / 2].to_vec(), bad_magic, wild_arc];

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..3 {
            let runtime = runtime.clone();
            let audio = audio.clone();
            handles.push(scope.spawn(move || {
                for _ in 0..4 {
                    let mut session = runtime.open_session();
                    for packet in audio.samples.chunks(160) {
                        session.push_samples(packet);
                    }
                    let t = session.finalize();
                    assert_eq!(t.words, vec!["play", "music"], "session beside bad images");
                }
            }));
        }

        // Every corrupt image fails image validation with a typed
        // error; the registry never sees a name appear.
        for bytes in &corruptions {
            match GraphImage::from_bytes(bytes) {
                Err(
                    WfstError::Corrupt(_)
                    | WfstError::LayoutMismatch { .. }
                    | WfstError::UnknownState(_),
                ) => {}
                Ok(_) => panic!("corrupt image must not validate"),
                Err(other) => panic!("unexpected error class: {other}"),
            }
            assert!(runtime.model_names().is_empty());
        }

        for handle in handles {
            handle.join().expect("live session thread");
        }
    });

    // The good image still registers and serves afterwards — and a
    // session on it decodes the same words as the default graph (it is
    // the same transducer, degree-sorted).
    let image = GraphImage::from_bytes(&good).expect("pristine image validates");
    runtime.register_model_image("sorted", image).unwrap();
    let mut session = runtime
        .try_open_session_with(SessionOptions::new().model("sorted"))
        .unwrap();
    session.push_frames(&runtime.score(&audio));
    assert_eq!(session.finalize().words, vec!["play", "music"]);

    let stats = runtime.stats();
    assert_eq!(stats.active_sessions, 0);
    assert_eq!(
        stats.scratch.checkouts(),
        stats.scratch.restores,
        "scratch pool balanced through the fault storm"
    );
    assert_eq!(stats.models.len(), 1);
    assert!(stats.models[0].image_backed);
    assert_eq!(stats.models[0].opened_sessions, 1);
}

#[test]
fn stats_surface_scratch_and_executor_counters() {
    let runtime = AsrRuntime::demo_with(RuntimeConfig::new().lanes(3)).unwrap();

    // Before any decode: executor not spawned, nothing counted.
    let before = runtime.stats();
    assert!(before.executor.is_none(), "stats never spawn the executor");
    assert_eq!(before.executor_queue_depth, 0);
    assert_eq!(before.scratch.checkouts(), 0);

    // Overlapped raw-audio sessions schedule fork/join jobs on the
    // shared pool.
    let audio = runtime.render_words(&["play", "music"]).unwrap();
    for _ in 0..3 {
        let mut session = runtime.open_session_with(SessionOptions::new().overlap_scoring(true));
        for packet in audio.samples.chunks(160) {
            session.push_samples(packet);
        }
        assert_eq!(session.finalize().words, vec!["play", "music"]);
    }

    let after = runtime.stats();
    let executor = after.executor.expect("overlap spun the executor up");
    assert!(
        executor.jobs_submitted > 0,
        "overlapped frames went through the scheduler"
    );
    assert_eq!(
        executor.tasks_taken_by_lanes + executor.tasks_stolen_back + executor.tasks_helped,
        executor.tasks_queued,
        "every queued task was owned exactly once"
    );
    assert_eq!(
        after.executor_queue_depth, 0,
        "quiesced pool has an empty queue"
    );
    assert_eq!(after.scratch, runtime.scratch_pool().stats());
    assert_eq!(after.scratch.checkouts(), after.scratch.restores);
}
