//! Multi-model registry semantics: hot swap, unregister-in-flight, and
//! the zero-copy image path, all under concurrency.
//!
//! The claims under test:
//!
//! 1. A hot swap is invisible to in-flight work: eight concurrent
//!    sessions opened on a model before [`AsrRuntime::swap_model`]
//!    finish byte-identical to sessions on a single-model runtime that
//!    never swapped, while sessions opened after the swap decode over
//!    the replacement graph.
//! 2. [`AsrRuntime::unregister_model`] lets in-flight sessions finish
//!    on the old graph, and the graph's storage — the store image's
//!    buffer included — frees exactly when the last such session
//!    drops, observed through the buffer's reference count and
//!    [`RuntimeStats::retired_models`].
//! 3. Sessions over an image-backed model are byte-identical to
//!    sessions over the same sorted graph registered as an owned copy,
//!    with and without the scoring/search overlap.
//! 4. Registry misuse is typed: unknown and duplicate names,
//!    phone-space-incompatible graphs, and unknown-model session opens
//!    all surface as [`PipelineError`] variants — and a failed
//!    [`AsrRuntime::try_open_session_with`] never charges admission.
//!
//! [`AsrRuntime::swap_model`]: asr_repro::runtime::AsrRuntime::swap_model
//! [`AsrRuntime::unregister_model`]: asr_repro::runtime::AsrRuntime::unregister_model
//! [`AsrRuntime::try_open_session_with`]: asr_repro::runtime::AsrRuntime::try_open_session_with
//! [`RuntimeStats::retired_models`]: asr_repro::runtime::RuntimeStats::retired_models
//! [`PipelineError`]: asr_repro::runtime::PipelineError

use asr_repro::acoustic::scores::AcousticTable;
use asr_repro::runtime::{AsrRuntime, PipelineError, RuntimeConfig, SessionOptions, Transcript};
use asr_repro::wfst::builder::WfstBuilder;
use asr_repro::wfst::compose::build_decoding_graph;
use asr_repro::wfst::grammar::Grammar;
use asr_repro::wfst::lexicon::demo_lexicon;
use asr_repro::wfst::sorted::SortedWfst;
use asr_repro::wfst::store::{self, GraphImage, ImageBytes};
use asr_repro::wfst::{PhoneId, Wfst, WordId};

/// The demo decoding graph plus a second graph over the same lexicon
/// restricted to a smaller vocabulary — two models one runtime can
/// serve, distinguishable by what they can recognize.
fn two_graphs() -> (Wfst, Wfst) {
    let lexicon = demo_lexicon();
    let all: Vec<WordId> = (1..=lexicon.num_words() as u32).map(WordId).collect();
    let full = build_decoding_graph(&lexicon, &Grammar::uniform(&all)).unwrap();
    let narrow = build_decoding_graph(&lexicon, &Grammar::uniform(&all[..3])).unwrap();
    (full, narrow)
}

fn runtime_with(graph: Wfst) -> AsrRuntime {
    AsrRuntime::with_graph(graph, demo_lexicon(), RuntimeConfig::new().lanes(2))
}

fn assert_bytes_eq(a: &Transcript, b: &Transcript, what: &str) {
    assert_eq!(a.words, b.words, "{what}: words");
    assert_eq!(a.cost.to_bits(), b.cost.to_bits(), "{what}: cost bits");
    assert_eq!(a.reached_final, b.reached_final, "{what}: finality");
}

#[test]
fn hot_swap_under_eight_concurrent_sessions_is_byte_identical() {
    let (full, narrow) = two_graphs();
    // The single-model baseline: a runtime whose *default* graph is the
    // pre-swap model, never touched by registry traffic.
    let baseline = runtime_with(full.clone());
    let runtime = runtime_with(narrow.clone());
    runtime.register_model("speech", full).unwrap();

    let utterances = ["call mom", "play music", "lights on", "go"];
    let scores: Vec<AcousticTable> = utterances
        .iter()
        .map(|u| {
            let words: Vec<&str> = u.split(' ').collect();
            runtime.score(&runtime.render_words(&words).unwrap())
        })
        .collect();

    // Eight sessions open on the model and consume half their frames
    // before the swap lands.
    let mut in_flight = Vec::new();
    for i in 0..8 {
        let mut session = runtime
            .try_open_session_with(SessionOptions::new().model("speech"))
            .unwrap();
        let rows = &scores[i % scores.len()];
        for frame in 0..rows.num_frames() / 2 {
            session.push_row(rows.frame_row(frame));
        }
        in_flight.push((session, i % scores.len()));
    }
    assert_eq!(runtime.stats().models[0].active_sessions, 8);

    runtime.swap_model("speech", narrow).unwrap();
    assert_eq!(
        runtime.stats().retired_models,
        1,
        "the swapped-out graph drains behind the in-flight sessions"
    );

    // Finish the eight concurrently, each on its own thread, while the
    // registry already serves the replacement.
    let finished: Vec<(Transcript, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = in_flight
            .into_iter()
            .map(|(mut session, idx)| {
                let rows = &scores[idx];
                scope.spawn(move || {
                    for frame in rows.num_frames() / 2..rows.num_frames() {
                        session.push_row(rows.frame_row(frame));
                    }
                    (session.finalize(), idx)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Byte-identical to the single-model runtime: the swap never
    // touched a session that had already resolved the old graph.
    for (transcript, idx) in &finished {
        let expected = {
            let mut s = baseline.open_session();
            s.push_frames(&scores[*idx]);
            s.finalize()
        };
        assert_bytes_eq(transcript, &expected, "session across hot swap");
    }

    // A post-swap open decodes over the replacement (the narrow graph
    // cannot emit "call mom" — its grammar lacks those words).
    let mut post = runtime
        .try_open_session_with(SessionOptions::new().model("speech"))
        .unwrap();
    post.push_frames(&scores[0]);
    let post = post.finalize();
    let narrow_expected = {
        let mut s = runtime.open_session();
        s.push_frames(&scores[0]);
        s.finalize()
    };
    assert_bytes_eq(&post, &narrow_expected, "post-swap session");

    let stats = runtime.stats();
    assert_eq!(stats.retired_models, 0, "old graph freed after the drain");
    assert_eq!(stats.models[0].active_sessions, 0);
    assert_eq!(
        stats.models[0].opened_sessions, 9,
        "counters follow the name across the swap"
    );
}

#[test]
fn unregister_in_flight_finishes_on_the_old_image_and_frees_on_last_drop() {
    let (full, narrow) = two_graphs();
    let sorted = SortedWfst::new(&full).unwrap();
    let image_bytes = ImageBytes::from_slice(&store::to_bytes(&sorted));
    let image = GraphImage::from_image_bytes(image_bytes.clone()).unwrap();
    let baseline = runtime_with(sorted.wfst().clone());

    let runtime = runtime_with(narrow);
    runtime.register_model_image("big", image).unwrap();
    let handles_registered = image_bytes.ref_count();
    assert!(
        handles_registered > 1,
        "the registry's graph views the image buffer"
    );

    let scores = runtime.score(&runtime.render_words(&["call", "mom"]).unwrap());
    let mut session = runtime
        .try_open_session_with(SessionOptions::new().model("big"))
        .unwrap();
    session.push_row(scores.frame_row(0));

    runtime.unregister_model("big").unwrap();
    assert!(
        runtime.model_names().is_empty(),
        "the name is gone immediately"
    );
    assert!(matches!(
        runtime.try_open_session_with(SessionOptions::new().model("big")),
        Err(PipelineError::UnknownModel(_))
    ));
    assert_eq!(
        runtime.stats().retired_models,
        1,
        "the graph drains behind the in-flight session"
    );
    assert_eq!(
        image_bytes.ref_count(),
        handles_registered,
        "the session's graph handle keeps every image view alive"
    );

    // The in-flight session finishes on the unregistered graph,
    // byte-identical to the owned-sorted baseline.
    for frame in 1..scores.num_frames() {
        session.push_row(scores.frame_row(frame));
    }
    let transcript = session.finalize();
    let expected = {
        let mut s = baseline.open_session();
        s.push_frames(&scores);
        s.finalize()
    };
    assert_bytes_eq(&transcript, &expected, "session across unregister");

    // Last drop frees the storage: only this test's local handle on the
    // buffer remains, and the retired record sweeps away.
    assert_eq!(
        image_bytes.ref_count(),
        1,
        "image buffer released on the last session drop"
    );
    assert_eq!(runtime.stats().retired_models, 0);
    assert_eq!(runtime.stats().resident_model_bytes, 0);
}

#[test]
fn image_backed_and_owned_models_decode_byte_identically() {
    let (full, narrow) = two_graphs();
    let sorted = SortedWfst::new(&full).unwrap();
    let image = GraphImage::from_bytes(&store::to_bytes(&sorted)).unwrap();

    let runtime = runtime_with(narrow);
    runtime
        .register_model("owned", sorted.wfst().clone())
        .unwrap();
    runtime.register_model_image("image", image).unwrap();
    let stats = runtime.stats();
    assert!(!stats.models[0].image_backed);
    assert!(stats.models[1].image_backed);
    assert_eq!(
        stats.resident_model_bytes,
        stats.models[0].resident_bytes + stats.models[1].resident_bytes
    );

    for utterance in [vec!["go"], vec!["lights", "on"], vec!["play", "music"]] {
        let scores = runtime.score(&runtime.render_words(&utterance).unwrap());
        for overlap in [false, true] {
            let decode = |model: &str| {
                let mut s = runtime
                    .open_session_with(SessionOptions::new().model(model).overlap_scoring(overlap));
                s.push_frames(&scores);
                s.finalize()
            };
            let owned = decode("owned");
            let image = decode("image");
            assert_bytes_eq(&owned, &image, "image-backed vs owned model");
            assert_eq!(owned.words, utterance);
        }
    }
}

#[test]
fn registry_misuse_is_typed_and_never_charges_admission() {
    let (full, narrow) = two_graphs();
    let runtime = runtime_with(narrow.clone());
    runtime.register_model("a", full.clone()).unwrap();

    // Duplicate names are refused without disturbing the entry.
    assert!(matches!(
        runtime.register_model("a", narrow.clone()),
        Err(PipelineError::DuplicateModel(name)) if name == "a"
    ));
    assert_eq!(runtime.model_names(), vec!["a".to_owned()]);

    // Unknown names: session opens, swaps, and unregisters all report
    // the name, and the failed open charges nothing.
    let before = runtime.stats();
    assert!(matches!(
        runtime.try_open_session_with(SessionOptions::new().model("missing")),
        Err(PipelineError::UnknownModel(name)) if name == "missing"
    ));
    let after = runtime.stats();
    assert_eq!(after.active_sessions, before.active_sessions);
    assert_eq!(after.shed_sessions, before.shed_sessions);
    assert!(matches!(
        runtime.swap_model("missing", full),
        Err(PipelineError::UnknownModel(_))
    ));
    assert!(matches!(
        runtime.unregister_model("missing"),
        Err(PipelineError::UnknownModel(_))
    ));

    // A graph whose phones exceed the acoustic model's rows is refused
    // at registration — sessions can never index past a score row.
    let mut b = WfstBuilder::new();
    let s0 = b.add_state();
    let s1 = b.add_state();
    b.set_start(s0);
    b.add_arc(s0, s1, PhoneId(10_000), WordId(1), 0.5);
    b.set_final(s1, 0.0);
    let alien = b.build().unwrap();
    match runtime.register_model("alien", alien) {
        Err(PipelineError::IncompatibleModel {
            name,
            graph_phones,
            model_phones,
        }) => {
            assert_eq!(name, "alien");
            assert_eq!(graph_phones, 10_001);
            assert!(model_phones < graph_phones);
        }
        other => panic!("expected IncompatibleModel, got {other:?}"),
    }
    assert_eq!(runtime.model_names(), vec!["a".to_owned()]);

    // The registry untouched by all that misuse still serves.
    let scores = runtime.score(&runtime.render_words(&["go"]).unwrap());
    let mut s = runtime
        .try_open_session_with(SessionOptions::new().model("a"))
        .unwrap();
    s.push_frames(&scores);
    assert_eq!(s.finalize().words, vec!["go"]);
}

#[test]
fn sessions_ignore_registry_traffic_on_other_models() {
    // Churning the registry — register, swap, unregister other names —
    // while a default-graph session decodes must not perturb it.
    let (full, narrow) = two_graphs();
    let runtime = runtime_with(full.clone());
    let scores = runtime.score(&runtime.render_words(&["call", "mom"]).unwrap());
    let expected = {
        let mut s = runtime.open_session();
        s.push_frames(&scores);
        s.finalize()
    };

    let mut session = runtime.open_session();
    for frame in 0..scores.num_frames() {
        match frame % 3 {
            0 => {
                let _ = runtime.register_model("churn", narrow.clone());
            }
            1 => {
                let _ = runtime.swap_model("churn", narrow.clone());
            }
            _ => {
                let _ = runtime.unregister_model("churn");
            }
        }
        session.push_row(scores.frame_row(frame));
    }
    let transcript = session.finalize();
    assert_bytes_eq(&transcript, &expected, "session beside registry churn");
    let _ = runtime.unregister_model("churn");
    assert_eq!(runtime.stats().retired_models, 0);
}
