//! Serving-path integration tests: the pooled facade under concurrency.
//!
//! The acceptance claim of the persistent-pool serving pipeline is that
//! pooling never changes results: any number of concurrent sessions and
//! pooled `recognize` calls, from any threads, produce byte-identical
//! `words`/`cost` to a fresh sequential [`ViterbiDecoder`] run on the
//! same inputs.

use asr_repro::decoder::search::ViterbiDecoder;
use asr_repro::pipeline::AsrPipeline;

/// The per-utterance ground truth, computed with a fresh sequential
/// decoder (no pool, no scratch reuse).
fn sequential_reference(p: &AsrPipeline, words: &[&str]) -> (Vec<String>, u32) {
    let audio = p.render_words(words).unwrap();
    let scores = p.score(&audio);
    let result = ViterbiDecoder::new(p.options().clone()).decode(p.graph(), &scores);
    (p.lexicon().transcript(&result.words), result.cost.to_bits())
}

#[test]
fn concurrent_sessions_match_sequential_decoder() {
    let pipeline = AsrPipeline::demo().unwrap();
    let utterances: Vec<Vec<&str>> = vec![
        vec!["go"],
        vec!["stop"],
        vec!["lights", "on"],
        vec!["lights", "off"],
        vec!["play", "music"],
        vec!["call", "mom"],
    ];
    let expected: Vec<(Vec<String>, u32)> = utterances
        .iter()
        .map(|w| sequential_reference(&pipeline, w))
        .collect();

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for worker in 0..4usize {
            let pipeline = &pipeline;
            let utterances = &utterances;
            let expected = &expected;
            handles.push(scope.spawn(move || {
                // Each worker streams every utterance, rotated so the
                // workers are decoding different words at the same time.
                for round in 0..utterances.len() {
                    let i = (round + worker) % utterances.len();
                    let audio = pipeline.render_words(&utterances[i]).unwrap();
                    let scores = pipeline.score(&audio);
                    let mut session = pipeline.open_session();
                    session.push_frames(&scores);
                    let transcript = session.finalize();
                    assert_eq!(transcript.words, expected[i].0, "utterance {i}");
                    assert_eq!(transcript.cost.to_bits(), expected[i].1, "utterance {i}");
                }
            }));
        }
        for handle in handles {
            handle.join().expect("serving worker");
        }
    });

    // Every checked-out scratch came home; the pool's high-water mark is
    // bounded by the peak concurrency, not the request count.
    let idle = pipeline.scratch_pool().idle();
    assert!(
        (1..=4).contains(&idle),
        "pool holds {idle} scratches after 4 workers x 6 requests"
    );
}

#[test]
fn concurrent_pooled_recognize_matches_sequential_decoder() {
    let pipeline = AsrPipeline::demo().unwrap();
    let words = ["play", "music"];
    let (expected_words, expected_cost) = sequential_reference(&pipeline, &words);
    let audio = pipeline.render_words(&words).unwrap();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..4 {
            let pipeline = &pipeline;
            let audio = &audio;
            let expected_words = &expected_words;
            handles.push(scope.spawn(move || {
                for _ in 0..5 {
                    let t = pipeline.recognize(audio);
                    assert_eq!(t.words, *expected_words);
                    assert_eq!(t.cost.to_bits(), expected_cost);
                }
            }));
        }
        for handle in handles {
            handle.join().expect("recognize worker");
        }
    });
}

#[test]
fn interleaved_sessions_stay_independent() {
    // Two sessions advanced in lock-step on one thread must not bleed
    // state into each other (they hold distinct pooled scratches).
    let pipeline = AsrPipeline::demo().unwrap();
    let (words_a, words_b) = (["lights", "on"], ["call", "mom"]);
    let scores_a = pipeline.score(&pipeline.render_words(&words_a).unwrap());
    let scores_b = pipeline.score(&pipeline.render_words(&words_b).unwrap());
    let batch_a = pipeline.recognize_scores(&scores_a);
    let batch_b = pipeline.recognize_scores(&scores_b);

    let mut session_a = pipeline.open_session();
    let mut session_b = pipeline.open_session();
    let frames = scores_a.num_frames().max(scores_b.num_frames());
    for f in 0..frames {
        if f < scores_a.num_frames() {
            session_a.push_row(scores_a.frame_row(f));
        }
        if f < scores_b.num_frames() {
            session_b.push_row(scores_b.frame_row(f));
        }
    }
    let got_a = session_a.finalize();
    let got_b = session_b.finalize();
    assert_eq!(got_a, batch_a);
    assert_eq!(got_b, batch_b);
    assert_eq!(pipeline.scratch_pool().idle(), 2);
}
