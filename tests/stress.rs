//! Stress and failure-injection tests: undersized structures, degenerate
//! workloads and corrupted inputs must degrade gracefully, never silently
//! corrupt results.

use asr_accel::config::{AcceleratorConfig, DesignPoint};
use asr_accel::sim::Simulator;
use asr_acoustic::scores::AcousticTable;
use asr_decoder::search::{DecodeOptions, ViterbiDecoder};
use asr_wfst::builder::WfstBuilder;
use asr_wfst::synth::{SynthConfig, SynthWfst};
use asr_wfst::{PhoneId, StateId, WordId};

#[test]
fn undersized_hash_overflows_but_stays_correct() {
    // A hash table far smaller than the active set forces collision chains
    // and overflow-buffer spills; the decode must still be exact.
    let wfst = SynthWfst::generate(&SynthConfig::with_states(50_000).with_seed(3)).unwrap();
    let scores = AcousticTable::random(50, wfst.num_phones() as usize, (0.5, 4.0), 4);
    let reference = ViterbiDecoder::new(DecodeOptions::with_beam(16.0)).decode(&wfst, &scores);

    let mut cfg = AcceleratorConfig::for_design(DesignPoint::Base).with_beam(16.0);
    cfg.hash_entries = 64; // absurdly small
    let r = Simulator::new(cfg).decode_wfst(&wfst, &scores).unwrap();
    assert_eq!(r.cost, reference.cost);
    assert_eq!(r.words, reference.words);
    assert!(r.stats.hash.collisions > 0, "must have collided");
    assert!(r.stats.hash.overflow_accesses > 0, "must have spilled");
    assert!(r.stats.traffic.overflow > 0, "spills cost DRAM traffic");
    // And it must be slower than a properly sized table.
    let ok = Simulator::new(AcceleratorConfig::for_design(DesignPoint::Base).with_beam(16.0))
        .decode_wfst(&wfst, &scores)
        .unwrap();
    assert!(r.stats.cycles > ok.stats.cycles);
}

#[test]
fn tiny_caches_thrash_but_stay_correct() {
    let wfst = SynthWfst::generate(&SynthConfig::with_states(20_000).with_seed(7)).unwrap();
    let scores = AcousticTable::random(10, wfst.num_phones() as usize, (0.5, 4.0), 6);
    let reference = ViterbiDecoder::new(DecodeOptions::with_beam(10.0)).decode(&wfst, &scores);
    let mut cfg = AcceleratorConfig::for_design(DesignPoint::StateAndArc).with_beam(10.0);
    cfg.arc_cache.capacity = 4 * 1024;
    cfg.state_cache.capacity = 4 * 1024;
    cfg.token_cache.capacity = 4 * 1024;
    let r = Simulator::new(cfg).decode_wfst(&wfst, &scores).unwrap();
    assert_eq!(r.cost, reference.cost);
    assert!(r.stats.arc_cache.miss_ratio() > 0.5, "4 KB must thrash");
}

#[test]
fn zero_beam_keeps_only_the_best_token() {
    let wfst = SynthWfst::generate(&SynthConfig::with_states(5_000).with_seed(9)).unwrap();
    let scores = AcousticTable::random(8, wfst.num_phones() as usize, (0.5, 4.0), 2);
    let reference = ViterbiDecoder::new(DecodeOptions::with_beam(0.0)).decode(&wfst, &scores);
    let cfg = AcceleratorConfig::final_design().with_beam(0.0);
    let r = Simulator::new(cfg).decode_wfst(&wfst, &scores).unwrap();
    assert_eq!(r.cost, reference.cost);
    assert_eq!(r.words, reference.words);
}

#[test]
fn single_state_graph_decodes() {
    let mut b = WfstBuilder::new();
    let s = b.add_state();
    b.set_start(s);
    b.set_final(s, 0.25);
    b.add_arc(s, s, PhoneId(1), WordId(1), 0.5);
    let wfst = b.build().unwrap();
    let scores = AcousticTable::from_fn(4, 2, |_, p| if p == 1 { 0.1 } else { 0.0 });
    let reference = ViterbiDecoder::default().decode(&wfst, &scores);
    let r = Simulator::new(AcceleratorConfig::final_design())
        .decode_wfst(&wfst, &scores)
        .unwrap();
    assert_eq!(r.cost, reference.cost);
    assert_eq!(r.words, vec![WordId(1); 4]);
    assert_eq!(r.best_state, StateId(0));
}

#[test]
fn corrupted_serialized_models_are_rejected() {
    let wfst = SynthWfst::generate(&SynthConfig::with_states(200)).unwrap();
    let mut bytes = asr_wfst::io::to_bytes(&wfst);
    // Flip a byte inside the state array: either the arc window goes out
    // of range or the epsilon partition breaks — both must be caught.
    let header = 4 + 1 + 8 + 8 + 4 + 8;
    let victim = header + 64;
    bytes[victim] ^= 0xFF;
    match asr_wfst::io::from_bytes(&bytes) {
        Ok(w) => {
            // A flipped first-arc low byte can still be in range; the
            // rebuilt transducer must at least be self-consistent.
            for idx in 0..w.num_states() {
                let e = w.state(asr_wfst::StateId(idx as u32));
                assert!(e.arc_range().end <= w.num_arcs());
            }
        }
        Err(e) => {
            let msg = e.to_string();
            assert!(!msg.is_empty());
        }
    }
    // Truncation must always fail.
    assert!(asr_wfst::io::from_bytes(&bytes[..bytes.len() - 7]).is_err());
}

#[test]
fn all_paths_pruned_terminates_cleanly() {
    // An acoustic table of prohibitive costs plus beam 0 starves the
    // search; both engines must finish without panicking and agree.
    let mut b = WfstBuilder::new();
    let s0 = b.add_state();
    let s1 = b.add_state();
    b.set_start(s0);
    b.set_final(s1, 0.0);
    b.add_arc(s0, s1, PhoneId(1), WordId(1), 1.0);
    let wfst = b.build().unwrap();
    // Phone 2 is what the graph needs... but only phone 1 arcs exist, so
    // after frame 1 the single token at s1 has no outgoing arcs.
    let scores = AcousticTable::from_fn(3, 3, |_, _| 5.0);
    let reference = ViterbiDecoder::new(DecodeOptions::with_beam(1.0)).decode(&wfst, &scores);
    let r = Simulator::new(AcceleratorConfig::final_design().with_beam(1.0))
        .decode_wfst(&wfst, &scores)
        .unwrap();
    assert_eq!(r.reached_final, reference.reached_final);
    assert_eq!(r.cost.is_finite(), reference.cost.is_finite());
}

#[test]
fn deep_epsilon_chains_are_followed() {
    // A 50-deep epsilon ladder before the only emitting arc.
    let mut b = WfstBuilder::new();
    let states: Vec<StateId> = (0..52).map(|_| b.add_state()).collect();
    b.set_start(states[0]);
    for i in 0..50 {
        b.add_epsilon_arc(states[i], states[i + 1], 0.01);
    }
    b.add_arc(states[50], states[51], PhoneId(1), WordId(7), 0.5);
    b.set_final(states[51], 0.0);
    let wfst = b.build().unwrap();
    let scores = AcousticTable::from_fn(1, 2, |_, _| 0.25);
    let reference = ViterbiDecoder::default().decode(&wfst, &scores);
    assert!(reference.reached_final);
    assert_eq!(reference.words, vec![WordId(7)]);
    let r = Simulator::new(AcceleratorConfig::final_design())
        .decode_wfst(&wfst, &scores)
        .unwrap();
    assert_eq!(r.cost, reference.cost);
    assert_eq!(r.words, reference.words);
}
